"""Interpreter executing parsed SQL against the in-memory engine.

The executor covers what the reproduction needs: DDL (CREATE/DROP TABLE),
INSERT, and SELECT with multi-table FROM, INNER JOIN ... ON, WHERE
conjunctions/disjunctions, IN / scalar / EXISTS subqueries (uncorrelated
and simple correlated), DISTINCT, INTERSECT, ORDER BY, and the COUNT /
MIN / MAX / SUM / AVG aggregates — notably ``COUNT(DISTINCT x)``, the
paper's ``||r[X]||`` primitive.

Subquery evaluation is nested-loop and therefore quadratic; fine for the
sizes the method queries (counts, not analytics).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SQLExecutionError, UnknownRelationError
from repro.relational.attribute import Attribute
from repro.relational.database import Database
from repro.relational.domain import NULL, is_null, type_named
from repro.relational.schema import RelationSchema
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_sql, parse_statements

# An execution environment row: binding name -> (schema row as dict).
# The reserved key _LOCAL holds the set of bindings introduced by the
# *current* SELECT, so unqualified columns resolve innermost-first (SQL
# scoping) instead of clashing with correlated outer bindings.
Env = Dict[str, Any]

_LOCAL = "__local_bindings__"


class ResultSet:
    """Columns + rows returned by a SELECT."""

    def __init__(self, columns: Sequence[str], rows: Iterable[Tuple[Any, ...]]) -> None:
        self.columns = list(columns)
        self.rows = [tuple(r) for r in rows]

    def scalar(self) -> Any:
        """The single value of a 1x1 result (aggregates)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLExecutionError(
                f"expected scalar result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, index: int = 0) -> List[Any]:
        return [r[index] for r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"ResultSet({self.columns}, {len(self.rows)} rows)"


class Executor:
    """Statement interpreter bound to one :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def execute(self, statement: ast.Statement) -> Optional[ResultSet]:
        if isinstance(statement, ast.Select):
            return self._execute_select(statement, outer_env=None)
        if isinstance(statement, ast.Intersect):
            return self._execute_intersect(statement)
        if isinstance(statement, ast.Union):
            return self._execute_union(statement)
        if isinstance(statement, ast.CreateTable):
            self._execute_create(statement)
            return None
        if isinstance(statement, ast.Insert):
            self._execute_insert(statement)
            return None
        if isinstance(statement, ast.DropTable):
            self.database.drop_relation(statement.name)
            return None
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        raise SQLExecutionError(f"unsupported statement: {statement!r}")

    def run(self, sql: str) -> Optional[ResultSet]:
        """Parse and execute one statement."""
        return self.execute(parse_sql(sql))

    def run_script(self, sql: str) -> List[Optional[ResultSet]]:
        return [self.execute(s) for s in parse_statements(sql)]

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def _execute_create(self, stmt: ast.CreateTable) -> None:
        attrs: List[Attribute] = []
        uniques: List[Tuple[str, ...]] = []
        for col in stmt.columns:
            attrs.append(
                Attribute(col.name, type_named(col.type_name), nullable=not col.not_null)
            )
            if col.unique or col.primary_key:
                uniques.append((col.name,))
        schema = RelationSchema(stmt.name, attrs)
        for constraint in stmt.constraints:
            uniques.append(constraint.columns)
        for u in uniques:
            schema.declare_unique(u)
        self.database.create_relation(schema)

    def _execute_insert(self, stmt: ast.Insert) -> None:
        table = self.database.table(stmt.table)
        for row in stmt.rows:
            if stmt.columns:
                if len(row) != len(stmt.columns):
                    raise SQLExecutionError(
                        f"INSERT arity mismatch on {stmt.table}: "
                        f"{len(stmt.columns)} columns, {len(row)} values"
                    )
                mapping = {c: (NULL if v is None else v) for c, v in zip(stmt.columns, row)}
                table.insert(mapping)
            else:
                table.insert([NULL if v is None else v for v in row])

    def _execute_update(self, stmt: ast.Update) -> Optional[ResultSet]:
        """Row-by-row UPDATE with SQL three-valued WHERE semantics."""
        table = self.database.table(stmt.table)
        schema = table.schema
        positions = {
            a.column: schema.position(a.column) for a in stmt.assignments
        }
        rows = []
        touched = 0
        for row in table:
            env: Env = {stmt.table: row.as_dict(), _LOCAL: frozenset({stmt.table})}
            matches = (
                True
                if stmt.where is None
                else self._truth(stmt.where, env) is True
            )
            values = list(row.values)
            if matches:
                touched += 1
                for assignment in stmt.assignments:
                    value = assignment.value.value
                    values[positions[assignment.column]] = (
                        NULL if value is None else value
                    )
            rows.append(values)
        table.replace_rows(rows)
        return ResultSet(["rows_updated"], [(touched,)])

    def _execute_delete(self, stmt: ast.Delete) -> Optional[ResultSet]:
        table = self.database.table(stmt.table)

        def matches(row) -> bool:
            if stmt.where is None:
                return True
            env: Env = {stmt.table: row.as_dict(), _LOCAL: frozenset({stmt.table})}
            return self._truth(stmt.where, env) is True

        removed = table.delete_where(matches)
        return ResultSet(["rows_deleted"], [(removed,)])

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _execute_intersect(self, stmt: ast.Intersect) -> ResultSet:
        results = [self._execute_select(q, outer_env=None) for q in stmt.queries]
        arities = {len(r.columns) for r in results}
        if len(arities) != 1:
            raise SQLExecutionError("INTERSECT operands differ in arity")
        common = set(results[0].rows)
        for r in results[1:]:
            common &= set(r.rows)
        return ResultSet(results[0].columns, sorted(common, key=repr))

    def _execute_union(self, stmt: ast.Union) -> ResultSet:
        results = [self._execute_select(q, outer_env=None) for q in stmt.queries]
        arities = {len(r.columns) for r in results}
        if len(arities) != 1:
            raise SQLExecutionError("UNION operands differ in arity")
        rows: List[Tuple[Any, ...]] = []
        if stmt.all:
            for r in results:
                rows.extend(r.rows)
        else:
            seen = set()
            for r in results:
                for row in r.rows:
                    if row not in seen:
                        seen.add(row)
                        rows.append(row)
        return ResultSet(results[0].columns, rows)

    def _execute_select(self, stmt: ast.Select, outer_env: Optional[Env]) -> ResultSet:
        bindings = self._bindings(stmt)
        envs = self._enumerate(stmt, bindings, outer_env)
        if stmt.where is not None:
            envs = [e for e in envs if self._truth(stmt.where, e) is True]

        if stmt.group_by:
            return self._grouped_result(stmt, envs, bindings)

        if any(isinstance(i, ast.Aggregate) for i in stmt.items):
            return self._aggregate_result(stmt, envs, bindings)

        columns, extractor = self._projection(stmt, bindings)
        rows = [extractor(e) for e in envs]
        if stmt.distinct:
            seen = set()
            unique_rows = []
            for r in rows:
                if r not in seen:
                    seen.add(r)
                    unique_rows.append(r)
            rows = unique_rows
        if stmt.order_by:
            rows = self._order(rows, columns, stmt, bindings)
        return ResultSet(columns, rows)

    # -- FROM/JOIN enumeration ----------------------------------------
    def _bindings(self, stmt: ast.Select) -> Dict[str, str]:
        """binding name -> real relation name for this SELECT."""
        bindings: Dict[str, str] = {}
        for ref in stmt.tables:
            if ref.binding in bindings:
                raise SQLExecutionError(f"duplicate table binding {ref.binding!r}")
            bindings[ref.binding] = ref.name
        for join in stmt.joins:
            if join.table.binding in bindings:
                raise SQLExecutionError(
                    f"duplicate table binding {join.table.binding!r}"
                )
            bindings[join.table.binding] = join.table.name
        return bindings

    def _enumerate(
        self, stmt: ast.Select, bindings: Dict[str, str], outer_env: Optional[Env]
    ) -> List[Env]:
        base: Env = dict(outer_env) if outer_env else {}
        base[_LOCAL] = frozenset(bindings)
        envs: List[Env] = [base]
        for ref in stmt.tables:
            envs = self._cross(envs, ref)
        for join in stmt.joins:
            if join.kind != "INNER":
                raise SQLExecutionError(f"{join.kind} JOIN not supported")
            envs = self._cross(envs, join.table)
            if join.condition is not None:
                envs = [e for e in envs if self._truth(join.condition, e) is True]
        return envs

    def _cross(self, envs: List[Env], ref: ast.TableRef) -> List[Env]:
        try:
            table = self.database.table(ref.name)
        except UnknownRelationError:
            raise SQLExecutionError(f"unknown table {ref.name!r}") from None
        out: List[Env] = []
        for env in envs:
            for row in table:
                new_env = dict(env)
                new_env[ref.binding] = row.as_dict()
                out.append(new_env)
        return out

    # -- expression / predicate evaluation ----------------------------
    def _resolve(self, col: ast.ColumnRef, env: Env) -> Any:
        if col.qualifier is not None:
            if col.qualifier not in env:
                raise SQLExecutionError(f"unknown table or alias {col.qualifier!r}")
            row = env[col.qualifier]
            if col.name not in row:
                raise SQLExecutionError(f"unknown column {col.qualifier}.{col.name}")
            return row[col.name]
        local = env.get(_LOCAL, frozenset())
        candidates = [
            b for b in env if b != _LOCAL and col.name in env[b]
        ]
        # SQL scoping: the current SELECT's bindings shadow outer ones
        owners = [b for b in candidates if b in local] or candidates
        if not owners:
            raise SQLExecutionError(f"unknown column {col.name!r}")
        if len(owners) > 1:
            raise SQLExecutionError(
                f"ambiguous column {col.name!r} in {sorted(owners)}"
            )
        return env[owners[0]][col.name]

    def _value(self, expr: ast.Expr, env: Env) -> Any:
        if isinstance(expr, ast.Literal):
            return NULL if expr.value is None else expr.value
        if isinstance(expr, ast.ColumnRef):
            return self._resolve(expr, env)
        raise SQLExecutionError(f"cannot evaluate {expr!r} as a value")

    def _truth(self, pred: ast.Predicate, env: Env) -> Optional[bool]:
        """Three-valued logic: True / False / None (SQL UNKNOWN)."""
        if isinstance(pred, ast.And):
            values = [self._truth(p, env) for p in pred.operands]
            if False in values:
                return False
            if None in values:
                return None
            return True
        if isinstance(pred, ast.Or):
            values = [self._truth(p, env) for p in pred.operands]
            if True in values:
                return True
            if None in values:
                return None
            return False
        if isinstance(pred, ast.Not):
            value = self._truth(pred.operand, env)
            return None if value is None else not value
        if isinstance(pred, ast.IsNull):
            null = is_null(self._value(pred.expr, env))
            return (not null) if pred.negated else null
        if isinstance(pred, ast.Comparison):
            return self._compare(pred, env)
        if isinstance(pred, ast.Between):
            value = self._value(pred.expr, env)
            low = self._value(pred.low, env)
            high = self._value(pred.high, env)
            lower = self._compare_values(low, "<=", value)
            upper = self._compare_values(value, "<=", high)
            if lower is None or upper is None:
                return None
            result = lower and upper
            return not result if pred.negated else result
        if isinstance(pred, ast.Like):
            value = self._value(pred.expr, env)
            if is_null(value):
                return None
            if not isinstance(value, str):
                raise SQLExecutionError(f"LIKE applies to text, got {value!r}")
            matched = _like_match(pred.pattern, value)
            return not matched if pred.negated else matched
        if isinstance(pred, ast.InSubquery):
            return self._in_subquery(pred, env)
        if isinstance(pred, ast.CompareSubquery):
            inner = self._execute_select(pred.query, outer_env=env)
            if len(inner.rows) == 0:
                return None
            if len(inner.rows) > 1 or len(inner.columns) != 1:
                raise SQLExecutionError("scalar subquery returned multiple rows")
            right = inner.rows[0][0]
            left = self._value(pred.expr, env)
            return self._compare_values(left, pred.op, right)
        if isinstance(pred, ast.ExistsSubquery):
            inner = self._execute_select(pred.query, outer_env=env)
            exists = len(inner.rows) > 0
            return (not exists) if pred.negated else exists
        raise SQLExecutionError(f"unsupported predicate {pred!r}")

    def _compare(self, pred: ast.Comparison, env: Env) -> Optional[bool]:
        left = self._value(pred.left, env)
        right = self._value(pred.right, env)
        return self._compare_values(left, pred.op, right)

    @staticmethod
    def _compare_values(left: Any, op: str, right: Any) -> Optional[bool]:
        if is_null(left) or is_null(right):
            return None
        try:
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError as exc:
            raise SQLExecutionError(
                f"cannot compare {left!r} {op} {right!r}"
            ) from exc
        raise SQLExecutionError(f"unknown operator {op!r}")

    def _in_subquery(self, pred: ast.InSubquery, env: Env) -> Optional[bool]:
        inner = self._execute_select(pred.query, outer_env=env)
        if len(inner.columns) != 1:
            raise SQLExecutionError("IN subquery must return one column")
        left = self._value(pred.expr, env)
        if is_null(left):
            return None
        values = inner.column(0)
        non_null = [v for v in values if not is_null(v)]
        has_null = len(non_null) != len(values)
        if left in non_null:
            result: Optional[bool] = True
        elif has_null:
            result = None  # NULL in the list makes a miss UNKNOWN
        else:
            result = False
        if pred.negated:
            return None if result is None else not result
        return result

    # -- projection / aggregates ---------------------------------------
    def _projection(self, stmt: ast.Select, bindings: Dict[str, str]):
        if len(stmt.items) == 1 and isinstance(stmt.items[0], ast.Star):
            columns: List[str] = []
            accessors: List[Tuple[str, str]] = []
            for binding, relation in bindings.items():
                schema = self.database.schema.relation(relation)
                for attr in schema.attribute_names:
                    columns.append(f"{binding}.{attr}" if len(bindings) > 1 else attr)
                    accessors.append((binding, attr))

            def star_extractor(env: Env) -> Tuple[Any, ...]:
                return tuple(env[b][a] for b, a in accessors)

            return columns, star_extractor

        items = list(stmt.items)
        columns = [str(i) for i in items]

        def extractor(env: Env) -> Tuple[Any, ...]:
            return tuple(self._value(i, env) for i in items)

        return columns, extractor

    def _grouped_result(
        self, stmt: ast.Select, envs: List[Env], bindings: Dict[str, str]
    ) -> ResultSet:
        """GROUP BY evaluation: partition, filter with HAVING, project.

        Select items must be grouping columns or aggregates (standard
        SQL rule); HAVING predicates may use aggregates as operands.
        """
        group_keys = [
            str(c) for c in stmt.group_by
        ]
        groups: Dict[Tuple[Any, ...], List[Env]] = {}
        order: List[Tuple[Any, ...]] = []
        for env in envs:
            key = tuple(self._resolve(c, env) for c in stmt.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(env)

        grouping_names = {c.name for c in stmt.group_by} | set(group_keys)
        for item in stmt.items:
            if isinstance(item, ast.Aggregate):
                continue
            if isinstance(item, ast.ColumnRef) and str(item) in group_keys:
                continue
            if isinstance(item, ast.ColumnRef) and item.name in grouping_names:
                continue
            raise SQLExecutionError(
                f"select item {item} is neither grouped nor aggregated"
            )

        def group_value(expr: ast.Expr, key, members: List[Env]) -> Any:
            if isinstance(expr, ast.Aggregate):
                return self._eval_aggregate(expr, members)
            if isinstance(expr, ast.ColumnRef):
                for position, column in enumerate(stmt.group_by):
                    if str(column) == str(expr) or column.name == expr.name:
                        return key[position]
            raise SQLExecutionError(f"cannot evaluate {expr} per group")

        def having_truth(pred: ast.Predicate, key, members) -> Optional[bool]:
            if isinstance(pred, ast.And):
                values = [having_truth(p, key, members) for p in pred.operands]
                if False in values:
                    return False
                return None if None in values else True
            if isinstance(pred, ast.Or):
                values = [having_truth(p, key, members) for p in pred.operands]
                if True in values:
                    return True
                return None if None in values else False
            if isinstance(pred, ast.Not):
                value = having_truth(pred.operand, key, members)
                return None if value is None else not value
            if isinstance(pred, ast.Comparison):
                left = (
                    group_value(pred.left, key, members)
                    if isinstance(pred.left, (ast.Aggregate, ast.ColumnRef))
                    else self._value(pred.left, members[0])
                )
                right = (
                    group_value(pred.right, key, members)
                    if isinstance(pred.right, (ast.Aggregate, ast.ColumnRef))
                    else self._value(pred.right, members[0])
                )
                return self._compare_values(left, pred.op, right)
            raise SQLExecutionError(
                f"unsupported HAVING predicate {pred!r}"
            )

        columns = [str(i) for i in stmt.items]
        rows: List[Tuple[Any, ...]] = []
        for key in order:
            members = groups[key]
            if stmt.having is not None:
                if having_truth(stmt.having, key, members) is not True:
                    continue
            rows.append(
                tuple(group_value(i, key, members) for i in stmt.items)
            )
        if stmt.order_by:
            rows = self._order(rows, columns, stmt, bindings)
        return ResultSet(columns, rows)

    def _aggregate_result(
        self, stmt: ast.Select, envs: List[Env], bindings: Dict[str, str]
    ) -> ResultSet:
        values: List[Any] = []
        columns: List[str] = []
        for item in stmt.items:
            if not isinstance(item, ast.Aggregate):
                raise SQLExecutionError(
                    "mixing aggregates with plain columns needs GROUP BY "
                    "(not supported)"
                )
            columns.append(str(item))
            values.append(self._eval_aggregate(item, envs))
        return ResultSet(columns, [tuple(values)])

    def _eval_aggregate(self, agg: ast.Aggregate, envs: List[Env]) -> Any:
        if isinstance(agg.argument, ast.Star):
            if agg.function != "COUNT":
                raise SQLExecutionError(f"{agg.function}(*) is not valid")
            return len(envs)
        cols = (
            list(agg.argument)
            if isinstance(agg.argument, tuple)
            else [agg.argument]
        )
        projected: List[Tuple[Any, ...]] = []
        for env in envs:
            row = tuple(self._resolve(c, env) for c in cols)
            if any(is_null(v) for v in row):
                continue
            projected.append(row)
        if agg.function == "COUNT":
            if agg.distinct:
                return len(set(projected))
            return len(projected)
        if agg.distinct:
            projected = list(set(projected))
        if len(cols) != 1:
            raise SQLExecutionError(f"{agg.function} takes one column")
        scalars = [row[0] for row in projected]
        if not scalars:
            return NULL
        if agg.function == "MIN":
            return min(scalars)
        if agg.function == "MAX":
            return max(scalars)
        if agg.function == "SUM":
            return sum(scalars)
        if agg.function == "AVG":
            return sum(scalars) / len(scalars)
        raise SQLExecutionError(f"unknown aggregate {agg.function}")

    def _order(self, rows, columns, stmt: ast.Select, bindings) -> List[Tuple[Any, ...]]:
        def key(row: Tuple[Any, ...]):
            parts = []
            for item in stmt.order_by:
                name = str(item.expr)
                if name in columns:
                    idx = columns.index(name)
                else:
                    # unqualified ORDER BY against qualified select columns
                    matches = [
                        i
                        for i, c in enumerate(columns)
                        if c == item.expr.name or c.endswith("." + item.expr.name)
                    ]
                    if len(matches) != 1:
                        raise SQLExecutionError(
                            f"ORDER BY column {name!r} not in select list"
                        )
                    idx = matches[0]
                value = row[idx]
                parts.append((is_null(value), value if not is_null(value) else 0))
            return tuple(parts)

        ordered = sorted(rows, key=key)
        if any(i.descending for i in stmt.order_by):
            if not all(i.descending for i in stmt.order_by):
                raise SQLExecutionError("mixed ASC/DESC not supported")
            ordered.reverse()
        return ordered


def _like_match(pattern: str, value: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""
    import re

    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    )
    return re.fullmatch(regex, value) is not None


def execute_sql(database: Database, sql: str) -> Optional[ResultSet]:
    """One-shot convenience: parse and execute *sql* against *database*."""
    return Executor(database).run(sql)
