"""Hand-written SQL lexer.

Produces :class:`~repro.sql.tokens.Token` streams.  Handles single-quoted
strings with doubled-quote escapes, line comments (``--``), block comments
(``/* */``), numbers (int and decimal), quoted identifiers (double quotes),
and the operator/punctuation set of the dialect.  Identifiers may contain
hyphens *when unambiguous* — the paper's schemas use attribute names such
as ``project-name`` — a hyphen glues two identifier characters together
(so ``a-b`` lexes as one identifier, while ``a - b`` stays a minus, which
this dialect does not use anyway).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.exceptions import SQLLexError
from repro.sql.tokens import (
    EOF,
    IDENT,
    KEYWORD,
    KEYWORDS,
    NUMBER,
    OPERATORS,
    PUNCT,
    PUNCTUATION,
    STRING,
    Token,
)


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Single-pass lexer over one SQL text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def tokens(self) -> List[Token]:
        return list(self)

    def __iter__(self) -> Iterator[Token]:
        while True:
            tok = self.next_token()
            yield tok
            if tok.kind == EOF:
                return

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + count]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return chunk

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise SQLLexError("unterminated block comment", start_line, start_col)
            else:
                return

    # ------------------------------------------------------------------
    def next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.text):
            return Token(EOF, "", line, column)
        ch = self._peek()

        if _is_ident_start(ch):
            return self._lex_word(line, column)
        if ch.isdigit():
            return self._lex_number(line, column)
        if ch == "-" and self._peek(1).isdigit():
            # negative literal; standalone '-' is not an operator in this
            # dialect, and hyphenated identifiers are handled in _lex_word
            self._advance()
            tok = self._lex_number(line, column)
            return Token(tok.kind, "-" + tok.value, line, column)
        if ch == "'":
            return self._lex_string(line, column)
        if ch == '"':
            return self._lex_quoted_identifier(line, column)
        for op in OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token("OPERATOR", op, line, column)
        if ch in PUNCTUATION:
            self._advance()
            return Token(PUNCT, ch, line, column)
        raise SQLLexError(f"unexpected character {ch!r}", line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        chars = [self._advance()]
        while True:
            ch = self._peek()
            if _is_ident_char(ch):
                chars.append(self._advance())
            elif ch == "-" and _is_ident_char(self._peek(1)):
                # hyphenated identifier (paper style: project-name)
                chars.append(self._advance())
            else:
                break
        word = "".join(chars)
        if word.upper() in KEYWORDS and "-" not in word:
            return Token(KEYWORD, word.upper(), line, column)
        return Token(IDENT, word, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        chars = [self._advance()]
        seen_dot = False
        while True:
            ch = self._peek()
            if ch.isdigit():
                chars.append(self._advance())
            elif ch == "." and not seen_dot and self._peek(1).isdigit():
                seen_dot = True
                chars.append(self._advance())
            else:
                break
        return Token(NUMBER, "".join(chars), line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise SQLLexError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == "'":
                if self._peek() == "'":  # doubled-quote escape
                    chars.append(self._advance())
                else:
                    return Token(STRING, "".join(chars), line, column)
            else:
                chars.append(ch)

    def _lex_quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening double quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise SQLLexError("unterminated quoted identifier", line, column)
            ch = self._advance()
            if ch == '"':
                return Token(IDENT, "".join(chars), line, column)
            chars.append(ch)


def tokenize(text: str) -> List[Token]:
    """All tokens of *text*, ending with the EOF token."""
    return Lexer(text).tokens()
