"""Render AST statements back to SQL text.

Every node already knows its single-line form (``__str__``); the formatter
adds a pretty multi-line layout for SELECTs so generated application
programs look like code a human maintained, which matters for the
program-corpus fixtures.
"""

from __future__ import annotations

from repro.sql import ast_nodes as ast


def format_statement(stmt: ast.Statement, pretty: bool = False) -> str:
    """Format any statement; *pretty* lays SELECT clauses on their own lines."""
    if not pretty or not isinstance(stmt, (ast.Select, ast.Intersect)):
        return str(stmt)
    if isinstance(stmt, ast.Intersect):
        return "\nINTERSECT\n".join(format_statement(q, pretty=True) for q in stmt.queries)
    return _pretty_select(stmt)


def _pretty_select(stmt: ast.Select, indent: str = "") -> str:
    lines = []
    head = "SELECT DISTINCT" if stmt.distinct else "SELECT"
    lines.append(f"{indent}{head} " + ", ".join(str(i) for i in stmt.items))
    lines.append(f"{indent}FROM " + ", ".join(str(t) for t in stmt.tables))
    for join in stmt.joins:
        lines.append(f"{indent}{join}")
    if stmt.where is not None:
        lines.append(f"{indent}WHERE {_pretty_predicate(stmt.where, indent)}")
    if stmt.order_by:
        lines.append(f"{indent}ORDER BY " + ", ".join(str(o) for o in stmt.order_by))
    return "\n".join(lines)


def _pretty_predicate(pred: ast.Predicate, indent: str) -> str:
    if isinstance(pred, ast.And):
        joiner = f"\n{indent}  AND "
        return joiner.join(_pretty_predicate(p, indent) for p in pred.operands)
    return str(pred)
