"""Token kinds and the token value object for the SQL lexer."""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds are plain strings; a tiny enum-by-convention keeps the lexer
# and parser readable without an Enum import in every match.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OPERATOR = "OPERATOR"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT",
        "IN", "EXISTS", "INTERSECT", "UNION", "ALL", "JOIN", "INNER",
        "LEFT", "RIGHT", "OUTER", "ON", "AS", "ORDER", "BY", "GROUP",
        "HAVING", "ASC", "DESC", "CREATE", "TABLE", "PRIMARY", "KEY",
        "UNIQUE", "NULL", "INSERT", "INTO", "VALUES", "COUNT", "MIN",
        "MAX", "SUM", "AVG", "IS", "BETWEEN", "LIKE", "DROP", "DELETE",
        "UPDATE", "SET", "TRUE", "FALSE",
    }
)

OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">")
PUNCTUATION = "(),.;*"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == KEYWORD and self.value in words

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}@{self.line}:{self.column}"
