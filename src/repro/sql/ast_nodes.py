"""AST node classes for the SQL subset.

Nodes are frozen dataclasses; the equi-join extractor pattern-matches on
them, the executor interprets them, and the formatter prints them back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnRef:
    """``col`` or ``alias.col``; *qualifier* is None when unqualified."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    """A number, string or NULL literal."""

    value: object  # int | float | str | None

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class Star:
    """The ``*`` select item."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class Aggregate:
    """``COUNT(DISTINCT expr)``, ``COUNT(*)``, ``MIN(expr)``, ..."""

    function: str                      # COUNT / MIN / MAX / SUM / AVG
    argument: Union[ColumnRef, Star, Tuple[ColumnRef, ...]]
    distinct: bool = False

    def __str__(self) -> str:
        if isinstance(self.argument, tuple):
            arg = ", ".join(str(c) for c in self.argument)
        else:
            arg = str(self.argument)
        d = "DISTINCT " if self.distinct else ""
        return f"{self.function}({d}{arg})"


Expr = Union[ColumnRef, Literal, Star, Aggregate]


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` with op in =, <>, <, <=, >, >=."""

    left: Expr
    op: str
    right: Expr

    def is_column_equality(self) -> bool:
        return (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InSubquery:
    """``expr IN (SELECT ...)`` or ``expr NOT IN (...)``."""

    expr: Expr
    query: "Select"
    negated: bool = False

    def __str__(self) -> str:
        neg = " NOT" if self.negated else ""
        return f"{self.expr}{neg} IN ({self.query})"


@dataclass(frozen=True)
class CompareSubquery:
    """``expr = (SELECT ...)`` — the scalar-subquery equality form."""

    expr: Expr
    op: str
    query: "Select"

    def __str__(self) -> str:
        return f"{self.expr} {self.op} ({self.query})"


@dataclass(frozen=True)
class ExistsSubquery:
    """``EXISTS (SELECT ...)`` / ``NOT EXISTS (...)``."""

    query: "Select"
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{neg}EXISTS ({self.query})"


@dataclass(frozen=True)
class IsNull:
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{self.expr} IS {neg}NULL"


@dataclass(frozen=True)
class Between:
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{self.expr} {neg}BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class Like:
    """``expr [NOT] LIKE 'pattern'`` with SQL ``%`` / ``_`` wildcards."""

    expr: Expr
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        escaped = self.pattern.replace("'", "''")
        return f"{self.expr} {neg}LIKE '{escaped}'"


@dataclass(frozen=True)
class And:
    """Conjunction of predicates (flattened)."""

    operands: Tuple["Predicate", ...]

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.operands)


@dataclass(frozen=True)
class Or:
    """Disjunction of predicates (flattened)."""

    operands: Tuple["Predicate", ...]

    def __str__(self) -> str:
        return " OR ".join(f"({p})" for p in self.operands)


@dataclass(frozen=True)
class Not:
    operand: "Predicate"

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


Predicate = Union[
    Comparison, InSubquery, CompareSubquery, ExistsSubquery, IsNull,
    Between, Like, And, Or, Not,
]


# ----------------------------------------------------------------------
# table references and statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableRef:
    """``name`` or ``name alias`` / ``name AS alias`` in a FROM clause."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is addressed by inside the query."""
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class Join:
    """``JOIN table ON predicate`` attached to a Select."""

    table: TableRef
    condition: Optional[Predicate]   # None for CROSS-style joins
    kind: str = "INNER"

    def __str__(self) -> str:
        on = f" ON {self.condition}" if self.condition is not None else ""
        return f"{self.kind} JOIN {self.table}{on}"


@dataclass(frozen=True)
class OrderItem:
    expr: ColumnRef
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expr} DESC" if self.descending else str(self.expr)


@dataclass(frozen=True)
class Select:
    """One SELECT block (possibly a subquery)."""

    items: Tuple[Expr, ...]
    tables: Tuple[TableRef, ...]
    joins: Tuple[Join, ...] = ()
    where: Optional[Predicate] = None
    distinct: bool = False
    order_by: Tuple[OrderItem, ...] = ()
    group_by: Tuple[ColumnRef, ...] = ()
    having: Optional[Predicate] = None

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(i) for i in self.items))
        parts.append("FROM")
        parts.append(", ".join(str(t) for t in self.tables))
        for j in self.joins:
            parts.append(str(j))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in self.order_by))
        return " ".join(parts)


@dataclass(frozen=True)
class Intersect:
    """``select INTERSECT select [INTERSECT ...]``."""

    queries: Tuple[Select, ...]

    def __str__(self) -> str:
        return " INTERSECT ".join(str(q) for q in self.queries)


@dataclass(frozen=True)
class Union:
    """``select UNION [ALL] select [...]`` (one ALL flag for the chain)."""

    queries: Tuple[Select, ...]
    all: bool = False

    def __str__(self) -> str:
        joiner = " UNION ALL " if self.all else " UNION "
        return joiner.join(str(q) for q in self.queries)


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False
    unique: bool = False
    primary_key: bool = False

    def __str__(self) -> str:
        parts = [self.name, self.type_name]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        if self.unique:
            parts.append("UNIQUE")
        if self.not_null:
            parts.append("NOT NULL")
        return " ".join(parts)


@dataclass(frozen=True)
class TableConstraint:
    """Table-level ``UNIQUE (a, b)`` or ``PRIMARY KEY (a, b)``."""

    kind: str                 # "UNIQUE" or "PRIMARY KEY"
    columns: Tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.kind} ({', '.join(self.columns)})"


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: Tuple[ColumnDef, ...]
    constraints: Tuple[TableConstraint, ...] = ()

    def __str__(self) -> str:
        inner = [str(c) for c in self.columns] + [str(c) for c in self.constraints]
        return f"CREATE TABLE {self.name} ({', '.join(inner)})"


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Tuple[str, ...]          # empty = positional
    rows: Tuple[Tuple[object, ...], ...]

    def __str__(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        rows = ", ".join(
            "(" + ", ".join(str(Literal(v)) for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass(frozen=True)
class DropTable:
    name: str

    def __str__(self) -> str:
        return f"DROP TABLE {self.name}"


@dataclass(frozen=True)
class Assignment:
    """One ``col = literal`` of an UPDATE's SET clause."""

    column: str
    value: Literal

    def __str__(self) -> str:
        return f"{self.column} = {self.value}"


@dataclass(frozen=True)
class Update:
    """``UPDATE table SET assignments [WHERE predicate]``."""

    table: str
    assignments: Tuple[Assignment, ...]
    where: Optional[Predicate] = None

    def __str__(self) -> str:
        text = f"UPDATE {self.table} SET " + ", ".join(
            str(a) for a in self.assignments
        )
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM table [WHERE predicate]``."""

    table: str
    where: Optional[Predicate] = None

    def __str__(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text


import typing as _typing

Statement = _typing.Union[
    Select, Intersect, Union, CreateTable, Insert, DropTable, Update, Delete
]
