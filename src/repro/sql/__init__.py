"""A from-scratch SQL subset: lexer, parser, AST, executor, formatter.

The reverse-engineering method needs SQL twice:

1. to *read application programs* — the equi-join extractor
   (:mod:`repro.programs`) works on the ASTs produced here; and
2. to *talk to the engine* — DDL builds schemas, INSERT populates
   extensions, and SELECT answers the method's counting queries.

The dialect covers what legacy data-manipulation code in the paper's
setting uses: ``CREATE TABLE`` with ``UNIQUE`` / ``NOT NULL`` /
``PRIMARY KEY``, ``INSERT ... VALUES``, and ``SELECT`` with multi-table
``FROM``, ``JOIN ... ON``, ``WHERE`` conjunctions, ``IN`` / ``=`` /
``EXISTS`` subqueries, ``INTERSECT``, ``COUNT(DISTINCT ...)`` and
``ORDER BY``.
"""

from repro.sql.lexer import Lexer, tokenize
from repro.sql.parser import Parser, parse_sql, parse_statements
from repro.sql.executor import Executor, execute_sql
from repro.sql.formatter import format_statement
from repro.sql import ast_nodes as ast

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse_sql",
    "parse_statements",
    "Executor",
    "execute_sql",
    "format_statement",
    "ast",
]
