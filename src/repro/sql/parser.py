"""Recursive-descent parser for the SQL subset.

Grammar (informal):

    script      := statement (';' statement)* [';']
    statement   := select_stmt | create | insert | drop
    select_stmt := select ('INTERSECT' select)*
    select      := 'SELECT' ['DISTINCT'] items 'FROM' tables join*
                   ['WHERE' predicate] ['ORDER' 'BY' order_items]
    items       := '*' | item (',' item)*
    item        := aggregate | column
    aggregate   := ('COUNT'|'MIN'|'MAX'|'SUM'|'AVG')
                   '(' ['DISTINCT'] ('*' | column (',' column)*) ')'
    tables      := table_ref (',' table_ref)*
    table_ref   := ident [['AS'] ident]
    join        := ['INNER'|'LEFT'|'RIGHT'] ['OUTER'] 'JOIN' table_ref
                   ['ON' predicate]
    predicate   := or_term
    or_term     := and_term ('OR' and_term)*
    and_term    := factor ('AND' factor)*
    factor      := 'NOT' factor | '(' predicate ')' | atom
    atom        := 'EXISTS' '(' select_stmt ')'
                 | operand 'IS' ['NOT'] 'NULL'
                 | operand ['NOT'] 'IN' '(' select_stmt ')'
                 | operand op (operand | '(' select_stmt ')')
    operand     := literal | column
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import SQLParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import (
    EOF,
    IDENT,
    NUMBER,
    OPERATOR,
    PUNCT,
    STRING,
    Token,
)

_AGGREGATES = ("COUNT", "MIN", "MAX", "SUM", "AVG")
_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")


class Parser:
    """One-pass recursive-descent parser over a token list."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> SQLParseError:
        tok = self._peek()
        return SQLParseError(f"{message}, found {tok.value!r}", tok.line, tok.column)

    def _expect_keyword(self, *words: str) -> Token:
        tok = self._peek()
        if tok.is_keyword(*words):
            return self._next()
        raise self._error(f"expected {' or '.join(words)}")

    def _expect_punct(self, ch: str) -> Token:
        tok = self._peek()
        if tok.kind == PUNCT and tok.value == ch:
            return self._next()
        raise self._error(f"expected {ch!r}")

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind == IDENT:
            return self._next()
        raise self._error("expected identifier")

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._next()
        return None

    def _accept_punct(self, ch: str) -> Optional[Token]:
        tok = self._peek()
        if tok.kind == PUNCT and tok.value == ch:
            return self._next()
        return None

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def parse_script(self) -> List[ast.Statement]:
        statements: List[ast.Statement] = []
        while self._peek().kind != EOF:
            statements.append(self.parse_statement())
            while self._accept_punct(";"):
                pass
        return statements

    def parse_statement(self) -> ast.Statement:
        tok = self._peek()
        if tok.is_keyword("SELECT"):
            return self.parse_select_statement()
        if tok.is_keyword("CREATE"):
            return self.parse_create_table()
        if tok.is_keyword("INSERT"):
            return self.parse_insert()
        if tok.is_keyword("DROP"):
            return self.parse_drop()
        if tok.is_keyword("UPDATE"):
            return self.parse_update()
        if tok.is_keyword("DELETE"):
            return self.parse_delete()
        raise self._error(
            "expected SELECT, CREATE, INSERT, UPDATE, DELETE or DROP"
        )

    # ------------------------------------------------------------------
    # SELECT (with INTERSECT chains)
    # ------------------------------------------------------------------
    def parse_select_statement(self) -> ast.Statement:
        first = self.parse_select()
        if self._peek().is_keyword("INTERSECT"):
            queries = [first]
            while self._accept_keyword("INTERSECT"):
                queries.append(self.parse_select())
            if self._peek().is_keyword("UNION"):
                raise self._error("mixing UNION and INTERSECT is not supported")
            return ast.Intersect(tuple(queries))
        if self._peek().is_keyword("UNION"):
            queries = [first]
            keep_all = False
            while self._accept_keyword("UNION"):
                keep_all = bool(self._accept_keyword("ALL")) or keep_all
                queries.append(self.parse_select())
            if self._peek().is_keyword("INTERSECT"):
                raise self._error("mixing UNION and INTERSECT is not supported")
            return ast.Union(tuple(queries), all=keep_all)
        return first

    def parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items = self._parse_select_items()
        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        while self._accept_punct(","):
            tables.append(self._parse_table_ref())
        joins: List[ast.Join] = []
        while True:
            join = self._parse_join_opt()
            if join is None:
                break
            joins.append(join)
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_predicate()
        group: List[ast.ColumnRef] = []
        having = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group.append(self._parse_column())
            while self._accept_punct(","):
                group.append(self._parse_column())
            if self._accept_keyword("HAVING"):
                having = self._parse_predicate()
        order: List[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order.append(self._parse_order_item())
            while self._accept_punct(","):
                order.append(self._parse_order_item())
        return ast.Select(
            items=tuple(items),
            tables=tuple(tables),
            joins=tuple(joins),
            where=where,
            distinct=distinct,
            order_by=tuple(order),
            group_by=tuple(group),
            having=having,
        )

    def _parse_select_items(self) -> List[ast.Expr]:
        if self._accept_punct("*"):
            return [ast.Star()]
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_keyword(*_AGGREGATES):
            return self._parse_aggregate()
        return self._parse_operand()

    def _parse_aggregate(self) -> ast.Aggregate:
        func = self._next().value
        self._expect_punct("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        if self._accept_punct("*"):
            argument: object = ast.Star()
        else:
            cols = [self._parse_column()]
            while self._accept_punct(","):
                cols.append(self._parse_column())
            argument = cols[0] if len(cols) == 1 else tuple(cols)
        self._expect_punct(")")
        return ast.Aggregate(func, argument, distinct)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_ident().value
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident().value
        elif self._peek().kind == IDENT:
            alias = self._next().value
        return ast.TableRef(name, alias)

    def _parse_join_opt(self) -> Optional[ast.Join]:
        kind = "INNER"
        save = self._pos
        if self._accept_keyword("INNER"):
            kind = "INNER"
        elif self._accept_keyword("LEFT"):
            kind = "LEFT"
            self._accept_keyword("OUTER")
        elif self._accept_keyword("RIGHT"):
            kind = "RIGHT"
            self._accept_keyword("OUTER")
        if not self._accept_keyword("JOIN"):
            self._pos = save
            return None
        table = self._parse_table_ref()
        condition = None
        if self._accept_keyword("ON"):
            condition = self._parse_predicate()
        return ast.Join(table, condition, kind)

    def _parse_order_item(self) -> ast.OrderItem:
        col = self._parse_column()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(col, descending)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def _parse_predicate(self) -> ast.Predicate:
        return self._parse_or()

    def _parse_or(self) -> ast.Predicate:
        terms = [self._parse_and()]
        while self._accept_keyword("OR"):
            terms.append(self._parse_and())
        if len(terms) == 1:
            return terms[0]
        return ast.Or(tuple(terms))

    def _parse_and(self) -> ast.Predicate:
        terms = [self._parse_factor()]
        while self._accept_keyword("AND"):
            terms.append(self._parse_factor())
        if len(terms) == 1:
            return terms[0]
        # flatten nested ANDs for easy extractor traversal
        flat: List[ast.Predicate] = []
        for t in terms:
            if isinstance(t, ast.And):
                flat.extend(t.operands)
            else:
                flat.append(t)
        return ast.And(tuple(flat))

    def _parse_factor(self) -> ast.Predicate:
        if self._accept_keyword("NOT"):
            if self._peek().is_keyword("EXISTS"):
                exists = self._parse_exists()
                return ast.ExistsSubquery(exists.query, negated=True)
            return ast.Not(self._parse_factor())
        if self._peek().is_keyword("EXISTS"):
            return self._parse_exists()
        if self._peek().kind == PUNCT and self._peek().value == "(":
            # could be a parenthesized predicate — try it, backtrack if not
            save = self._pos
            self._next()
            try:
                inner = self._parse_predicate()
                self._expect_punct(")")
                return inner
            except SQLParseError:
                self._pos = save
        return self._parse_atom()

    def _parse_exists(self) -> ast.ExistsSubquery:
        self._expect_keyword("EXISTS")
        self._expect_punct("(")
        stmt = self.parse_select_statement()
        if not isinstance(stmt, ast.Select):
            raise self._error("set operations not allowed inside EXISTS")
        self._expect_punct(")")
        return ast.ExistsSubquery(stmt)

    def _parse_atom(self) -> ast.Predicate:
        left = self._parse_operand()
        tok = self._peek()
        if tok.is_keyword("IS"):
            self._next()
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated_in = False
        if tok.is_keyword("NOT"):
            self._next()
            negated_in = True
            tok = self._peek()
        if tok.is_keyword("BETWEEN"):
            self._next()
            low = self._parse_operand()
            self._expect_keyword("AND")
            high = self._parse_operand()
            return ast.Between(left, low, high, negated_in)
        if tok.is_keyword("LIKE"):
            self._next()
            pattern_tok = self._peek()
            if pattern_tok.kind != STRING:
                raise self._error("LIKE needs a string pattern")
            self._next()
            return ast.Like(left, pattern_tok.value, negated_in)
        if tok.is_keyword("IN"):
            self._next()
            self._expect_punct("(")
            stmt = self.parse_select_statement()
            if not isinstance(stmt, ast.Select):
                raise self._error("set operations not allowed inside IN")
            self._expect_punct(")")
            return ast.InSubquery(left, stmt, negated_in)
        if negated_in:
            raise self._error("expected IN after NOT")
        if tok.kind == OPERATOR and tok.value in _COMPARISON_OPS:
            op = self._next().value
            if op == "!=":
                op = "<>"
            if self._peek().kind == PUNCT and self._peek().value == "(":
                self._next()
                stmt = self.parse_select_statement()
                if not isinstance(stmt, ast.Select):
                    raise self._error("set operations not allowed in scalar subqueries")
                self._expect_punct(")")
                return ast.CompareSubquery(left, op, stmt)
            right = self._parse_operand()
            return ast.Comparison(left, op, right)
        raise self._error("expected comparison, IN, IS or EXISTS")

    # ------------------------------------------------------------------
    # operands
    # ------------------------------------------------------------------
    def _parse_operand(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_keyword(*_AGGREGATES):
            # aggregates appear as operands in HAVING clauses
            return self._parse_aggregate()
        if tok.kind == NUMBER:
            self._next()
            value: object = float(tok.value) if "." in tok.value else int(tok.value)
            return ast.Literal(value)
        if tok.kind == STRING:
            self._next()
            return ast.Literal(tok.value)
        if tok.is_keyword("NULL"):
            self._next()
            return ast.Literal(None)
        if tok.is_keyword("TRUE"):
            self._next()
            return ast.Literal(True)
        if tok.is_keyword("FALSE"):
            self._next()
            return ast.Literal(False)
        if tok.kind == IDENT:
            return self._parse_column()
        raise self._error("expected literal or column")

    def _parse_column(self) -> ast.ColumnRef:
        first = self._expect_ident().value
        if self._peek().kind == PUNCT and self._peek().value == ".":
            self._next()
            second = self._expect_ident().value
            return ast.ColumnRef(second, qualifier=first)
        return ast.ColumnRef(first)

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def parse_create_table(self) -> ast.CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_ident().value
        self._expect_punct("(")
        columns: List[ast.ColumnDef] = []
        constraints: List[ast.TableConstraint] = []
        while True:
            tok = self._peek()
            if tok.is_keyword("UNIQUE", "PRIMARY"):
                constraints.append(self._parse_table_constraint())
            else:
                columns.append(self._parse_column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        if not columns:
            raise self._error("CREATE TABLE needs at least one column")
        return ast.CreateTable(name, tuple(columns), tuple(constraints))

    def _parse_table_constraint(self) -> ast.TableConstraint:
        tok = self._next()
        if tok.value == "PRIMARY":
            self._expect_keyword("KEY")
            kind = "PRIMARY KEY"
        else:
            kind = "UNIQUE"
        self._expect_punct("(")
        cols = [self._expect_ident().value]
        while self._accept_punct(","):
            cols.append(self._expect_ident().value)
        self._expect_punct(")")
        return ast.TableConstraint(kind, tuple(cols))

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_ident().value
        type_tok = self._peek()
        if type_tok.kind != IDENT and not type_tok.is_keyword():
            raise self._error("expected column type")
        type_name = self._next().value
        # optional (n) / (p, s) size suffix — parsed and discarded
        if self._accept_punct("("):
            while self._peek().kind == NUMBER or (
                self._peek().kind == PUNCT and self._peek().value == ","
            ):
                self._next()
            self._expect_punct(")")
        not_null = unique = primary = False
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
            elif self._accept_keyword("UNIQUE"):
                unique = True
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary = True
            else:
                break
        return ast.ColumnDef(name, type_name, not_null, unique, primary)

    def parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident().value
        columns: Tuple[str, ...] = ()
        if self._accept_punct("("):
            cols = [self._expect_ident().value]
            while self._accept_punct(","):
                cols.append(self._expect_ident().value)
            self._expect_punct(")")
            columns = tuple(cols)
        self._expect_keyword("VALUES")
        rows: List[Tuple[object, ...]] = []
        while True:
            self._expect_punct("(")
            values: List[object] = []
            while True:
                operand = self._parse_operand()
                if not isinstance(operand, ast.Literal):
                    raise self._error("INSERT values must be literals")
                values.append(operand.value)
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            rows.append(tuple(values))
            if not self._accept_punct(","):
                break
        return ast.Insert(table, columns, tuple(rows))

    def parse_drop(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return ast.DropTable(self._expect_ident().value)

    def parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident().value
        self._expect_keyword("SET")
        assignments: List[ast.Assignment] = []
        while True:
            column = self._expect_ident().value
            tok = self._peek()
            if tok.kind != OPERATOR or tok.value != "=":
                raise self._error("expected = in SET clause")
            self._next()
            value = self._parse_operand()
            if not isinstance(value, ast.Literal):
                raise self._error("SET values must be literals")
            assignments.append(ast.Assignment(column, value))
            if not self._accept_punct(","):
                break
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_predicate()
        return ast.Update(table, tuple(assignments), where)

    def parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident().value
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_predicate()
        return ast.Delete(table, where)


def parse_sql(text: str) -> ast.Statement:
    """Parse exactly one statement (trailing semicolon allowed)."""
    parser = Parser(text)
    statements = parser.parse_script()
    if len(statements) != 1:
        raise SQLParseError(f"expected one statement, found {len(statements)}")
    return statements[0]


def parse_statements(text: str) -> List[ast.Statement]:
    """Parse a script of semicolon-separated statements."""
    return Parser(text).parse_script()
