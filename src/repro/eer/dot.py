"""Graphviz DOT export of EER schemas — Figure-1-style diagrams.

Follows the paper's drawing conventions: entity-types as rectangles,
relationship-types as diamonds, weak entity-types as double boxes, and
is-a links as arrows (labelled ``is-a``; DOT has no double-headed arrow,
so the label carries the semantics).
"""

from __future__ import annotations

from typing import List

from repro.eer.model import EERSchema


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def to_dot(schema: EERSchema, graph_name: str = "EER") -> str:
    """Render *schema* as a Graphviz ``graph`` (undirected except is-a)."""
    lines: List[str] = [f"graph {_quote(graph_name)} {{"]
    lines.append("  rankdir=BT;")
    lines.append("  node [fontsize=10];")

    for entity in schema.entities:
        shape = "box"
        peripheries = 2 if entity.weak else 1
        label = entity.name
        if entity.attributes:
            label += "\\n(" + ", ".join(entity.attributes) + ")"
        lines.append(
            f"  {_quote(entity.name)} [shape={shape}, "
            f"peripheries={peripheries}, label={_quote(label)}];"
        )

    for rel in schema.relationships:
        label = rel.name
        if rel.attributes:
            label += "\\n(" + ", ".join(rel.attributes) + ")"
        lines.append(
            f"  {_quote(rel.name)} [shape=diamond, label={_quote(label)}];"
        )
        for p in rel.participants:
            lines.append(
                f"  {_quote(rel.name)} -- {_quote(p.entity)} "
                f"[label={_quote(p.cardinality)}];"
            )

    for entity in schema.entities:
        if entity.weak:
            for owner in entity.owners:
                lines.append(
                    f"  {_quote(entity.name)} -- {_quote(owner)} "
                    f'[style=dashed, label="identifies"];'
                )

    for link in schema.isa_links:
        lines.append(
            f"  {_quote(link.sub)} -- {_quote(link.sup)} "
            f'[dir=forward, arrowhead=normalnormal, label="is-a"];'
        )

    lines.append("}")
    return "\n".join(lines)
