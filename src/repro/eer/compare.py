"""Structural comparison of EER schemas.

Evaluation needs to decide whether a recovered conceptual schema matches
a ground-truth one.  Names of relationship-types invented during
translation are not meaningful, so comparison works on *signatures*:
entity names (with weak flags and owner sets), is-a pairs, and
relationship legs as multisets of (participant entity, cardinality)
tuples with their attribute payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.eer.model import EERSchema

EntitySig = Tuple[str, bool, FrozenSet[str]]
RelSig = Tuple[FrozenSet[Tuple[str, str]], FrozenSet[str]]
IsaSig = Tuple[str, str]


@dataclass(frozen=True)
class SchemaSignature:
    """Name-insensitive (for relationships) structural fingerprint."""

    entities: FrozenSet[EntitySig]
    relationships: Tuple[RelSig, ...]      # sorted multiset
    isa: FrozenSet[IsaSig]


def schema_signature(schema: EERSchema) -> SchemaSignature:
    """Compute the structural fingerprint used for equivalence tests."""
    entities = frozenset(
        (e.name, e.weak, frozenset(e.owners)) for e in schema.entities
    )
    rels: List[RelSig] = []
    for r in schema.relationships:
        legs = frozenset((p.entity, p.cardinality) for p in r.participants)
        rels.append((legs, frozenset(r.attributes)))
    isa = frozenset((l.sub, l.sup) for l in schema.isa_links)
    return SchemaSignature(entities, tuple(sorted(rels, key=repr)), isa)


def schemas_equivalent(left: EERSchema, right: EERSchema) -> bool:
    """True when the two schemas have identical signatures."""
    return schema_signature(left) == schema_signature(right)


@dataclass
class SchemaDiff:
    """Human-readable differences between two EER schemas."""

    missing_entities: List[str] = field(default_factory=list)
    extra_entities: List[str] = field(default_factory=list)
    missing_isa: List[str] = field(default_factory=list)
    extra_isa: List[str] = field(default_factory=list)
    missing_relationships: List[str] = field(default_factory=list)
    extra_relationships: List[str] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not any(
            (
                self.missing_entities,
                self.extra_entities,
                self.missing_isa,
                self.extra_isa,
                self.missing_relationships,
                self.extra_relationships,
            )
        )

    def summary(self) -> str:
        if self.is_empty():
            return "schemas are structurally equivalent"
        parts = []
        for label, items in (
            ("missing entities", self.missing_entities),
            ("extra entities", self.extra_entities),
            ("missing is-a", self.missing_isa),
            ("extra is-a", self.extra_isa),
            ("missing relationships", self.missing_relationships),
            ("extra relationships", self.extra_relationships),
        ):
            if items:
                parts.append(f"{label}: {', '.join(items)}")
        return "; ".join(parts)


def diff_schemas(expected: EERSchema, actual: EERSchema) -> SchemaDiff:
    """What *actual* lacks or adds relative to *expected*."""
    exp = schema_signature(expected)
    act = schema_signature(actual)
    diff = SchemaDiff()
    diff.missing_entities = sorted(e[0] for e in exp.entities - act.entities)
    diff.extra_entities = sorted(e[0] for e in act.entities - exp.entities)
    diff.missing_isa = sorted(f"{s} is-a {p}" for s, p in exp.isa - act.isa)
    diff.extra_isa = sorted(f"{s} is-a {p}" for s, p in act.isa - exp.isa)

    exp_rels = list(exp.relationships)
    act_rels = list(act.relationships)
    for sig in list(exp_rels):
        if sig in act_rels:
            exp_rels.remove(sig)
            act_rels.remove(sig)

    def describe(sig: RelSig) -> str:
        legs, attrs = sig
        legs_text = ", ".join(f"{e}:{c}" for e, c in sorted(legs))
        attr_text = f" [{', '.join(sorted(attrs))}]" if attrs else ""
        return f"({legs_text}){attr_text}"

    diff.missing_relationships = [describe(s) for s in exp_rels]
    diff.extra_relationships = [describe(s) for s in act_rels]
    return diff
