"""The Extended Entity-Relationship target model.

The paper's Translate step maps the restructured 3NF relational schema
into "the ER model extended to the Specialization/Generalization of
object-types".  This package provides the model
(:mod:`repro.eer.model`), DOT and ASCII renderings
(:mod:`repro.eer.dot`, :mod:`repro.eer.render`) and structural
comparison for evaluation (:mod:`repro.eer.compare`).
"""

from repro.eer.model import (
    EntityType,
    RelationshipType,
    Participation,
    IsALink,
    EERSchema,
)
from repro.eer.dot import to_dot
from repro.eer.forward import eer_to_relational
from repro.eer.refine import refine_cardinalities
from repro.eer.render import render_text
from repro.eer.compare import schema_signature, schemas_equivalent, SchemaDiff, diff_schemas

__all__ = [
    "EntityType",
    "RelationshipType",
    "Participation",
    "IsALink",
    "EERSchema",
    "to_dot",
    "eer_to_relational",
    "refine_cardinalities",
    "render_text",
    "schema_signature",
    "schemas_equivalent",
    "SchemaDiff",
    "diff_schemas",
]
