"""EER schema objects: entity-types, relationship-types, is-a links.

The model follows the paper's target: the ER model of Chen extended with
specialization/generalization (is-a) and weak entity-types.  Everything
is a plain value object; :class:`EERSchema` owns the collections and
validates referential consistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class EntityType:
    """An entity-type; *weak* entities carry their owners and discriminator.

    ``key`` lists the identifying attributes (for a weak entity, the
    partial key *discriminator* completes the owners' keys).
    """

    name: str
    attributes: Tuple[str, ...] = ()
    key: Tuple[str, ...] = ()
    weak: bool = False
    owners: Tuple[str, ...] = ()
    discriminator: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.weak and not self.owners:
            raise SchemaError(f"weak entity {self.name!r} needs at least one owner")
        if not self.weak and self.owners:
            raise SchemaError(f"entity {self.name!r} has owners but is not weak")

    def __repr__(self) -> str:
        kind = "WeakEntity" if self.weak else "Entity"
        return f"{kind}({self.name})"


@dataclass(frozen=True)
class Participation:
    """One leg of a relationship-type.

    *cardinality* is ``"1"`` or ``"N"`` seen from the entity side;
    *via* records the foreign attributes realizing the leg (provenance).
    """

    entity: str
    cardinality: str = "N"
    role: str = ""
    via: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.cardinality not in ("1", "N"):
            raise SchemaError(f"bad cardinality {self.cardinality!r}")


@dataclass(frozen=True)
class RelationshipType:
    """An n-ary relationship-type among entity-types."""

    name: str
    participants: Tuple[Participation, ...]
    attributes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.participants) < 2:
            raise SchemaError(
                f"relationship {self.name!r} needs at least two participants"
            )

    @property
    def arity(self) -> int:
        return len(self.participants)

    @property
    def entity_names(self) -> Tuple[str, ...]:
        return tuple(p.entity for p in self.participants)

    def is_many_to_many(self) -> bool:
        return all(p.cardinality == "N" for p in self.participants)

    def __repr__(self) -> str:
        legs = ", ".join(f"{p.entity}:{p.cardinality}" for p in self.participants)
        return f"Relationship({self.name}: {legs})"


@dataclass(frozen=True)
class IsALink:
    """Specialization: *sub* is-a *sup*."""

    sub: str
    sup: str

    def __repr__(self) -> str:
        return f"{self.sub} is-a {self.sup}"


class EERSchema:
    """A validated collection of entity-types, relationships and is-a links."""

    def __init__(self) -> None:
        self._entities: Dict[str, EntityType] = {}
        self._relationships: Dict[str, RelationshipType] = {}
        self._isa: List[IsALink] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_entity(self, entity: EntityType) -> None:
        if entity.name in self._entities or entity.name in self._relationships:
            raise SchemaError(f"duplicate EER object-type {entity.name!r}")
        self._entities[entity.name] = entity

    def add_relationship(self, rel: RelationshipType) -> None:
        if rel.name in self._entities or rel.name in self._relationships:
            raise SchemaError(f"duplicate EER object-type {rel.name!r}")
        for p in rel.participants:
            if p.entity not in self._entities:
                raise SchemaError(
                    f"relationship {rel.name!r} references unknown entity {p.entity!r}"
                )
        self._relationships[rel.name] = rel

    def add_isa(self, sub: str, sup: str) -> None:
        if sub not in self._entities:
            raise SchemaError(f"is-a subtype {sub!r} is not an entity")
        if sup not in self._entities:
            raise SchemaError(f"is-a supertype {sup!r} is not an entity")
        if sub == sup:
            raise SchemaError(f"is-a link on {sub!r} itself")
        link = IsALink(sub, sup)
        if link not in self._isa:
            self._isa.append(link)
            self._isa.sort(key=lambda l: (l.sub, l.sup))

    def remove_entity(self, name: str) -> None:
        """Drop an entity (used when Translate upgrades it to a relationship)."""
        if name not in self._entities:
            raise SchemaError(f"no entity named {name!r}")
        for rel in self._relationships.values():
            if name in rel.entity_names:
                raise SchemaError(
                    f"cannot remove {name!r}: referenced by relationship {rel.name!r}"
                )
        if any(name in (l.sub, l.sup) for l in self._isa):
            raise SchemaError(f"cannot remove {name!r}: referenced by an is-a link")
        del self._entities[name]

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def entities(self) -> List[EntityType]:
        return [self._entities[n] for n in sorted(self._entities)]

    @property
    def relationships(self) -> List[RelationshipType]:
        return [self._relationships[n] for n in sorted(self._relationships)]

    @property
    def isa_links(self) -> List[IsALink]:
        return list(self._isa)

    def entity(self, name: str) -> EntityType:
        try:
            return self._entities[name]
        except KeyError:
            raise SchemaError(f"no entity named {name!r}") from None

    def relationship(self, name: str) -> RelationshipType:
        try:
            return self._relationships[name]
        except KeyError:
            raise SchemaError(f"no relationship named {name!r}") from None

    def has_entity(self, name: str) -> bool:
        return name in self._entities

    def has_relationship(self, name: str) -> bool:
        return name in self._relationships

    def supertypes(self, name: str) -> List[str]:
        return sorted(l.sup for l in self._isa if l.sub == name)

    def subtypes(self, name: str) -> List[str]:
        return sorted(l.sub for l in self._isa if l.sup == name)

    def relationships_of(self, entity: str) -> List[RelationshipType]:
        return [r for r in self.relationships if entity in r.entity_names]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check referential consistency and is-a acyclicity."""
        for rel in self._relationships.values():
            for p in rel.participants:
                if p.entity not in self._entities:
                    raise SchemaError(
                        f"relationship {rel.name!r} references unknown "
                        f"entity {p.entity!r}"
                    )
        # is-a cycle detection (DFS)
        graph: Dict[str, List[str]] = {}
        for link in self._isa:
            graph.setdefault(link.sub, []).append(link.sup)
        visiting: set = set()
        done: set = set()

        def visit(node: str) -> None:
            if node in done:
                return
            if node in visiting:
                raise SchemaError(f"is-a cycle through {node!r}")
            visiting.add(node)
            for nxt in graph.get(node, []):
                visit(nxt)
            visiting.discard(node)
            done.add(node)

        for node in graph:
            visit(node)
        for entity in self._entities.values():
            for owner in entity.owners:
                if owner not in self._entities:
                    raise SchemaError(
                        f"weak entity {entity.name!r} has unknown owner {owner!r}"
                    )

    def __repr__(self) -> str:
        return (
            f"EERSchema({len(self._entities)} entities, "
            f"{len(self._relationships)} relationships, "
            f"{len(self._isa)} is-a links)"
        )
