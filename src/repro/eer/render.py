"""Plain-text rendering of EER schemas.

The benchmarks print this next to the paper's Figure 1 so the two can be
compared by eye in a terminal.
"""

from __future__ import annotations

from typing import List

from repro.eer.model import EERSchema


def render_text(schema: EERSchema) -> str:
    """A readable multi-line description of *schema*."""
    lines: List[str] = []

    strong = [e for e in schema.entities if not e.weak]
    weak = [e for e in schema.entities if e.weak]

    lines.append("Entity-types:")
    for entity in strong:
        key = f" key({', '.join(entity.key)})" if entity.key else ""
        attrs = f" [{', '.join(entity.attributes)}]" if entity.attributes else ""
        lines.append(f"  [{entity.name}]{key}{attrs}")

    if weak:
        lines.append("Weak entity-types:")
        for entity in weak:
            disc = (
                f" discriminator({', '.join(entity.discriminator)})"
                if entity.discriminator
                else ""
            )
            lines.append(
                f"  [[{entity.name}]] of {', '.join(entity.owners)}{disc}"
            )

    if schema.relationships:
        lines.append("Relationship-types:")
        for rel in schema.relationships:
            legs = " -- ".join(
                f"{p.entity}({p.cardinality})" for p in rel.participants
            )
            attrs = f" carrying [{', '.join(rel.attributes)}]" if rel.attributes else ""
            lines.append(f"  <{rel.name}> {legs}{attrs}")

    if schema.isa_links:
        lines.append("Specializations:")
        for link in schema.isa_links:
            lines.append(f"  {link.sub} --|> {link.sup}")

    return "\n".join(lines)
