"""Forward engineering: EER schema → relational schema + constraints.

The inverse of the paper's Translate step, in the Markowitz–Shoshani
tradition: entity-types become relations keyed by their identifiers,
weak entity-types carry their owners' keys plus the discriminator,
relationship-types become relations keyed by the union of the
participants' foreign keys (n-ary) or foreign-key attributes in the
N-side (binary many-to-one), and is-a links become key-based inclusion
dependencies.

Round-trip property (asserted by the tests): for a schema produced by
Restruct + Translate, ``eer_to_relational(translate(S, RIC))`` recovers
``(S, RIC)`` up to attribute types — the two mappings are inverse on the
method's output space.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dependencies.ind import InclusionDependency
from repro.eer.model import EERSchema, EntityType, RelationshipType
from repro.exceptions import SchemaError
from repro.relational.attribute import Attribute
from repro.relational.domain import TEXT
from repro.relational.schema import DatabaseSchema, RelationSchema


def eer_to_relational(
    eer: EERSchema,
) -> Tuple[DatabaseSchema, List[InclusionDependency]]:
    """Map *eer* to a relational schema and its referential constraints."""
    eer.validate()
    schema = DatabaseSchema()
    ric: List[InclusionDependency] = []

    for entity in eer.entities:
        schema.add(_entity_relation(entity))

    for entity in eer.entities:
        if entity.weak:
            ric.extend(_weak_entity_rics(entity, eer))

    for link in eer.isa_links:
        ric.append(_isa_ric(link.sub, link.sup, eer))

    for rel in eer.relationships:
        if rel.is_many_to_many():
            schema.add(_relationship_relation(rel, eer))
            ric.extend(_relationship_rics(rel, eer))
        else:
            ric.extend(_binary_rics(rel, eer))

    return schema, sorted(set(ric), key=lambda i: i.sort_key())


# ----------------------------------------------------------------------
def _entity_relation(entity: EntityType) -> RelationSchema:
    if not entity.attributes:
        raise SchemaError(f"entity {entity.name!r} has no attributes to map")
    if not entity.key:
        raise SchemaError(f"entity {entity.name!r} has no key to map")
    relation = RelationSchema(
        entity.name,
        [Attribute(a, TEXT, nullable=a not in entity.key)
         for a in entity.attributes],
    )
    relation.declare_unique(entity.key)
    return relation


def _weak_entity_rics(
    entity: EntityType, eer: EERSchema
) -> List[InclusionDependency]:
    """The owner references of a weak entity-type.

    The covered key part (key minus discriminator) references the
    owner's key.  Multiple owners are matched greedily in owner order by
    arity — exact for Translate's output, where each owner contributed a
    distinct contiguous part.
    """
    covered = [a for a in entity.key if a not in entity.discriminator]
    out: List[InclusionDependency] = []
    position = 0
    for owner_name in entity.owners:
        owner = eer.entity(owner_name)
        arity = len(owner.key)
        part = covered[position : position + arity]
        if len(part) != arity:
            raise SchemaError(
                f"weak entity {entity.name!r}: covered key does not match "
                f"owner {owner_name!r}"
            )
        position += arity
        out.append(
            InclusionDependency(entity.name, part, owner_name, owner.key)
        )
    return out


def _isa_ric(sub: str, sup: str, eer: EERSchema) -> InclusionDependency:
    sub_key = eer.entity(sub).key
    sup_key = eer.entity(sup).key
    if len(sub_key) != len(sup_key):
        raise SchemaError(
            f"is-a {sub} -> {sup}: key arities differ "
            f"({sub_key} vs {sup_key})"
        )
    return InclusionDependency(sub, sub_key, sup, sup_key)


def _leg_attributes(rel: RelationshipType, eer: EERSchema) -> List[Tuple[str, Tuple[str, ...]]]:
    """(entity, local fk attrs) per leg; Translate recorded them as via."""
    legs = []
    for participation in rel.participants:
        owner = eer.entity(participation.entity)
        local = participation.via or owner.key
        if len(local) != len(owner.key):
            raise SchemaError(
                f"relationship {rel.name!r}: leg to {owner.name!r} has "
                f"arity {len(local)}, owner key has {len(owner.key)}"
            )
        legs.append((participation.entity, tuple(local)))
    return legs


def _relationship_relation(
    rel: RelationshipType, eer: EERSchema
) -> RelationSchema:
    legs = _leg_attributes(rel, eer)
    key_attrs: List[str] = []
    for _entity, local in legs:
        for a in local:
            if a not in key_attrs:
                key_attrs.append(a)
    attrs = [Attribute(a, TEXT, nullable=False) for a in key_attrs]
    attrs.extend(
        Attribute(a, TEXT) for a in rel.attributes if a not in key_attrs
    )
    relation = RelationSchema(rel.name, attrs)
    relation.declare_unique(key_attrs)
    return relation


def _relationship_rics(
    rel: RelationshipType, eer: EERSchema
) -> List[InclusionDependency]:
    out = []
    for entity_name, local in _leg_attributes(rel, eer):
        owner = eer.entity(entity_name)
        out.append(
            InclusionDependency(rel.name, local, entity_name, owner.key)
        )
    return out


def _binary_rics(
    rel: RelationshipType, eer: EERSchema
) -> List[InclusionDependency]:
    """A many-to-one relationship-type maps to fk attributes in the
    N-side relation (which already carries them in Translate's output)."""
    many = [p for p in rel.participants if p.cardinality == "N"]
    ones = [p for p in rel.participants if p.cardinality == "1"]
    if len(many) != 1 or len(ones) != 1:
        raise SchemaError(
            f"relationship {rel.name!r} is neither M:N nor binary N:1"
        )
    n_side, one_side = many[0], ones[0]
    owner = eer.entity(one_side.entity)
    local = n_side.via
    if not local:
        raise SchemaError(
            f"relationship {rel.name!r}: the N side carries no foreign "
            f"attributes (via) to map"
        )
    remote = one_side.via or owner.key
    return [
        InclusionDependency(n_side.entity, local, one_side.entity, remote)
    ]
