"""Data-driven cardinality refinement of a translated EER schema.

Translate (§7) assigns the structurally safe cardinalities: a non-key
reference gives a many-to-one relationship-type.  The *extension* can
sharpen that: when the referencing attributes never repeat, the
"many" side is in fact "one" — a one-to-one relationship (e.g. each
department has one manager AND nobody manages two departments).

This is an optional post-pass, outside the paper's sketch (which works
schema-only); it is conservative — a cardinality is only ever narrowed
from N to 1, never widened — and purely advisory: Figure-1 reproduction
does not use it.
"""

from __future__ import annotations

from typing import List

from repro.eer.model import EERSchema, Participation, RelationshipType
from repro.relational.database import Database


def _via_is_unique(database: Database, relation: str, attrs) -> bool:
    """True when the non-NULL projections of *attrs* never repeat."""
    if relation not in database.schema:
        return False
    table = database.table(relation)
    non_null = [
        row.project(attrs)
        for row in table
        if not row.has_null(attrs)
    ]
    return len(non_null) == len(set(non_null))


def refine_cardinalities(eer: EERSchema, database: Database) -> EERSchema:
    """A copy of *eer* with N-legs narrowed to 1 where the data proves it.

    Only legs carrying ``via`` attributes (the foreign attributes
    Translate recorded) are examined; a leg whose via projection is
    duplicate-free in the extension becomes a "1" leg.
    """
    refined = EERSchema()
    for entity in eer.entities:
        refined.add_entity(entity)
    for rel in eer.relationships:
        legs: List[Participation] = []
        for participation in rel.participants:
            if (
                participation.cardinality == "N"
                and participation.via
                and _via_is_unique(
                    database,
                    _home_of(participation, rel, eer, database),
                    participation.via,
                )
            ):
                legs.append(
                    Participation(
                        participation.entity,
                        "1",
                        participation.role,
                        participation.via,
                    )
                )
            else:
                legs.append(participation)
        refined.add_relationship(
            RelationshipType(rel.name, tuple(legs), rel.attributes)
        )
    for link in eer.isa_links:
        refined.add_isa(link.sub, link.sup)
    return refined


def _home_of(
    participation: Participation,
    rel: RelationshipType,
    eer: EERSchema,
    database: Database,
) -> str:
    """The relation whose extension holds the leg's via attributes.

    For a binary many-to-one relationship the via attrs live in the
    N-side *entity's* relation; for an n-ary relationship-type they live
    in the relationship's own relation (named after it).
    """
    if rel.name in database.schema and all(
        database.schema.relation(rel.name).has_attribute(a)
        for a in participation.via
    ):
        return rel.name
    return participation.entity
