"""Program-guided relevance ranking — the paper's §8 perspective.

§8 closes with: "The application programs of databases could be
considered as *oracles* that help to discover the relevant information
into the data mines."  This package realizes that idea: a
:class:`~repro.mining.navigation.NavigationProfile` aggregates how often
programs touch each attribute (through the extracted equi-joins), and
the rankers order *any* discovered dependency set — e.g. the hundreds of
FDs a lattice search returns — by that navigation evidence, so the
dependencies worth a human's attention surface first.
"""

from repro.mining.navigation import NavigationProfile
from repro.mining.ranking import (
    RankedDependency,
    rank_fds,
    rank_inds,
    relevance_partition,
)

__all__ = [
    "NavigationProfile",
    "RankedDependency",
    "rank_fds",
    "rank_inds",
    "relevance_partition",
]
