"""Aggregating the navigation evidence carried by application programs.

A :class:`NavigationProfile` is built from an extraction report (or a
plain list of equi-joins).  For every attribute it records how many
distinct statements and programs join *through* it; for every attribute
pair, how often they are joined together.  These counts are the "oracle"
signal of §8: attributes nobody navigates with carry integrity
constraints at best, while heavily-joined attributes are the identifiers
of the application domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.programs.equijoin import EquiJoin
from repro.programs.extractor import ExtractionReport

AttrKey = Tuple[str, str]           # (relation, attribute)


@dataclass(frozen=True)
class AttributeUsage:
    """Navigation counts for one attribute."""

    relation: str
    attribute: str
    statement_count: int
    program_count: int
    partner_count: int              # distinct attributes joined against

    @property
    def weight(self) -> float:
        """The relevance weight: statements + a bonus per distinct
        program and partner (diverse evidence beats repetition)."""
        return (
            self.statement_count
            + 0.5 * self.program_count
            + 0.5 * self.partner_count
        )


class NavigationProfile:
    """Summed navigation evidence over a workload."""

    def __init__(self) -> None:
        self._statements: Dict[AttrKey, int] = {}
        self._programs: Dict[AttrKey, Set[str]] = {}
        self._partners: Dict[AttrKey, Set[AttrKey]] = {}
        self._pair_statements: Dict[Tuple[AttrKey, AttrKey], int] = {}
        self.total_statements = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_report(cls, report: ExtractionReport) -> "NavigationProfile":
        """Build from an extraction report, weighting by provenance."""
        profile = cls()
        for join in report.joins:
            occurrences = report.provenance.get(join, [(None, 0)])
            for program, _index in occurrences:
                profile.add_join(join, program)
        return profile

    @classmethod
    def from_joins(cls, joins: Iterable[EquiJoin]) -> "NavigationProfile":
        """Build from bare joins (each counted as one anonymous statement)."""
        profile = cls()
        for join in joins:
            profile.add_join(join, program=None)
        return profile

    def add_join(self, join: EquiJoin, program: Optional[str]) -> None:
        self.total_statements += 1
        (l_rel, l_attrs), (r_rel, r_attrs) = join.sides()
        left_keys = [(l_rel, a) for a in l_attrs]
        right_keys = [(r_rel, a) for a in r_attrs]
        for left_key, right_key in zip(left_keys, right_keys):
            for key, partner in ((left_key, right_key), (right_key, left_key)):
                self._statements[key] = self._statements.get(key, 0) + 1
                if program is not None:
                    self._programs.setdefault(key, set()).add(program)
                self._partners.setdefault(key, set()).add(partner)
            pair = tuple(sorted((left_key, right_key)))
            self._pair_statements[pair] = self._pair_statements.get(pair, 0) + 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def usage(self, relation: str, attribute: str) -> AttributeUsage:
        key = (relation, attribute)
        return AttributeUsage(
            relation=relation,
            attribute=attribute,
            statement_count=self._statements.get(key, 0),
            program_count=len(self._programs.get(key, ())),
            partner_count=len(self._partners.get(key, ())),
        )

    def attribute_weight(self, relation: str, attribute: str) -> float:
        return self.usage(relation, attribute).weight

    def set_weight(self, relation: str, attributes: Sequence[str]) -> float:
        """Weight of an attribute set: the *minimum* member weight — a
        composite identifier is only as navigated as its least-used part."""
        if not attributes:
            return 0.0
        return min(self.attribute_weight(relation, a) for a in attributes)

    def pair_statements(
        self, left: AttrKey, right: AttrKey
    ) -> int:
        pair = tuple(sorted((left, right)))
        return self._pair_statements.get(pair, 0)

    def navigated_attributes(self) -> List[AttributeUsage]:
        """All attributes with evidence, heaviest first."""
        usages = [
            self.usage(rel, attr) for rel, attr in self._statements
        ]
        return sorted(
            usages,
            key=lambda u: (-u.weight, u.relation, u.attribute),
        )

    def __repr__(self) -> str:
        return (
            f"NavigationProfile({len(self._statements)} attributes, "
            f"{self.total_statements} join statements)"
        )
