"""Ranking discovered dependencies by navigation relevance.

The §5 distinction made operational: ``Assignment: proj ->
project-name`` matters because programs join on ``proj``; ``Person:
zip-code -> state`` is an integrity constraint because nothing ever
navigates through ``zip-code``.  Given any dependency set — typically
the output of an exhaustive discovery tool — the rankers order it by the
left-hand side's navigation weight, and
:func:`relevance_partition` splits it at the zero-evidence boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.mining.navigation import NavigationProfile


@dataclass(frozen=True)
class RankedDependency:
    """One dependency with its navigation score (higher = more relevant)."""

    dependency: object          # FunctionalDependency | InclusionDependency
    score: float
    rank: int                   # 1-based, after sorting

    def __repr__(self) -> str:
        return f"#{self.rank} [{self.score:.1f}] {self.dependency!r}"


def _rank(items: List[Tuple[object, float]]) -> List[RankedDependency]:
    items.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return [
        RankedDependency(dep, score, i + 1)
        for i, (dep, score) in enumerate(items)
    ]


def rank_fds(
    fds: Sequence[FunctionalDependency],
    profile: NavigationProfile,
) -> List[RankedDependency]:
    """Order *fds* by the navigation weight of their determinant.

    The LHS is what identifies the (hidden) object, so its weight is the
    evidence that the dependency is design semantics rather than a
    coincidence of the data.
    """
    scored = [
        (fd, profile.set_weight(fd.relation, tuple(fd.lhs))) for fd in fds
    ]
    return _rank(scored)


def rank_inds(
    inds: Sequence[InclusionDependency],
    profile: NavigationProfile,
) -> List[RankedDependency]:
    """Order *inds* by the pair evidence between their two sides.

    The score is the number of statements joining the exact attribute
    pair, plus the weights of both sides — an inclusion nobody ever
    navigates scores zero even when it holds in the data.
    """
    scored = []
    for ind in inds:
        pair_score = 0.0
        for left_attr, right_attr in ind.pairs():
            pair_score += profile.pair_statements(
                (ind.lhs_relation, left_attr), (ind.rhs_relation, right_attr)
            )
        side_score = profile.set_weight(
            ind.lhs_relation, ind.lhs_attrs
        ) + profile.set_weight(ind.rhs_relation, ind.rhs_attrs)
        scored.append((ind, 2.0 * pair_score + 0.5 * side_score))
    return _rank(scored)


def relevance_partition(
    ranked: Sequence[RankedDependency],
) -> Tuple[List[RankedDependency], List[RankedDependency]]:
    """Split a ranking at the zero-evidence boundary.

    Returns ``(navigated, unnavigated)``: dependencies with any program
    evidence, and those with none — the latter being, per §5, integrity
    constraints "with no influence on the data organization".
    """
    navigated = [r for r in ranked if r.score > 0]
    unnavigated = [r for r in ranked if r.score <= 0]
    return navigated, unnavigated
