"""Normal-form diagnosis (1NF / 2NF / 3NF / BCNF).

The §5 example annotates each relation with its normal form; the E1
benchmark reproduces those annotations by diagnosing each relation
against the dependencies that hold in it.  Diagnosis takes the relation's
attribute universe, its candidate keys (from the declared uniques and the
given FDs) and a set of FDs.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Sequence

from repro.dependencies.closure import attribute_closure
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.keys import candidate_keys, is_superkey, prime_attributes
from repro.relational.schema import DatabaseSchema


class NormalForm(str, Enum):
    """Highest normal form a relation satisfies (within 1NF..BCNF)."""

    FIRST = "1NF"
    SECOND = "2NF"
    THIRD = "3NF"
    BOYCE_CODD = "BCNF"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    def at_least(self, other: "NormalForm") -> bool:
        order = [
            NormalForm.FIRST,
            NormalForm.SECOND,
            NormalForm.THIRD,
            NormalForm.BOYCE_CODD,
        ]
        return order.index(self) >= order.index(other)


def _relevant_fds(
    universe: Sequence[str], fds: Sequence[FunctionalDependency]
) -> List[FunctionalDependency]:
    """FDs whose attributes all live in *universe*, made non-trivial."""
    out = []
    attr_set = set(universe)
    for fd in fds:
        if set(fd.lhs) <= attr_set and set(fd.rhs) <= attr_set:
            rhs = [a for a in fd.rhs if a not in fd.lhs]
            if rhs:
                out.append(FunctionalDependency(fd.relation, tuple(fd.lhs), rhs))
    return out


def is_2nf(universe: Sequence[str], fds: Sequence[FunctionalDependency]) -> bool:
    """No non-prime attribute depends on a *proper subset* of a key."""
    relevant = _relevant_fds(universe, fds)
    keys = candidate_keys(list(universe), relevant)
    prime = prime_attributes(list(universe), relevant)
    for key in keys:
        key_list = sorted(key)
        for i in range(len(key_list)):
            subset = key_list[:i] + key_list[i + 1 :]
            if not subset:
                continue
            closure = attribute_closure(subset, relevant)
            for attr in closure:
                if attr in universe and attr not in prime and attr not in subset:
                    return False
    return True


def is_3nf(universe: Sequence[str], fds: Sequence[FunctionalDependency]) -> bool:
    """Every FD ``X -> a``: X a superkey or a prime."""
    relevant = _relevant_fds(universe, fds)
    prime = prime_attributes(list(universe), relevant)
    for fd in relevant:
        if is_superkey(tuple(fd.lhs), universe, relevant):
            continue
        if all(a in prime for a in fd.rhs):
            continue
        return False
    return True


def is_bcnf(universe: Sequence[str], fds: Sequence[FunctionalDependency]) -> bool:
    """Every FD ``X -> a``: X a superkey."""
    relevant = _relevant_fds(universe, fds)
    for fd in relevant:
        if not is_superkey(tuple(fd.lhs), universe, relevant):
            return False
    return True


def diagnose_normal_form(
    universe: Sequence[str], fds: Sequence[FunctionalDependency]
) -> NormalForm:
    """The highest normal form the relation satisfies."""
    if not is_2nf(universe, fds):
        return NormalForm.FIRST
    if not is_3nf(universe, fds):
        return NormalForm.SECOND
    if not is_bcnf(universe, fds):
        return NormalForm.THIRD
    return NormalForm.BOYCE_CODD


def schema_normal_forms(
    schema: DatabaseSchema, fds: Sequence[FunctionalDependency]
) -> Dict[str, NormalForm]:
    """Per-relation diagnosis over a whole schema.

    *fds* holds the non-key dependencies; each relation's declared keys
    contribute their key FDs automatically.
    """
    result: Dict[str, NormalForm] = {}
    for relation in schema:
        local = [fd for fd in fds if fd.relation == relation.name]
        for unique in relation.uniques:
            local.append(
                FunctionalDependency(
                    relation.name,
                    tuple(unique.attributes),
                    tuple(relation.attribute_names),
                )
            )
        result[relation.name] = diagnose_normal_form(
            relation.attribute_names, local
        )
    return result
