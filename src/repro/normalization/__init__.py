"""Normalization substrate: diagnosis, certified synthesis, the chase.

The paper positions its method against the normalization literature:
input schemas are "at least 1NF", the output must be 3NF.  This package
diagnoses normal forms (:mod:`repro.normalization.normal_forms`),
provides the certified synthesis engine — Bernstein 3NF synthesis and
the BCNF analysis decomposition, every decomposition shipped with a
machine-checkable certificate (:mod:`repro.normalization.engine`,
:mod:`repro.normalization.certificate`) — and implements the
chase-based lossless-join test used to audit decompositions
(:mod:`repro.normalization.chase`).
"""

from repro.normalization.normal_forms import (
    NormalForm,
    diagnose_normal_form,
    is_2nf,
    is_3nf,
    is_bcnf,
    schema_normal_forms,
)
from repro.normalization.synthesis import (
    ForeignKeyReference,
    SynthesisOutcome,
    SynthesizedRelation,
    bernstein_synthesis,
    canonical_cover,
    synthesize_3nf,
)
from repro.normalization.bcnf import bcnf_decompose
from repro.normalization.certificate import (
    CERTIFICATE_FORMAT,
    CertificateViolation,
    DecompositionCertificate,
    DecompositionStep,
    RelationScheme,
    certificate_from_dict,
    certificate_records,
    certificate_to_dict,
    check_certificate,
    read_certificates_jsonl,
    verify_certificate,
    write_certificates_jsonl,
)
from repro.normalization.engine import (
    NormalizationResult,
    certify_decomposition,
    normalize,
)
from repro.normalization.chase import lossless_join, dependency_preserving
from repro.normalization.decomposition import Decomposition, decompose_relation

__all__ = [
    "NormalForm",
    "diagnose_normal_form",
    "is_2nf",
    "is_3nf",
    "is_bcnf",
    "schema_normal_forms",
    "synthesize_3nf",
    "canonical_cover",
    "bernstein_synthesis",
    "SynthesizedRelation",
    "ForeignKeyReference",
    "SynthesisOutcome",
    "bcnf_decompose",
    "CERTIFICATE_FORMAT",
    "DecompositionCertificate",
    "DecompositionStep",
    "RelationScheme",
    "CertificateViolation",
    "certificate_to_dict",
    "certificate_from_dict",
    "certificate_records",
    "write_certificates_jsonl",
    "read_certificates_jsonl",
    "verify_certificate",
    "check_certificate",
    "NormalizationResult",
    "normalize",
    "certify_decomposition",
    "lossless_join",
    "dependency_preserving",
    "Decomposition",
    "decompose_relation",
]
