"""Normalization substrate: normal-form diagnosis and classical synthesis.

The paper positions its method against the normalization literature:
input schemas are "at least 1NF", the output must be 3NF.  This package
diagnoses normal forms (:mod:`repro.normalization.normal_forms`),
provides Bernstein's 3NF synthesis as the classical baseline the paper's
restructuring replaces (:mod:`repro.normalization.synthesis`), and
implements the chase-based lossless-join test used to audit
decompositions (:mod:`repro.normalization.chase`).
"""

from repro.normalization.normal_forms import (
    NormalForm,
    diagnose_normal_form,
    is_2nf,
    is_3nf,
    is_bcnf,
    schema_normal_forms,
)
from repro.normalization.synthesis import synthesize_3nf
from repro.normalization.chase import lossless_join, dependency_preserving
from repro.normalization.decomposition import Decomposition, decompose_relation

__all__ = [
    "NormalForm",
    "diagnose_normal_form",
    "is_2nf",
    "is_3nf",
    "is_bcnf",
    "schema_normal_forms",
    "synthesize_3nf",
    "lossless_join",
    "dependency_preserving",
    "Decomposition",
    "decompose_relation",
]
