"""Bernstein's 3NF synthesis — the classical normalization baseline.

Given a universe of attributes and a set of FDs, produce a lossless,
dependency-preserving 3NF decomposition: minimal cover, group by
left-hand side, one relation per group, plus a key relation when no
group contains a candidate key.  The paper argues that *blind* synthesis
from all data-supported FDs mis-designs schemas (zip-code -> state would
become a relation); the S-series ablations quantify that by comparing
Restruct's output against synthesis over exhaustively-discovered FDs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dependencies.closure import minimal_cover
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.keys import candidate_keys


def synthesize_3nf(
    universe: Sequence[str],
    fds: Sequence[FunctionalDependency],
    relation_prefix: str = "R",
) -> List[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Return ``[(attributes, key), ...]`` — one entry per synthesized relation.

    Deterministic: groups are emitted in sorted LHS order; redundant
    schemes (subsets of another scheme) are dropped, as in the standard
    algorithm.
    """
    universe = list(dict.fromkeys(universe))
    cover = minimal_cover(list(fds))

    # group the cover by left-hand side
    groups = {}
    for fd in cover:
        key = tuple(sorted(fd.lhs))
        groups.setdefault(key, set()).update(fd.rhs)

    schemes: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
    for lhs in sorted(groups):
        attrs = tuple(lhs) + tuple(sorted(groups[lhs] - set(lhs)))
        schemes.append((attrs, tuple(lhs)))

    # drop schemes contained in another scheme
    kept: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
    for attrs, key in schemes:
        attr_set = set(attrs)
        if any(
            attr_set < set(other) for other, _k in schemes if other != attrs
        ) or any(attr_set == set(other) for other, _k in kept):
            continue
        kept.append((attrs, key))

    # ensure some scheme contains a candidate key of the universe
    keys = candidate_keys(universe, list(cover))
    global_key = sorted(keys[0]) if keys else sorted(universe)
    if not any(set(global_key) <= set(attrs) for attrs, _k in kept):
        kept.append((tuple(global_key), tuple(global_key)))

    # attributes mentioned nowhere join the key relation (degenerate FDs)
    covered = {a for attrs, _k in kept for a in attrs}
    loose = [a for a in universe if a not in covered]
    if loose:
        kept.append((tuple(sorted(loose) + list(global_key)), tuple(global_key)))
    return kept
