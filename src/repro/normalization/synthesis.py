"""Bernstein-style 3NF synthesis, grown into a full synthesis engine.

Given a universe of attributes and a set of FDs, produce a lossless,
dependency-preserving 3NF decomposition: canonical cover, partition by
*equivalent* left-hand sides (Bernstein's groups — ``X`` and ``Y``
merge when ``X+ ⊇ Y`` and ``Y+ ⊇ X``, the merged scheme keeping both
candidate keys), one relation per group, subsumed schemes dropped, and
a **repair relation** (a candidate key of the universe) appended
exactly when the chase finds the fragment set lossy.  Two refinements
from the autodb lineage (SNIPPETS.md) follow: *avoidable-attribute
removal* — a non-key attribute leaves a scheme only when coverage, the
chase verdict and dependency preservation all survive its removal —
and *single-reference foreign-key pruning* — at most one reference is
kept per (child, parent) relation pair.

The paper argues that *blind* synthesis from all data-supported FDs
mis-designs schemas (zip-code -> state would become a relation); the
S-series ablations quantify that by comparing Restruct's output against
synthesis over exhaustively-discovered FDs.  Every run records its
steps so :mod:`repro.normalization.engine` can ship the result with a
machine-checkable certificate (:mod:`repro.normalization.certificate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dependencies.closure import attribute_closure, minimal_cover, project_fds
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.keys import candidate_keys
from repro.normalization.certificate import DecompositionStep
from repro.normalization.chase import dependency_preserving, lossless_join
from repro.normalization.normal_forms import NormalForm, diagnose_normal_form

__all__ = [
    "canonical_cover",
    "SynthesizedRelation",
    "ForeignKeyReference",
    "SynthesisOutcome",
    "bernstein_synthesis",
    "synthesize_3nf",
]

#: a naming hook: (index, key, attributes) -> relation name
Namer = Callable[[int, Tuple[str, ...], Tuple[str, ...]], str]


def canonical_cover(fds: Sequence[FunctionalDependency]) -> List[FunctionalDependency]:
    """The canonical cover: the minimal cover with same-LHS FDs merged.

    The minimal cover has singleton right-hand sides; the canonical form
    re-merges ``X -> a``, ``X -> b`` into ``X -> a, b`` so each left-hand
    side appears exactly once.  Deterministic for a given input.
    """
    merged: Dict[Tuple[str, ...], List[str]] = {}
    for fd in minimal_cover(list(fds)):
        lhs = tuple(sorted(fd.lhs))
        bucket = merged.setdefault(lhs, [])
        for attr in fd.rhs:
            if attr not in bucket:
                bucket.append(attr)
    return [
        FunctionalDependency("", lhs, tuple(sorted(rhs)))
        for lhs, rhs in sorted(merged.items())
    ]


@dataclass(frozen=True)
class SynthesizedRelation:
    """One scheme of a synthesized decomposition."""

    name: str
    attributes: Tuple[str, ...]
    #: the primary key (the first of *keys*)
    key: Tuple[str, ...]
    #: every candidate key the synthesis derived for the scheme
    keys: Tuple[Tuple[str, ...], ...] = ()
    origin: str = "synthesis"          # "synthesis" | "repair"

    def __repr__(self) -> str:
        return (
            f"{self.name}({', '.join(self.attributes)}) "
            f"key({', '.join(self.key)})"
        )


@dataclass(frozen=True)
class ForeignKeyReference:
    """``child[attrs] -> parent[attrs]`` between synthesized schemes."""

    child: str
    child_attrs: Tuple[str, ...]
    parent: str
    parent_attrs: Tuple[str, ...]

    def __repr__(self) -> str:
        return (
            f"{self.child}[{', '.join(self.child_attrs)}] -> "
            f"{self.parent}[{', '.join(self.parent_attrs)}]"
        )


@dataclass
class SynthesisOutcome:
    """Everything one synthesis run produced, steps included."""

    universe: Tuple[str, ...]
    relations: List[SynthesizedRelation] = field(default_factory=list)
    references: List[ForeignKeyReference] = field(default_factory=list)
    cover: List[FunctionalDependency] = field(default_factory=list)
    steps: List[DecompositionStep] = field(default_factory=list)
    #: True when the chase found the pre-repair fragments lossy and the
    #: key relation was appended
    repaired: bool = False
    #: ``(relation name, attribute)`` pairs dropped as avoidable
    removed: List[Tuple[str, str]] = field(default_factory=list)

    def fragments(self) -> List[Tuple[str, ...]]:
        return [r.attributes for r in self.relations]


def _default_namer(prefix: str) -> Namer:
    def name(index: int, key: Tuple[str, ...], attrs: Tuple[str, ...]) -> str:
        return f"{prefix}{index + 1}"

    return name


def _unique_name(base: str, taken: Set[str]) -> str:
    name = base
    serial = 2
    while name in taken:
        name = f"{base}#{serial}"
        serial += 1
    taken.add(name)
    return name


def _groups_by_equivalent_lhs(
    cover: Sequence[FunctionalDependency],
) -> List[Tuple[List[Tuple[str, ...]], List[str]]]:
    """Bernstein's partition of the cover: ``[(keys, attributes), ...]``.

    Each group holds every cover FD whose LHS is *equivalent* (mutually
    determining, under the whole cover) to the group's first LHS; all
    the equivalent LHSs become candidate keys of the merged scheme.

    Merging applies the Biskup–Dayal–Bernstein refinement: the merged
    scheme materializes the key equivalences themselves (``K1 -> K2``,
    ``K2 -> K1``, …), and a group FD whose RHS is then derivable
    *without it* — from the other groups' FDs plus those equivalences —
    is transitively dependent on the keys, so it must not widen the
    merged scheme (it would drag a 3NF-violating attribute in; the FD
    stays preserved because everything that implies it is materialized
    elsewhere).
    """
    lhss = {tuple(sorted(fd.lhs)) for fd in cover}
    closures = {lhs: attribute_closure(lhs, list(cover)) for lhs in lhss}
    groups: List[List[Tuple[str, ...]]] = []
    assigned: Dict[Tuple[str, ...], int] = {}
    for fd in cover:
        lhs = tuple(sorted(fd.lhs))
        if lhs in assigned:
            continue
        index = None
        for i, keys in enumerate(groups):
            head = keys[0]
            if set(head) <= closures[lhs] and set(lhs) <= closures[head]:
                index = i
                keys.append(lhs)
                break
        if index is None:
            groups.append([lhs])
            index = len(groups) - 1
        assigned[lhs] = index

    out: List[Tuple[List[Tuple[str, ...]], List[str]]] = []
    for gi, keys in enumerate(groups):
        member = [
            part
            for fd in cover
            if assigned[tuple(sorted(fd.lhs))] == gi
            for part in fd.split_rhs()
            if not part.is_trivial()
        ]
        if len(keys) > 1:
            ring = [
                FunctionalDependency("", keys[i], keys[(i + 1) % len(keys)])
                for i in range(len(keys))
            ]
            others = [
                fd
                for fd in cover
                if assigned[tuple(sorted(fd.lhs))] != gi
            ]
            changed = True
            while changed:
                changed = False
                for fd in list(member):
                    rest = others + ring + [f for f in member if f is not fd]
                    if set(fd.rhs) <= attribute_closure(fd.lhs, rest):
                        member.remove(fd)
                        changed = True
                        break
        attrs: List[str] = []
        for source in [tuple(k) for k in keys] + [
            tuple(fd.lhs) + tuple(fd.rhs) for fd in member
        ]:
            for attr in source:
                if attr not in attrs:
                    attrs.append(attr)
        out.append((keys, attrs))
    return out


def bernstein_synthesis(
    universe: Sequence[str],
    fds: Sequence[FunctionalDependency],
    relation_prefix: str = "R",
    namer: Optional[Namer] = None,
    remove_avoidable: bool = True,
    single_ref: bool = True,
    ensure_lossless: bool = True,
) -> SynthesisOutcome:
    """Full 3NF synthesis; returns schemes, references and the steps.

    Deterministic: groups are emitted in sorted primary-key order, the
    repair relation (when the chase demands one) last.
    """
    universe = list(dict.fromkeys(universe))
    outcome = SynthesisOutcome(universe=tuple(universe))
    name = namer if namer is not None else _default_namer(relation_prefix)
    taken: Set[str] = set()

    cover = canonical_cover(fds)
    outcome.cover = cover
    outcome.steps.append(
        DecompositionStep(
            "canonical-cover",
            f"{len(list(fds))} input FD(s) -> {len(cover)} canonical FD(s)",
        )
    )

    # Bernstein's groups, one scheme each -----------------------------
    schemes: List[Tuple[Tuple[Tuple[str, ...], ...], Tuple[str, ...]]] = []
    for keys, attrs in _groups_by_equivalent_lhs(cover):
        schemes.append((tuple(sorted(keys)), tuple(sorted(attrs))))
    schemes.sort(key=lambda scheme: scheme[0][0])
    for keys, attrs in schemes:
        outcome.steps.append(
            DecompositionStep(
                "group",
                f"({', '.join(attrs)}) keyed by "
                + " | ".join("{" + ", ".join(k) + "}" for k in keys),
            )
        )

    # drop schemes contained in another scheme ------------------------
    kept: List[Tuple[Tuple[Tuple[str, ...], ...], Tuple[str, ...]]] = []
    for keys, attrs in schemes:
        attr_set = set(attrs)
        subsumed = any(
            attr_set <= set(other) and attrs != other for _k, other in schemes
        ) or any(attr_set == set(other) for _k, other in kept)
        if subsumed:
            outcome.steps.append(
                DecompositionStep(
                    "drop-subsumed",
                    f"({', '.join(attrs)}) is contained in another scheme",
                )
            )
            continue
        kept.append((keys, attrs))

    for index, (keys, attrs) in enumerate(kept):
        primary = keys[0]
        ordered = tuple(primary) + tuple(a for a in attrs if a not in primary)
        outcome.relations.append(
            SynthesizedRelation(
                name=_unique_name(name(index, primary, ordered), taken),
                attributes=ordered,
                key=primary,
                keys=keys,
            )
        )

    # lossless-join repair --------------------------------------------
    if ensure_lossless and not lossless_join(
        universe, outcome.fragments(), cover
    ):
        keys_of_universe = candidate_keys(universe, list(cover))
        global_key = tuple(
            sorted(keys_of_universe[0]) if keys_of_universe else universe
        )
        outcome.steps.append(
            DecompositionStep(
                "repair",
                f"chase found the fragments lossy; added key relation "
                f"({', '.join(global_key)})",
            )
        )
        outcome.relations.append(
            SynthesizedRelation(
                name=_unique_name(
                    name(len(outcome.relations), global_key, global_key), taken
                ),
                attributes=global_key,
                key=global_key,
                keys=(global_key,),
                origin="repair",
            )
        )
        outcome.repaired = True

    # avoidable-attribute removal -------------------------------------
    if remove_avoidable:
        _remove_avoidable_attributes(outcome, cover, universe)

    # foreign-key references ------------------------------------------
    outcome.references = _references(outcome.relations, single_ref)
    if outcome.references:
        outcome.steps.append(
            DecompositionStep(
                "references",
                f"{len(outcome.references)} foreign-key reference(s)"
                + (" after single-reference pruning" if single_ref else ""),
            )
        )
    return outcome


def _remove_avoidable_attributes(
    outcome: SynthesisOutcome,
    cover: Sequence[FunctionalDependency],
    universe: Sequence[str],
) -> None:
    """Greedy, fully-checked avoidable-attribute removal.

    A non-key attribute leaves a scheme only when every invariant
    survives without it: the universe stays covered, every cover FD
    stays derivable from the projected fragments, and the chase still
    certifies the join lossless.  Checked removal is weaker than the
    full LTK criterion (keys are never re-chosen) but is sound by
    construction — exactly the claims a certificate can vouch for.
    """
    for index, relation in enumerate(list(outcome.relations)):
        key_attrs = {a for k in relation.keys or (relation.key,) for a in k}
        for attr in [a for a in relation.attributes if a not in key_attrs]:
            trial = tuple(a for a in relation.attributes if a != attr)
            fragments = [
                trial if i == index else r.attributes
                for i, r in enumerate(outcome.relations)
            ]
            if {a for f in fragments for a in f} != set(universe):
                continue
            if not dependency_preserving(fragments, list(cover)):
                continue
            if not lossless_join(list(universe), fragments, list(cover)):
                continue
            trimmed_form = diagnose_normal_form(
                list(trial), project_fds(list(cover), trial)
            )
            if not trimmed_form.at_least(NormalForm.THIRD):
                continue
            relation = SynthesizedRelation(
                name=relation.name,
                attributes=trial,
                key=relation.key,
                keys=relation.keys,
                origin=relation.origin,
            )
            outcome.relations[index] = relation
            outcome.removed.append((relation.name, attr))
            outcome.steps.append(
                DecompositionStep(
                    "remove-avoidable",
                    f"dropped {attr} from {relation.name} (still lossless "
                    f"and dependency-preserving)",
                )
            )


def _references(
    relations: Sequence[SynthesizedRelation], single_ref: bool
) -> List[ForeignKeyReference]:
    """Foreign keys: a child cites every parent whose key it embeds."""
    references: List[ForeignKeyReference] = []
    for child in relations:
        child_attrs = set(child.attributes)
        for parent in relations:
            if parent.name == child.name:
                continue
            pair: List[ForeignKeyReference] = []
            for key in parent.keys or (parent.key,):
                if set(key) <= child_attrs and set(key) != child_attrs:
                    pair.append(
                        ForeignKeyReference(child.name, key, parent.name, key)
                    )
            if single_ref and len(pair) > 1:
                # keep the earliest key in priority (sorted) order
                pair = pair[:1]
            references.extend(pair)
    return references


def synthesize_3nf(
    universe: Sequence[str],
    fds: Sequence[FunctionalDependency],
    relation_prefix: str = "R",
) -> List[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Classic view of the synthesis: ``[(attributes, key), ...]``.

    Kept for the S-series ablations and older callers; delegates to
    :func:`bernstein_synthesis` with the refinements off, so the output
    is the plain textbook algorithm.
    """
    outcome = bernstein_synthesis(
        universe,
        fds,
        relation_prefix=relation_prefix,
        remove_avoidable=False,
        single_ref=False,
    )
    return [(r.attributes, r.key) for r in outcome.relations]
