"""Decomposition value object + single-FD split (the Restruct primitive).

Restruct's FD pass is, at the relational-theory level, the classical
binary split ``R(X)`` into ``R1(A ∪ B)`` and ``R2(X - B)`` for an FD
``A -> B`` — lossless because ``R1 ∩ R2 = A`` determines ``R1``.  This
module states that operation abstractly so tests can certify Restruct
against the chase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.dependencies.fd import FunctionalDependency
from repro.exceptions import ProcessError
from repro.normalization.chase import dependency_preserving, lossless_join


@dataclass(frozen=True)
class Decomposition:
    """A named decomposition of one attribute universe."""

    universe: Tuple[str, ...]
    fragments: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        covered = {a for f in self.fragments for a in f}
        if covered != set(self.universe):
            missing = sorted(set(self.universe) - covered)
            extra = sorted(covered - set(self.universe))
            raise ProcessError(
                f"decomposition does not cover the universe "
                f"(missing {missing}, extra {extra})"
            )

    def is_lossless(self, fds: Sequence[FunctionalDependency]) -> bool:
        return lossless_join(list(self.universe), list(self.fragments), fds)

    def preserves(self, fds: Sequence[FunctionalDependency]) -> bool:
        return dependency_preserving(list(self.fragments), fds)


def decompose_relation(
    universe: Sequence[str], fd: FunctionalDependency
) -> Decomposition:
    """The binary split along *fd* (Restruct's FD-pass primitive)."""
    universe = list(dict.fromkeys(universe))
    if not set(fd.lhs) <= set(universe) or not set(fd.rhs) <= set(universe):
        raise ProcessError(f"{fd!r} does not apply to {universe}")
    split = tuple(a for a in universe if a in fd.lhs or a in fd.rhs)
    rest = tuple(a for a in universe if a not in fd.rhs)
    return Decomposition(tuple(universe), (split, rest))
