"""The chase: lossless-join and dependency-preservation tests.

Classical tableau chase over a decomposition of a universe under a set
of FDs.  Used by tests to certify that Restruct's splits (and the
synthesis baseline's output) are lossless.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.dependencies.closure import attribute_closure
from repro.dependencies.fd import FunctionalDependency


def lossless_join(
    universe: Sequence[str],
    decomposition: Sequence[Sequence[str]],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """Tableau test: does joining the fragments recover the relation?

    Builds the classical matrix of distinguished (``a_j``) and
    non-distinguished (``b_ij``) symbols and chases it with *fds* until
    fixpoint; lossless iff some row becomes all-distinguished.
    """
    universe = list(dict.fromkeys(universe))
    col = {a: j for j, a in enumerate(universe)}
    # symbols: ("a", j) distinguished, ("b", i, j) otherwise
    table: List[List[Tuple]] = []
    for i, fragment in enumerate(decomposition):
        row = []
        fragment_set = set(fragment)
        for a in universe:
            if a in fragment_set:
                row.append(("a", col[a]))
            else:
                row.append(("b", i, col[a]))
        table.append(row)

    changed = True
    while changed:
        changed = False
        for fd in fds:
            lhs_idx = [col[a] for a in fd.lhs if a in col]
            rhs_idx = [col[a] for a in fd.rhs if a in col]
            if len(lhs_idx) != len(fd.lhs) or not rhs_idx:
                continue
            groups: Dict[Tuple, List[int]] = {}
            for r, row in enumerate(table):
                key = tuple(row[j] for j in lhs_idx)
                groups.setdefault(key, []).append(r)
            for rows in groups.values():
                if len(rows) < 2:
                    continue
                for j in rhs_idx:
                    symbols = {table[r][j] for r in rows}
                    if len(symbols) == 1:
                        continue
                    # unify: prefer a distinguished symbol
                    target = min(symbols)          # ("a", j) sorts first
                    for r in rows:
                        if table[r][j] != target:
                            table[r][j] = target
                            changed = True

    return any(all(sym[0] == "a" for sym in row) for row in table)


def dependency_preserving(
    decomposition: Sequence[Sequence[str]],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """Is every FD derivable from the projections onto the fragments?

    Uses the standard iterated-closure test (Ullman) rather than
    materializing the projected covers.
    """
    fragments = [set(f) for f in decomposition]

    def projected_closure(attrs: Sequence[str]) -> frozenset:
        closure = set(attrs)
        changed = True
        while changed:
            changed = False
            for fragment in fragments:
                seed = closure & fragment
                gain = attribute_closure(seed, list(fds)) & fragment
                if not gain <= closure:
                    closure |= gain
                    changed = True
        return frozenset(closure)

    for fd in fds:
        if not set(fd.rhs) <= projected_closure(tuple(fd.lhs)):
            return False
    return True
