"""BCNF decomposition by the classical analysis algorithm.

Repeatedly split any fragment that carries a BCNF-violating FD
``X -> Y`` (``X`` not a superkey of the fragment) into ``X+ ∩ R`` and
``X ∪ (R - X+)`` until every fragment is in BCNF.  Lossless by
construction — every split intersects on ``X``, which determines the
first half — and re-certified by the chase when the engine builds the
certificate.  Dependency preservation is *not* guaranteed; the engine
records the dependencies the decomposition lost.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dependencies.closure import attribute_closure
from repro.dependencies.fd import FunctionalDependency
from repro.normalization.certificate import DecompositionStep

__all__ = ["bcnf_decompose"]


def _violating_fd(
    fragment: Sequence[str], fds: Sequence[FunctionalDependency]
) -> Tuple[FunctionalDependency, frozenset]:
    """The first (deterministic) BCNF violation in *fragment*, or None.

    By the projection lemma (``X+`` under the projected FDs equals
    ``X+ ∩ R`` under the full set), violations are found against the
    *global* FDs directly.  The fast path checks each cover FD whose
    LHS lies inside the fragment; the complete fallback scans subsets
    in size order, catching violations whose minimal LHS is not a
    cover LHS — without ever materializing the exponential projection.
    """
    fragment_set = set(fragment)
    fd_list = list(fds)
    for fd in sorted(fd_list, key=lambda f: f.sort_key()):
        if not set(fd.lhs) <= fragment_set:
            continue
        closure = attribute_closure(fd.lhs, fd_list)
        gain = (closure & fragment_set) - set(fd.lhs)
        if gain and not fragment_set <= closure:
            violated = FunctionalDependency(
                "", tuple(sorted(fd.lhs)), tuple(sorted(gain))
            )
            return violated, closure
    ordered = list(fragment)
    n = len(ordered)
    masks = sorted(range(1, 1 << n), key=lambda m: (bin(m).count("1"), m))
    for mask in masks:
        lhs = tuple(ordered[i] for i in range(n) if mask & (1 << i))
        closure = attribute_closure(lhs, fd_list)
        gain = (closure & fragment_set) - set(lhs)
        if gain and not fragment_set <= closure:
            return FunctionalDependency("", lhs, tuple(sorted(gain))), closure
    return None, frozenset()


def bcnf_decompose(
    universe: Sequence[str],
    fds: Sequence[FunctionalDependency],
) -> Tuple[List[Tuple[str, ...]], List[DecompositionStep]]:
    """``(fragments, steps)`` — the BCNF analysis tree, flattened.

    Deterministic: fragments are processed breadth-first, the violating
    FD is the first applicable cover FD in sorted order (else the first
    violating attribute subset in size order), and the final fragments
    are deduplicated (a fragment contained in another is dropped) and
    sorted.
    """
    universe = list(dict.fromkeys(universe))
    steps: List[DecompositionStep] = []
    pending: List[Tuple[str, ...]] = [tuple(universe)]
    done: List[Tuple[str, ...]] = []
    while pending:
        fragment = pending.pop(0)
        fd, closure = _violating_fd(fragment, fds)
        if fd is None:
            done.append(fragment)
            continue
        inside = closure & set(fragment)
        left = tuple(a for a in fragment if a in inside)
        right = tuple(a for a in fragment if a in fd.lhs or a not in inside)
        steps.append(
            DecompositionStep(
                "bcnf-split",
                f"({', '.join(fragment)}) violates BCNF on {fd!r}; "
                f"split into ({', '.join(left)}) + ({', '.join(right)})",
            )
        )
        pending.append(left)
        pending.append(right)

    # drop fragments contained in another fragment
    kept: List[Tuple[str, ...]] = []
    for fragment in sorted(done):
        attrs = set(fragment)
        if any(
            attrs <= set(other) and fragment != other for other in done
        ) or any(attrs == set(other) for other in kept):
            steps.append(
                DecompositionStep(
                    "drop-subsumed",
                    f"({', '.join(fragment)}) is contained in another fragment",
                )
            )
            continue
        kept.append(fragment)
    return kept, steps
