"""The certified synthesis engine: normalize a schema, prove it.

Two entry points:

* :func:`normalize` — run Bernstein 3NF synthesis (or the BCNF analysis
  decomposition) over one attribute universe and return the relations,
  foreign-key references **and** a :class:`DecompositionCertificate`
  re-checked by :func:`verify_certificate` before it leaves the engine;
* :func:`certify_decomposition` — audit a decomposition produced
  elsewhere (Restruct's FD splits, a hand-written schema): chase it,
  partition the input FDs into preserved/lost, diagnose each fragment's
  normal form, optionally append a repair relation (a candidate key of
  the universe) when the chase finds the fragment set lossy, and emit
  the certificate recording all of it.

Certificates make the restruct phase auditable end-to-end: the paper's
§5 claim that the recovered schema is "at least 3NF" becomes a
machine-checkable artifact instead of an assertion in prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dependencies.closure import project_fds
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.keys import candidate_keys
from repro.exceptions import ProcessError
from repro.normalization.bcnf import bcnf_decompose
from repro.normalization.certificate import (
    DecompositionCertificate,
    DecompositionStep,
    RelationScheme,
    TARGET_FORMS,
    _preservation_split,
    check_certificate,
)
from repro.normalization.chase import lossless_join
from repro.normalization.normal_forms import diagnose_normal_form
from repro.normalization.synthesis import (
    ForeignKeyReference,
    Namer,
    SynthesizedRelation,
    _references,
    _unique_name,
    bernstein_synthesis,
    canonical_cover,
)

__all__ = [
    "NormalizationResult",
    "normalize",
    "certify_decomposition",
]


@dataclass
class NormalizationResult:
    """A normalized schema plus the certificate that vouches for it."""

    source: str
    target: str
    universe: Tuple[str, ...]
    relations: Tuple[SynthesizedRelation, ...]
    references: Tuple[ForeignKeyReference, ...]
    steps: Tuple[DecompositionStep, ...]
    repaired: bool
    certificate: DecompositionCertificate
    meta: Dict[str, Any] = field(default_factory=dict)

    def schemes(self) -> List[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
        """The classical ``[(attributes, key), ...]`` view."""
        return [(r.attributes, r.key) for r in self.relations]

    def __repr__(self) -> str:
        return (
            f"NormalizationResult({self.source} -> {len(self.relations)} "
            f"relation(s), target {self.target}, {self.certificate!r})"
        )


def _input_fds(fds: Sequence[FunctionalDependency]) -> List[FunctionalDependency]:
    """Relation-stripped, de-duplicated, non-trivial input FDs."""
    out: List[FunctionalDependency] = []
    seen: set = set()
    for fd in fds:
        if fd.is_trivial():
            continue
        bare = FunctionalDependency("", tuple(fd.lhs), tuple(fd.rhs))
        text = repr(bare)
        if text not in seen:
            seen.add(text)
            out.append(bare)
    return out


def _build_certificate(
    source: str,
    universe: Sequence[str],
    fds: Sequence[FunctionalDependency],
    target: str,
    relations: Sequence[SynthesizedRelation],
    steps: Sequence[DecompositionStep],
    repaired: bool,
    meta: Optional[Dict[str, Any]] = None,
) -> DecompositionCertificate:
    """Chase, preservation split and per-fragment diagnosis, recorded."""
    fragments = [r.attributes for r in relations]
    lossless = lossless_join(list(universe), fragments, list(fds))
    preserved, lost = _preservation_split(fragments, list(fds))
    schemes: List[RelationScheme] = []
    for relation in relations:
        local = project_fds(list(fds), relation.attributes)
        form = diagnose_normal_form(list(relation.attributes), local)
        schemes.append(
            RelationScheme(
                name=relation.name,
                attributes=relation.attributes,
                key=relation.key,
                normal_form=form.value,
                origin=relation.origin,
            )
        )
    return DecompositionCertificate(
        source=source,
        universe=tuple(universe),
        fds=tuple(repr(fd) for fd in fds),
        target=target,
        relations=tuple(schemes),
        steps=tuple(steps),
        lossless=lossless,
        repaired=repaired,
        preserved=tuple(repr(fd) for fd in preserved),
        lost=tuple(repr(fd) for fd in lost),
        meta=dict(meta or {}),
    )


def _source_namer(source: str) -> Namer:
    def name(index: int, key: Tuple[str, ...], attrs: Tuple[str, ...]) -> str:
        return f"{source}_{'_'.join(key)}"

    return name


def normalize(
    universe: Sequence[str],
    fds: Sequence[FunctionalDependency],
    target_nf: str = "3nf",
    source: str = "R",
    namer: Optional[Namer] = None,
    remove_avoidable: bool = True,
    single_ref: bool = True,
    self_check: bool = True,
) -> NormalizationResult:
    """Normalize one attribute universe to *target_nf*, with certificate.

    ``3nf`` runs Bernstein synthesis (lossless via the chase-driven
    repair relation, dependency-preserving by construction); ``bcnf``
    runs the analysis decomposition (lossless by construction, lost
    dependencies recorded).  The certificate is verified before the
    result is returned (*self_check*), so a buggy engine fails loudly
    rather than shipping an unprovable claim.
    """
    if target_nf not in TARGET_FORMS:
        raise ProcessError(
            f"unknown target normal form {target_nf!r} "
            f"(expected one of {', '.join(TARGET_FORMS)})"
        )
    universe = list(dict.fromkeys(universe))
    fd_list = _input_fds(fds)
    name = namer if namer is not None else _source_namer(source)
    meta: Dict[str, Any] = {"source": source, "algorithm": ""}

    if target_nf == "3nf":
        outcome = bernstein_synthesis(
            universe,
            fd_list,
            namer=name,
            remove_avoidable=remove_avoidable,
            single_ref=single_ref,
        )
        relations = list(outcome.relations)
        references = list(outcome.references)
        steps = list(outcome.steps)
        repaired = outcome.repaired
        meta["algorithm"] = "bernstein-3nf"
        if outcome.removed:
            meta["removed"] = [
                {"relation": rel, "attribute": attr}
                for rel, attr in outcome.removed
            ]
    else:
        cover = canonical_cover(fd_list)
        steps = [
            DecompositionStep(
                "canonical-cover",
                f"{len(fd_list)} input FD(s) -> {len(cover)} canonical FD(s)",
            )
        ]
        fragments, bcnf_steps = bcnf_decompose(universe, cover)
        steps.extend(bcnf_steps)
        relations = []
        taken: set = set()
        for index, fragment in enumerate(fragments):
            # candidate keys under the projected FDs; by the projection
            # lemma the closures agree, so the global cover serves
            keys = candidate_keys(list(fragment), cover)
            ordered_keys = tuple(sorted(tuple(sorted(k)) for k in keys))
            primary = ordered_keys[0]
            ordered = tuple(primary) + tuple(
                a for a in fragment if a not in primary
            )
            relations.append(
                SynthesizedRelation(
                    name=_unique_name(name(index, primary, ordered), taken),
                    attributes=ordered,
                    key=primary,
                    keys=ordered_keys,
                    origin="bcnf",
                )
            )
        references = _references(relations, single_ref)
        repaired = False
        meta["algorithm"] = "bcnf-analysis"

    if references:
        meta["references"] = [repr(ref) for ref in references]
    certificate = _build_certificate(
        source, universe, fd_list, target_nf, relations, steps, repaired, meta
    )
    if self_check:
        check_certificate(certificate)
    return NormalizationResult(
        source=source,
        target=target_nf,
        universe=tuple(universe),
        relations=tuple(relations),
        references=tuple(references),
        steps=tuple(steps),
        repaired=repaired,
        certificate=certificate,
        meta=meta,
    )


def certify_decomposition(
    source: str,
    universe: Sequence[str],
    fragments: Sequence[Tuple[str, Sequence[str], Sequence[str]]],
    fds: Sequence[FunctionalDependency],
    target: str = "3nf",
    steps: Sequence[DecompositionStep] = (),
    repair: bool = False,
    origin: str = "restruct",
    meta: Optional[Dict[str, Any]] = None,
) -> DecompositionCertificate:
    """Certify a decomposition produced outside the engine.

    *fragments* is ``[(name, attributes, key), ...]``.  The chase runs
    over the fragment set; when it finds the join lossy and *repair* is
    set, a repair relation — a candidate key of the universe — is
    appended (recorded with origin ``"repair"``), the pre-repair verdict
    is kept in ``meta["pre_repair_lossless"]``, and the chase re-runs
    over the repaired set.  The certificate records whatever the final
    verdict is; repair does not guarantee losslessness for arbitrary
    fragment sets, and the certificate never claims more than the chase
    proved.
    """
    universe = list(dict.fromkeys(universe))
    fd_list = _input_fds(fds)
    meta = dict(meta or {})
    steps = list(steps)
    taken: set = set()
    relations: List[SynthesizedRelation] = []
    for name, attrs, key in fragments:
        attrs = tuple(dict.fromkeys(attrs))
        relations.append(
            SynthesizedRelation(
                name=_unique_name(name, taken),
                attributes=attrs,
                key=tuple(key),
                keys=(tuple(key),),
                origin=origin,
            )
        )

    repaired = False
    if repair and not lossless_join(
        universe, [r.attributes for r in relations], fd_list
    ):
        keys = candidate_keys(universe, fd_list)
        global_key = tuple(sorted(keys[0])) if keys else tuple(universe)
        meta["pre_repair_lossless"] = False
        steps.append(
            DecompositionStep(
                "repair",
                f"chase found the fragments lossy; added key relation "
                f"({', '.join(global_key)})",
            )
        )
        relations.append(
            SynthesizedRelation(
                name=_unique_name(f"{source}__key", taken),
                attributes=global_key,
                key=global_key,
                keys=(global_key,),
                origin="repair",
            )
        )
        repaired = True

    return _build_certificate(
        source, universe, fd_list, target, relations, steps, repaired, meta
    )
