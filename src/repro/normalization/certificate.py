"""Machine-checkable decomposition certificates (``repro/normalization@1``).

A certificate is the synthesis engine's *proof obligation*: every
decomposition it (or Restruct) produces is shipped together with a
self-contained record of what was claimed — the input universe and FD
set, the steps taken, the chase tableau verdict, the preserved and lost
dependencies, and the normal form attained by every output relation.
:func:`verify_certificate` re-checks every claim **from scratch**, using
only the certificate document and the classical algorithms (attribute
closure, the chase, normal-form diagnosis); it shares no state with the
emitter, so a certificate that validates is evidence independent of the
code path that produced it.

The JSONL carrier: a header record (``{"type": "certificates",
"format": "repro/normalization@1", "count": N}``) followed by one
``{"type": "certificate", ...}`` record per decomposition, written by
:func:`write_certificates_jsonl` and re-read by
:func:`read_certificates_jsonl`.  See ``docs/NORMALIZATION.md`` for the
field-by-field format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dependencies.closure import attribute_closure, project_fds
from repro.dependencies.fd import FunctionalDependency
from repro.exceptions import ProcessError
from repro.normalization.chase import lossless_join
from repro.normalization.normal_forms import NormalForm, diagnose_normal_form
from repro.util.jsonl import load_jsonl, save_jsonl

__all__ = [
    "CERTIFICATE_FORMAT",
    "RelationScheme",
    "DecompositionStep",
    "DecompositionCertificate",
    "CertificateViolation",
    "certificate_to_dict",
    "certificate_from_dict",
    "certificate_records",
    "write_certificates_jsonl",
    "read_certificates_jsonl",
    "verify_certificate",
]

CERTIFICATE_FORMAT = "repro/normalization@1"

#: the target normal forms a certificate can claim
TARGET_FORMS = ("3nf", "bcnf")


@dataclass(frozen=True)
class RelationScheme:
    """One output relation of a decomposition, with its claimed form."""

    name: str
    attributes: Tuple[str, ...]
    key: Tuple[str, ...]
    normal_form: str              # "1NF" | "2NF" | "3NF" | "BCNF"
    #: provenance of the scheme within the decomposition
    origin: str = "synthesis"     # "synthesis" | "restruct" | "repair" | "bcnf"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "attributes": list(self.attributes),
            "key": list(self.key),
            "normal_form": self.normal_form,
            "origin": self.origin,
        }


@dataclass(frozen=True)
class DecompositionStep:
    """One recorded action of the synthesis/decomposition run."""

    action: str                   # e.g. "canonical-cover", "group", "repair"
    detail: str

    def as_dict(self) -> Dict[str, Any]:
        return {"action": self.action, "detail": self.detail}


@dataclass
class DecompositionCertificate:
    """Everything needed to re-check one decomposition from scratch."""

    #: name of the decomposed relation (or synthesis target)
    source: str
    #: the input attribute universe, in declaration order
    universe: Tuple[str, ...]
    #: the input FDs, as ``"lhs -> rhs"`` strings (relation-less)
    fds: Tuple[str, ...]
    #: the normal form the engine was asked for ("3nf" | "bcnf")
    target: str
    #: the output relations with their claimed normal forms
    relations: Tuple[RelationScheme, ...] = ()
    #: the recorded synthesis/decomposition steps, in order
    steps: Tuple[DecompositionStep, ...] = ()
    #: the chase verdict on the *final* fragment set
    lossless: bool = False
    #: True when the chase found the pre-repair fragments lossy and a
    #: repair relation (a key of the universe) was added
    repaired: bool = False
    #: input FDs derivable from the union of projected covers
    preserved: Tuple[str, ...] = ()
    #: input FDs *not* derivable — the recorded information loss
    lost: Tuple[str, ...] = ()
    #: free-form emitter annotations (never verified)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def dependency_preserving(self) -> bool:
        return not self.lost

    def fragment_sets(self) -> List[Tuple[str, ...]]:
        return [scheme.attributes for scheme in self.relations]

    def parsed_fds(self) -> List[FunctionalDependency]:
        return [FunctionalDependency.parse(text) for text in self.fds]

    def __repr__(self) -> str:
        verdict = "lossless" if self.lossless else "LOSSY"
        if self.repaired:
            verdict += "+repair"
        return (
            f"Certificate({self.source}: {len(self.universe)} attrs -> "
            f"{len(self.relations)} relations, {verdict}, "
            f"{len(self.lost)} lost)"
        )


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def certificate_to_dict(certificate: DecompositionCertificate) -> Dict[str, Any]:
    """One certificate as a JSON-ready record."""
    return {
        "type": "certificate",
        "source": certificate.source,
        "universe": list(certificate.universe),
        "fds": list(certificate.fds),
        "target": certificate.target,
        "relations": [scheme.as_dict() for scheme in certificate.relations],
        "steps": [step.as_dict() for step in certificate.steps],
        "lossless": certificate.lossless,
        "repaired": certificate.repaired,
        "preserved": list(certificate.preserved),
        "lost": list(certificate.lost),
        "meta": dict(certificate.meta),
    }


def certificate_from_dict(record: Dict[str, Any]) -> DecompositionCertificate:
    """Rebuild a certificate from its JSON record."""
    if record.get("type") != "certificate":
        raise ValueError(f"not a certificate record: {record.get('type')!r}")
    return DecompositionCertificate(
        source=record["source"],
        universe=tuple(record["universe"]),
        fds=tuple(record["fds"]),
        target=record["target"],
        relations=tuple(
            RelationScheme(
                name=r["name"],
                attributes=tuple(r["attributes"]),
                key=tuple(r["key"]),
                normal_form=r["normal_form"],
                origin=r.get("origin", "synthesis"),
            )
            for r in record["relations"]
        ),
        steps=tuple(
            DecompositionStep(s["action"], s["detail"])
            for s in record.get("steps", ())
        ),
        lossless=bool(record["lossless"]),
        repaired=bool(record.get("repaired", False)),
        preserved=tuple(record.get("preserved", ())),
        lost=tuple(record.get("lost", ())),
        meta=dict(record.get("meta", {})),
    )


def certificate_records(
    certificates: Sequence[DecompositionCertificate],
) -> List[Dict[str, Any]]:
    """Header + one record per certificate, ready for JSONL."""
    rows: List[Dict[str, Any]] = [
        {
            "type": "certificates",
            "format": CERTIFICATE_FORMAT,
            "count": len(certificates),
        }
    ]
    rows.extend(certificate_to_dict(c) for c in certificates)
    return rows


def write_certificates_jsonl(
    certificates: Sequence[DecompositionCertificate], path: str
) -> None:
    """Write certificates as a ``repro/normalization@1`` JSONL file."""
    save_jsonl(certificate_records(certificates), path)


def read_certificates_jsonl(path: str) -> List[DecompositionCertificate]:
    """Read a certificate JSONL file back, checking the header."""
    records = load_jsonl(path)
    if not records or records[0].get("format") != CERTIFICATE_FORMAT:
        raise ValueError(f"not a {CERTIFICATE_FORMAT} document: {path!r}")
    header = records[0]
    certificates = [certificate_from_dict(r) for r in records[1:]]
    if header.get("count") != len(certificates):
        raise ValueError(
            f"certificate header claims {header.get('count')} record(s), "
            f"file holds {len(certificates)}"
        )
    return certificates


# ----------------------------------------------------------------------
# independent verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertificateViolation:
    """One claim of the certificate that failed re-checking."""

    claim: str                    # which certificate field is wrong
    detail: str

    def __repr__(self) -> str:
        return f"CertificateViolation({self.claim}: {self.detail})"


def _preservation_split(
    fragments: Sequence[Sequence[str]],
    fds: Sequence[FunctionalDependency],
) -> Tuple[List[FunctionalDependency], List[FunctionalDependency]]:
    """(preserved, lost) input FDs under the iterated-closure test."""
    fragment_sets = [set(f) for f in fragments]

    def projected_closure(attrs: Sequence[str]) -> frozenset:
        closure = set(attrs)
        changed = True
        while changed:
            changed = False
            for fragment in fragment_sets:
                seed = closure & fragment
                gain = attribute_closure(seed, list(fds)) & fragment
                if not gain <= closure:
                    closure |= gain
                    changed = True
        return frozenset(closure)

    preserved: List[FunctionalDependency] = []
    lost: List[FunctionalDependency] = []
    for fd in fds:
        if set(fd.rhs) <= projected_closure(tuple(fd.lhs)):
            preserved.append(fd)
        else:
            lost.append(fd)
    return preserved, lost


def _claimed_form(name: str) -> NormalForm:
    for form in NormalForm:
        if form.value == name:
            return form
    raise ValueError(f"unknown normal form {name!r}")


def verify_certificate(
    certificate: DecompositionCertificate,
    strict_forms: bool = True,
) -> List[CertificateViolation]:
    """Re-check every claim of *certificate* from scratch.

    Returns the list of violations — empty means the certificate is
    valid.  The checks, in order:

    1. **well-formedness** — the target is known, relations are
       non-empty, every fragment lives inside the universe, the
       fragments cover the universe, every key is inside its fragment;
    2. **keys** — every claimed key actually determines its whole
       fragment under the projection of the input FDs onto it;
    3. **chase** — the classical tableau chase over the final fragment
       set must reproduce the recorded ``lossless`` verdict;
    4. **preservation** — the iterated-closure test must partition the
       input FDs into exactly the recorded ``preserved``/``lost`` sets;
    5. **normal forms** — each relation's diagnosed form (under its
       projected FDs) must equal the claimed form (*strict_forms*),
       and every relation must reach the certificate's ``target``
       unless dependencies were recorded as lost to reach it.
    """
    violations: List[CertificateViolation] = []

    def bad(claim: str, detail: str) -> None:
        violations.append(CertificateViolation(claim, detail))

    # 1. well-formedness ----------------------------------------------
    if certificate.target not in TARGET_FORMS:
        bad("target", f"unknown target normal form {certificate.target!r}")
        return violations
    if not certificate.relations:
        bad("relations", "certificate lists no output relations")
        return violations
    universe = set(certificate.universe)
    if len(certificate.universe) != len(universe):
        bad("universe", "universe lists duplicate attributes")
    try:
        fds = certificate.parsed_fds()
    except Exception as exc:                       # noqa: BLE001 - re-report
        bad("fds", f"unparseable FD in certificate: {exc}")
        return violations
    for fd in fds:
        if not (set(fd.lhs) | set(fd.rhs)) <= universe:
            bad("fds", f"{fd!r} mentions attributes outside the universe")
    covered: set = set()
    for scheme in certificate.relations:
        attrs = set(scheme.attributes)
        covered |= attrs
        if not attrs:
            bad("relations", f"{scheme.name}: empty attribute set")
        if not attrs <= universe:
            bad(
                "relations",
                f"{scheme.name}: attributes {sorted(attrs - universe)} "
                f"are outside the universe",
            )
        if not set(scheme.key) <= attrs:
            bad(
                "relations",
                f"{scheme.name}: key {list(scheme.key)} is not inside "
                f"the relation",
            )
    if covered != universe:
        missing = sorted(universe - covered)
        bad("relations", f"fragments do not cover the universe: {missing}")
    if violations:
        return violations

    # 2. keys ----------------------------------------------------------
    for scheme in certificate.relations:
        # X+ under the projected FDs is X+ ∩ R under the full set, so
        # the global closure answers the projected-superkey question
        closure = attribute_closure(scheme.key, fds)
        if not set(scheme.attributes) <= closure:
            bad(
                "keys",
                f"{scheme.name}: {list(scheme.key)} does not determine "
                f"{sorted(set(scheme.attributes) - closure)}",
            )

    # 3. the chase -----------------------------------------------------
    chase_verdict = lossless_join(
        list(certificate.universe), certificate.fragment_sets(), fds
    )
    if chase_verdict != certificate.lossless:
        bad(
            "lossless",
            f"chase says {chase_verdict}, certificate claims "
            f"{certificate.lossless}",
        )
    if certificate.repaired and not any(
        scheme.origin == "repair" for scheme in certificate.relations
    ):
        bad("repaired", "repair claimed but no repair relation is present")

    # 4. dependency preservation --------------------------------------
    preserved, lost = _preservation_split(certificate.fragment_sets(), fds)
    if {repr(fd) for fd in preserved} != set(certificate.preserved):
        bad(
            "preserved",
            f"re-derived preserved set {sorted(repr(f) for f in preserved)} "
            f"!= recorded {sorted(certificate.preserved)}",
        )
    if {repr(fd) for fd in lost} != set(certificate.lost):
        bad(
            "lost",
            f"re-derived lost set {sorted(repr(f) for f in lost)} "
            f"!= recorded {sorted(certificate.lost)}",
        )

    # 5. normal forms --------------------------------------------------
    target_form = (
        NormalForm.BOYCE_CODD if certificate.target == "bcnf" else NormalForm.THIRD
    )
    for scheme in certificate.relations:
        local = project_fds(fds, scheme.attributes)
        diagnosed = diagnose_normal_form(list(scheme.attributes), local)
        try:
            claimed = _claimed_form(scheme.normal_form)
        except ValueError as exc:
            bad("normal_form", f"{scheme.name}: {exc}")
            continue
        if strict_forms and diagnosed != claimed:
            bad(
                "normal_form",
                f"{scheme.name}: diagnosed {diagnosed}, claimed {claimed}",
            )
        elif not strict_forms and not diagnosed.at_least(claimed):
            bad(
                "normal_form",
                f"{scheme.name}: diagnosed {diagnosed}, below claimed {claimed}",
            )
        # a BCNF target may sacrifice dependencies; an *engine* relation
        # below the target without recorded loss is an unproven claim.
        # Restruct-origin schemes record the form the expert-driven
        # split attained — honesty, not a promise — so they are exempt.
        if (
            scheme.origin != "restruct"
            and not diagnosed.at_least(target_form)
            and not certificate.lost
        ):
            bad(
                "target",
                f"{scheme.name}: only {diagnosed}, below target "
                f"{target_form} with no recorded dependency loss",
            )
    return violations


def check_certificate(certificate: DecompositionCertificate) -> None:
    """Raise :class:`~repro.exceptions.ProcessError` on an invalid one."""
    violations = verify_certificate(certificate)
    if violations:
        summary = "; ".join(
            f"{v.claim}: {v.detail}" for v in violations[:3]
        )
        raise ProcessError(
            f"certificate for {certificate.source!r} failed verification "
            f"({len(violations)} violation(s)): {summary}"
        )
