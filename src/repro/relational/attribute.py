"""Attributes, qualified attribute references, and attribute sets.

The paper's notation distinguishes a single attribute (``R.a``) from a set
of attributes (``R.X``); both appear constantly in dependencies and in the
elicited sets ``K``, ``N``, ``LHS`` and ``H``.  :class:`AttributeRef` is the
hashable, ordered value object used everywhere an ``R.X`` appears.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.exceptions import SchemaError
from repro.relational.domain import DataType, TEXT
from repro.util.naming import is_valid_identifier


class Attribute:
    """A named, typed column of a relation schema.

    ``nullable`` reflects the *declared* ``not null`` constraint only; a
    unique declaration implies not-null (§4), which
    :class:`~repro.relational.schema.RelationSchema` enforces when it
    computes its constraint sets.
    """

    __slots__ = ("name", "dtype", "nullable")

    def __init__(self, name: str, dtype: DataType = TEXT, nullable: bool = True) -> None:
        if not is_valid_identifier(name):
            raise SchemaError(f"invalid attribute name: {name!r}")
        self.name = name
        self.dtype = dtype
        self.nullable = nullable

    def __repr__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"Attribute({self.name}: {self.dtype}{null})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and other.name == self.name
            and other.dtype == self.dtype
            and other.nullable == self.nullable
        )

    def __hash__(self) -> int:
        return hash(("Attribute", self.name, self.dtype, self.nullable))

    def with_nullable(self, nullable: bool) -> "Attribute":
        """Copy of this attribute with a different nullability."""
        return Attribute(self.name, self.dtype, nullable)


class AttributeSet:
    """An ordered, duplicate-free set of attribute *names* within one relation.

    Order matters for equi-joins over multiple attributes — the i-th
    attribute on one side pairs with the i-th on the other — so this is a
    sequence with set semantics.  Instances are immutable and hashable.
    """

    __slots__ = ("_names",)

    def __init__(self, names: Iterable[str]) -> None:
        seen = []
        for n in names:
            if n not in seen:
                seen.append(n)
        self._names: Tuple[str, ...] = tuple(seen)

    @classmethod
    def of(cls, *names: str) -> "AttributeSet":
        return cls(names)

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def as_sorted(self) -> "AttributeSet":
        """Canonical (name-sorted) version, for set-like comparisons."""
        return AttributeSet(sorted(self._names))

    def union(self, other: "AttributeSet") -> "AttributeSet":
        return AttributeSet(self._names + other._names)

    def difference(self, other: Iterable[str]) -> "AttributeSet":
        drop = set(other)
        return AttributeSet(n for n in self._names if n not in drop)

    def intersection(self, other: Iterable[str]) -> "AttributeSet":
        keep = set(other)
        return AttributeSet(n for n in self._names if n in keep)

    def issubset(self, other: Iterable[str]) -> bool:
        return set(self._names) <= set(other)

    def isdisjoint(self, other: Iterable[str]) -> bool:
        return set(self._names).isdisjoint(set(other))

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def __eq__(self, other: object) -> bool:
        """Set equality: order is join-relevant but not identity-relevant."""
        if isinstance(other, AttributeSet):
            return set(self._names) == set(other._names)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._names))

    def __repr__(self) -> str:
        return "{" + ", ".join(self._names) + "}"

    def sort_key(self) -> Tuple[str, ...]:
        return tuple(sorted(self._names))


class AttributeRef:
    """A qualified reference ``Relation.X`` to a set of attributes.

    This is the value object stored in the paper's sets ``K``, ``N``
    (singletons), ``LHS`` and ``H``.  Equality treats the attribute part as
    a set.
    """

    __slots__ = ("relation", "attributes")

    def __init__(self, relation: str, attributes: Iterable[str]) -> None:
        if isinstance(attributes, str):
            attributes = (attributes,)
        self.relation = relation
        self.attributes = AttributeSet(attributes)
        if not len(self.attributes):
            raise SchemaError("an attribute reference needs at least one attribute")

    @classmethod
    def single(cls, relation: str, attribute: str) -> "AttributeRef":
        return cls(relation, (attribute,))

    def is_single(self) -> bool:
        return len(self.attributes) == 1

    @property
    def attribute(self) -> str:
        """The attribute name, when the reference is a singleton."""
        if not self.is_single():
            raise SchemaError(f"{self!r} is not a single attribute")
        return self.attributes.names[0]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AttributeRef):
            return other.relation == self.relation and other.attributes == self.attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("AttributeRef", self.relation, self.attributes))

    def __repr__(self) -> str:
        return f"{self.relation}.{{{', '.join(self.attributes)}}}"

    def sort_key(self) -> Tuple[str, Tuple[str, ...]]:
        return (self.relation, self.attributes.sort_key())
