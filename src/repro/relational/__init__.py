"""In-memory relational engine: the substrate the DBRE method runs against.

This package provides everything the paper assumes a DBMS supplies:

- typed attributes with SQL-style NULL semantics (:mod:`repro.relational.domain`);
- relation schemas and a database schema (:mod:`repro.relational.schema`);
- tables (extensions) holding tuples (:mod:`repro.relational.table`);
- the constraints visible in a data dictionary — ``unique`` and
  ``not null`` — and the derived key constraints
  (:mod:`repro.relational.constraints`);
- the relational-algebra operations the algorithms use: projection,
  selection, equi-join, and ``count distinct``
  (:mod:`repro.relational.algebra`);
- a :class:`~repro.relational.database.Database` object bundling schema,
  extension and declared dependencies, with the paper's ``K`` and ``N``
  sets computed from the catalog.
"""

from repro.relational.domain import (
    NULL,
    NullType,
    DataType,
    INTEGER,
    REAL,
    TEXT,
    DATE,
    BOOLEAN,
    is_null,
    value_in_domain,
)
from repro.relational.attribute import Attribute, AttributeRef, AttributeSet
from repro.relational.schema import RelationSchema, DatabaseSchema
from repro.relational.table import Row, Table
from repro.relational.constraints import (
    UniqueConstraint,
    NotNullConstraint,
    KeyConstraint,
    key_attribute_sets,
    not_null_attributes,
)
from repro.relational.database import Database
from repro.relational.algebra import (
    project,
    distinct_values,
    count_distinct,
    equijoin_match_count,
    select_equal,
    natural_intersection,
)
from repro.relational.catalog import Catalog, CatalogEntry

__all__ = [
    "NULL",
    "NullType",
    "DataType",
    "INTEGER",
    "REAL",
    "TEXT",
    "DATE",
    "BOOLEAN",
    "is_null",
    "value_in_domain",
    "Attribute",
    "AttributeRef",
    "AttributeSet",
    "RelationSchema",
    "DatabaseSchema",
    "Row",
    "Table",
    "UniqueConstraint",
    "NotNullConstraint",
    "KeyConstraint",
    "key_attribute_sets",
    "not_null_attributes",
    "Database",
    "project",
    "distinct_values",
    "count_distinct",
    "equijoin_match_count",
    "select_equal",
    "natural_intersection",
    "Catalog",
    "CatalogEntry",
]
