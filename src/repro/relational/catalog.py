"""The data dictionary (catalog) of the engine.

§4 of the paper stresses that the sets ``K`` and ``N`` "can be extracted
from the data dictionary" without asking the expert.  The catalog is that
dictionary: a queryable view over the declared schema, independent of the
extensions.  It also records statistics (row counts, per-attribute distinct
counts) which the IND-Discovery benchmarks use as the analogue of DBMS
statistics tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.relational.algebra import count_distinct
from repro.relational.attribute import AttributeRef
from repro.relational.domain import DataType, is_null
from repro.relational.schema import DatabaseSchema

if TYPE_CHECKING:  # pragma: no cover
    from repro.relational.database import Database


@dataclass(frozen=True)
class CatalogEntry:
    """One attribute's dictionary row."""

    relation: str
    attribute: str
    dtype: DataType
    nullable: bool
    in_key: bool
    position: int


@dataclass
class AttributeStatistics:
    """Extension statistics for one attribute (DBMS ``ANALYZE`` analogue)."""

    relation: str
    attribute: str
    row_count: int
    distinct_count: int
    null_count: int

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count


@dataclass
class Catalog:
    """Queryable data dictionary over a :class:`DatabaseSchema`."""

    schema: DatabaseSchema
    _stats: Dict[Tuple[str, str], AttributeStatistics] = field(default_factory=dict)

    def entries(self) -> List[CatalogEntry]:
        """All dictionary rows, ordered by (relation, position)."""
        rows: List[CatalogEntry] = []
        for rel in self.schema:
            key_attrs = {a for u in rel.uniques for a in u.attributes}
            for pos, attr in enumerate(rel.attributes):
                rows.append(
                    CatalogEntry(
                        relation=rel.name,
                        attribute=attr.name,
                        dtype=attr.dtype,
                        nullable=attr.nullable,
                        in_key=attr.name in key_attrs,
                        position=pos,
                    )
                )
        return rows

    def entry(self, relation: str, attribute: str) -> CatalogEntry:
        rel = self.schema.relation(relation)
        attr = rel.attribute(attribute)
        key_attrs = {a for u in rel.uniques for a in u.attributes}
        return CatalogEntry(
            relation=relation,
            attribute=attribute,
            dtype=attr.dtype,
            nullable=attr.nullable,
            in_key=attribute in key_attrs,
            position=rel.position(attribute),
        )

    def key_set(self) -> List[AttributeRef]:
        """The paper's ``K`` (delegates to the schema)."""
        return self.schema.key_set()

    def not_null_set(self) -> List[AttributeRef]:
        """The paper's ``N`` (delegates to the schema)."""
        return self.schema.not_null_set()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def analyze(self, database: "Database") -> None:
        """Recompute per-attribute statistics from the extensions."""
        self._stats.clear()
        for rel in self.schema:
            table = database.table(rel.name)
            for attr in rel.attribute_names:
                nulls = sum(1 for row in table if is_null(row[attr]))
                self._stats[(rel.name, attr)] = AttributeStatistics(
                    relation=rel.name,
                    attribute=attr,
                    row_count=len(table),
                    distinct_count=count_distinct(table, (attr,)),
                    null_count=nulls,
                )

    def statistics(self, relation: str, attribute: str) -> Optional[AttributeStatistics]:
        return self._stats.get((relation, attribute))

    def all_statistics(self) -> List[AttributeStatistics]:
        return [self._stats[k] for k in sorted(self._stats)]
