"""The database triple ``(R, E, Δ)`` of the paper.

A :class:`Database` bundles the schema ``R``, the extension ``E`` (held
by a pluggable :class:`~repro.backends.base.ExtensionBackend`) and the
dependency set ``Δ = F ∪ IND`` — empty at the start of a
reverse-engineering run, filled in by the method.  Every extension
access made through the database is counted, so the benchmarks can
report how many queries each algorithm issues (the paper's efficiency
argument for query-guided discovery); where the answer comes from — the
in-memory engine or pushed-down SQL on a live SQLite database — is the
backend's business, never the method's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ArityError
from repro.relational.catalog import Catalog
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.table import Table

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.base import ExtensionBackend
    from repro.dependencies.fd import FunctionalDependency
    from repro.dependencies.ind import InclusionDependency


@dataclass
class QueryCounter:
    """Instrumentation: how often the extension was consulted."""

    count_distinct: int = 0
    join_count: int = 0
    fd_checks: int = 0
    inclusion_checks: int = 0

    def total(self) -> int:
        return (
            self.count_distinct
            + self.join_count
            + self.fd_checks
            + self.inclusion_checks
        )

    def reset(self) -> None:
        self.count_distinct = 0
        self.join_count = 0
        self.fd_checks = 0
        self.inclusion_checks = 0


class Database:
    """The relational database ``(R, E, Δ)`` the method operates on."""

    def __init__(
        self,
        schema: Optional[DatabaseSchema] = None,
        backend: Optional["ExtensionBackend"] = None,
    ) -> None:
        if backend is None:
            from repro.backends.memory import MemoryBackend

            backend = MemoryBackend()
        self.schema = schema or DatabaseSchema()
        self.backend = backend
        self.backend.attach(self.schema)
        self.fds: List["FunctionalDependency"] = []
        self.inds: List["InclusionDependency"] = []
        self.counter = QueryCounter()
        self.catalog = Catalog(self.schema)

    # ------------------------------------------------------------------
    # schema / table management
    # ------------------------------------------------------------------
    def create_relation(self, relation: RelationSchema) -> Table:
        """Add a relation to ``R`` with an empty extension."""
        self.schema.add(relation)
        return self.backend.create_relation(relation)

    def drop_relation(self, name: str) -> None:
        # backend first: it validates the name against the shared schema
        self.backend.drop_relation(name)
        self.schema.remove(name)

    def replace_relation(self, relation: RelationSchema) -> Table:
        """Swap a relation's schema, projecting its extension (Restruct)."""
        self.schema.replace(relation)
        return self.backend.replace_relation(relation)

    def table(self, name: str) -> Table:
        return self.backend.table(name)

    def insert(self, relation: str, values: Union[Sequence[Any], Mapping[str, Any]]) -> None:
        self.backend.insert(relation, values)

    def insert_many(self, relation: str, rows: Iterable[Union[Sequence[Any], Mapping[str, Any]]]) -> None:
        self.backend.insert_many(relation, rows)

    def tables(self) -> Iterator[Table]:
        for name in self.schema.relation_names:
            yield self.backend.table(name)

    def validate(self) -> None:
        """Check every declared constraint of every table."""
        for t in self.tables():
            t.validate()

    def violations(self) -> List[str]:
        out: List[str] = []
        for t in self.tables():
            out.extend(t.violations())
        return out

    # ------------------------------------------------------------------
    # the paper's query primitives (instrumented)
    # ------------------------------------------------------------------
    def count_distinct(self, relation: str, attrs: Sequence[str]) -> int:
        """``||r[X]||`` — select count distinct X from R."""
        self.counter.count_distinct += 1
        return self.backend.count_distinct(relation, tuple(attrs))

    def join_count(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> int:
        """``||r_k[A_k] ⋈ r_l[A_l]||``."""
        self.counter.join_count += 1
        if len(left_attrs) != len(right_attrs):
            raise ArityError(
                f"equi-join arity mismatch: {list(left_attrs)} vs "
                f"{list(right_attrs)}"
            )
        return self.backend.join_count(
            left, tuple(left_attrs), right, tuple(right_attrs)
        )

    def fd_holds(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
        """Does ``lhs -> rhs`` hold in the extension of *relation*?"""
        self.counter.fd_checks += 1
        return self.backend.fd_holds(relation, tuple(lhs), tuple(rhs))

    def inclusion_holds(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> bool:
        """Does ``R_left[A] ≪ R_right[B]`` hold in the extension?"""
        self.counter.inclusion_checks += 1
        if len(left_attrs) != len(right_attrs):
            raise ArityError(
                f"inclusion arity mismatch: {list(left_attrs)} vs "
                f"{list(right_attrs)}"
            )
        return self.backend.inclusion_holds(
            left, tuple(left_attrs), right, tuple(right_attrs)
        )

    # ------------------------------------------------------------------
    # dependency bookkeeping
    # ------------------------------------------------------------------
    def add_fd(self, fd: "FunctionalDependency") -> None:
        if fd not in self.fds:
            self.fds.append(fd)

    def add_ind(self, ind: "InclusionDependency") -> None:
        if ind not in self.inds:
            self.inds.append(ind)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def copy(self, backend: Optional["ExtensionBackend"] = None) -> "Database":
        """Deep copy of schema + extension (dependencies reset).

        Restruct mutates the database it is given; callers that want to
        keep the original (e.g. to diff before/after) copy it first.
        Without an explicit *backend* the copy lives on a fresh sibling
        of this database's backend (memory stays memory, SQLite spawns a
        private in-memory SQLite store), so a pushdown pipeline run
        restructures inside the engine; passing one converts between
        backends — ``db.copy(backend=MemoryBackend())`` materializes a
        SQLite extension in memory.
        """
        clone = Database(self.schema.copy(), backend=backend or self.backend.spawn())
        for name in self.schema.relation_names:
            clone.insert_many(name, self.backend.rows(name))
        return clone

    def close(self) -> None:
        """Release backend resources (SQLite connections, caches)."""
        self.backend.close()

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}:{self.backend.row_count(name)}"
            for name in self.schema.relation_names
        )
        return f"Database({sizes})"
