"""The database triple ``(R, E, Δ)`` of the paper.

A :class:`Database` bundles the schema ``R``, the extension ``E`` (one
:class:`~repro.relational.table.Table` per relation) and the dependency
set ``Δ = F ∪ IND`` — empty at the start of a reverse-engineering run,
filled in by the method.  Every extension access made through the
database is counted, so the benchmarks can report how many queries each
algorithm issues (the paper's efficiency argument for query-guided
discovery).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ArityError, UnknownRelationError
from repro.relational import algebra
from repro.relational.catalog import Catalog
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.table import Table

if TYPE_CHECKING:  # pragma: no cover
    from repro.dependencies.fd import FunctionalDependency
    from repro.dependencies.ind import InclusionDependency


@dataclass
class QueryCounter:
    """Instrumentation: how often the extension was consulted."""

    count_distinct: int = 0
    join_count: int = 0
    fd_checks: int = 0
    inclusion_checks: int = 0

    def total(self) -> int:
        return (
            self.count_distinct
            + self.join_count
            + self.fd_checks
            + self.inclusion_checks
        )

    def reset(self) -> None:
        self.count_distinct = 0
        self.join_count = 0
        self.fd_checks = 0
        self.inclusion_checks = 0


class Database:
    """The relational database ``(R, E, Δ)`` the method operates on."""

    def __init__(self, schema: Optional[DatabaseSchema] = None) -> None:
        self.schema = schema or DatabaseSchema()
        self._tables: Dict[str, Table] = {
            r.name: Table(r) for r in self.schema
        }
        self.fds: List["FunctionalDependency"] = []
        self.inds: List["InclusionDependency"] = []
        self.counter = QueryCounter()
        self.catalog = Catalog(self.schema)
        # distinct-value cache, keyed by (relation, attrs) and guarded by
        # the table's mutation version — the engine's answer to the many
        # repeated ||r[X]|| probes the method issues.  The QueryCounter
        # still counts every *logical* query; the cache only avoids
        # repeated physical scans.
        self._distinct_cache: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # schema / table management
    # ------------------------------------------------------------------
    def create_relation(self, relation: RelationSchema) -> Table:
        """Add a relation to ``R`` with an empty extension."""
        self.schema.add(relation)
        table = Table(relation)
        self._tables[relation.name] = table
        return table

    def drop_relation(self, name: str) -> None:
        self.schema.remove(name)
        del self._tables[name]

    def replace_relation(self, relation: RelationSchema) -> Table:
        """Swap a relation's schema, projecting its extension (Restruct)."""
        old = self.table(relation.name)
        self.schema.replace(relation)
        table = old.with_schema(relation)
        self._tables[relation.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def insert(self, relation: str, values: Union[Sequence[Any], Mapping[str, Any]]) -> None:
        self.table(relation).insert(values)

    def insert_many(self, relation: str, rows: Iterable[Union[Sequence[Any], Mapping[str, Any]]]) -> None:
        self.table(relation).insert_many(rows)

    def tables(self) -> Iterator[Table]:
        for name in sorted(self._tables):
            yield self._tables[name]

    def validate(self) -> None:
        """Check every declared constraint of every table."""
        for t in self.tables():
            t.validate()

    def violations(self) -> List[str]:
        out: List[str] = []
        for t in self.tables():
            out.extend(t.violations())
        return out

    # ------------------------------------------------------------------
    # the paper's query primitives (instrumented)
    # ------------------------------------------------------------------
    def _distinct(self, relation: str, attrs: Sequence[str]) -> frozenset:
        """Cached distinct non-NULL projections (version-guarded)."""
        table = self.table(relation)
        key = (relation, tuple(attrs))
        cached = self._distinct_cache.get(key)
        if cached is not None and cached[0] == table.version:
            return cached[1]
        values = frozenset(algebra.distinct_values(table, tuple(attrs)))
        self._distinct_cache[key] = (table.version, values)
        return values

    def count_distinct(self, relation: str, attrs: Sequence[str]) -> int:
        """``||r[X]||`` — select count distinct X from R."""
        self.counter.count_distinct += 1
        return len(self._distinct(relation, attrs))

    def join_count(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> int:
        """``||r_k[A_k] ⋈ r_l[A_l]||``."""
        self.counter.join_count += 1
        if len(left_attrs) != len(right_attrs):
            raise ArityError(
                f"equi-join arity mismatch: {list(left_attrs)} vs "
                f"{list(right_attrs)}"
            )
        return len(
            self._distinct(left, left_attrs) & self._distinct(right, right_attrs)
        )

    def fd_holds(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
        """Does ``lhs -> rhs`` hold in the extension of *relation*?"""
        self.counter.fd_checks += 1
        return algebra.functional_maps(self.table(relation), lhs, rhs)

    def inclusion_holds(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> bool:
        """Does ``R_left[A] ≪ R_right[B]`` hold in the extension?"""
        self.counter.inclusion_checks += 1
        if len(left_attrs) != len(right_attrs):
            raise ArityError(
                f"inclusion arity mismatch: {list(left_attrs)} vs "
                f"{list(right_attrs)}"
            )
        return self._distinct(left, left_attrs) <= self._distinct(
            right, right_attrs
        )

    # ------------------------------------------------------------------
    # dependency bookkeeping
    # ------------------------------------------------------------------
    def add_fd(self, fd: "FunctionalDependency") -> None:
        if fd not in self.fds:
            self.fds.append(fd)

    def add_ind(self, ind: "InclusionDependency") -> None:
        if ind not in self.inds:
            self.inds.append(ind)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def copy(self) -> "Database":
        """Deep copy of schema + extension (dependencies reset).

        Restruct mutates the database it is given; callers that want to
        keep the original (e.g. to diff before/after) copy it first.
        """
        clone = Database(self.schema.copy())
        for table in self.tables():
            clone.insert_many(table.name, (row.values for row in table))
        return clone

    def __repr__(self) -> str:
        sizes = ", ".join(f"{t.name}:{len(t)}" for t in self.tables())
        return f"Database({sizes})"
