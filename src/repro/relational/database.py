"""The database triple ``(R, E, Δ)`` of the paper.

A :class:`Database` bundles the schema ``R``, the extension ``E`` (held
by a pluggable :class:`~repro.backends.base.ExtensionBackend`) and the
dependency set ``Δ = F ∪ IND`` — empty at the start of a
reverse-engineering run, filled in by the method.  Every extension
access made through the database flows through an
:class:`~repro.obs.instrument.InstrumentedBackend`, which records one
:class:`~repro.obs.tracer.PrimitiveEvent` (wall time, cache hit/miss,
rows touched) on the database's :class:`~repro.obs.tracer.Tracer`; the
:class:`TracedQueryCounter` the benchmarks read is a *view* over that
event stream, so the query accounting (the paper's efficiency argument
for query-guided discovery) and the exported traces can never disagree.
Where the answer comes from — the in-memory engine or pushed-down SQL
on a live SQLite database — is the backend's business, never the
method's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ArityError
from repro.obs.instrument import InstrumentedBackend
from repro.obs.tracer import Tracer
from repro.relational.catalog import Catalog
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.table import Table

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.base import ExtensionBackend
    from repro.dependencies.fd import FunctionalDependency
    from repro.dependencies.ind import InclusionDependency


class QueryCounter:
    """Instrumentation: how often the extension was consulted.

    The standalone form holds plain assignable counts (handy for tests
    and for assembling a :class:`~repro.evaluation.counters.CostReport`
    from an aggregate); every :class:`Database` carries the
    :class:`TracedQueryCounter` subclass, whose counts are computed from
    the tracer's event stream instead of maintained by hand.
    """

    def __init__(
        self,
        count_distinct: int = 0,
        join_count: int = 0,
        fd_checks: int = 0,
        inclusion_checks: int = 0,
    ) -> None:
        self.count_distinct = count_distinct
        self.join_count = join_count
        self.fd_checks = fd_checks
        self.inclusion_checks = inclusion_checks

    def total(self) -> int:
        """All extension queries, across the four primitives."""
        return (
            self.count_distinct
            + self.join_count
            + self.fd_checks
            + self.inclusion_checks
        )

    def reset(self) -> None:
        """Zero every count."""
        self.count_distinct = 0
        self.join_count = 0
        self.fd_checks = 0
        self.inclusion_checks = 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(count_distinct={self.count_distinct}, "
            f"join_count={self.join_count}, fd_checks={self.fd_checks}, "
            f"inclusion_checks={self.inclusion_checks})"
        )


class TracedQueryCounter(QueryCounter):
    """A live :class:`QueryCounter` view over a tracer's event stream.

    No second bookkeeping: each count is the number of matching
    :class:`~repro.obs.tracer.PrimitiveEvent` records since the last
    :meth:`reset` (which just moves a watermark — the trace itself is
    never truncated).
    """

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._mark = 0

    def _window(self):
        events = self._tracer.events
        if self._mark > len(events):  # the tracer was reset underneath us
            self._mark = 0
        return events[self._mark:]

    def _count(self, primitive: str) -> int:
        return sum(1 for e in self._window() if e.primitive == primitive)

    @property
    def count_distinct(self) -> int:
        """``||r[X]||`` probes since the watermark."""
        return self._count("count_distinct")

    @property
    def join_count(self) -> int:
        """Equi-join cardinality queries since the watermark."""
        return self._count("join_count")

    @property
    def fd_checks(self) -> int:
        """FD satisfaction checks since the watermark."""
        return self._count("fd_holds")

    @property
    def inclusion_checks(self) -> int:
        """Inclusion checks since the watermark."""
        return self._count("inclusion_holds")

    def total(self) -> int:
        """All primitive events since the watermark."""
        return len(self._window())

    def reset(self) -> None:
        """Move the watermark past every event recorded so far."""
        self._mark = len(self._tracer.events)


class Database:
    """The relational database ``(R, E, Δ)`` the method operates on."""

    def __init__(
        self,
        schema: Optional[DatabaseSchema] = None,
        backend: Optional["ExtensionBackend"] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if backend is None:
            from repro.backends.memory import MemoryBackend

            backend = MemoryBackend()
        self.schema = schema or DatabaseSchema()
        self.backend = backend
        self.backend.attach(self.schema)
        self.tracer = tracer if tracer is not None else Tracer()
        self._instrumented = InstrumentedBackend(backend, self.tracer)
        self.fds: List["FunctionalDependency"] = []
        self.inds: List["InclusionDependency"] = []
        self.counter: QueryCounter = TracedQueryCounter(self.tracer)
        self.catalog = Catalog(self.schema)

    # ------------------------------------------------------------------
    # schema / table management
    # ------------------------------------------------------------------
    def create_relation(self, relation: RelationSchema) -> Table:
        """Add a relation to ``R`` with an empty extension."""
        self.schema.add(relation)
        return self.backend.create_relation(relation)

    def drop_relation(self, name: str) -> None:
        # backend first: it validates the name against the shared schema
        self.backend.drop_relation(name)
        self.schema.remove(name)

    def replace_relation(self, relation: RelationSchema) -> Table:
        """Swap a relation's schema, projecting its extension (Restruct)."""
        self.schema.replace(relation)
        return self.backend.replace_relation(relation)

    def table(self, name: str) -> Table:
        return self.backend.table(name)

    def insert(self, relation: str, values: Union[Sequence[Any], Mapping[str, Any]]) -> None:
        self.backend.insert(relation, values)

    def insert_many(self, relation: str, rows: Iterable[Union[Sequence[Any], Mapping[str, Any]]]) -> None:
        self.backend.insert_many(relation, rows)

    def tables(self) -> Iterator[Table]:
        for name in self.schema.relation_names:
            yield self.backend.table(name)

    def validate(self) -> None:
        """Check every declared constraint of every table."""
        for t in self.tables():
            t.validate()

    def violations(self) -> List[str]:
        out: List[str] = []
        for t in self.tables():
            out.extend(t.violations())
        return out

    # ------------------------------------------------------------------
    # the paper's query primitives (instrumented)
    # ------------------------------------------------------------------
    def count_distinct(self, relation: str, attrs: Sequence[str]) -> int:
        """``||r[X]||`` — select count distinct X from R."""
        return self._instrumented.count_distinct(relation, tuple(attrs))

    def join_count(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> int:
        """``||r_k[A_k] ⋈ r_l[A_l]||``."""
        if len(left_attrs) != len(right_attrs):
            raise ArityError(
                f"equi-join arity mismatch: {list(left_attrs)} vs "
                f"{list(right_attrs)}"
            )
        return self._instrumented.join_count(
            left, tuple(left_attrs), right, tuple(right_attrs)
        )

    def fd_holds(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
        """Does ``lhs -> rhs`` hold in the extension of *relation*?"""
        return self._instrumented.fd_holds(relation, tuple(lhs), tuple(rhs))

    def inclusion_holds(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> bool:
        """Does ``R_left[A] ≪ R_right[B]`` hold in the extension?"""
        if len(left_attrs) != len(right_attrs):
            raise ArityError(
                f"inclusion arity mismatch: {list(left_attrs)} vs "
                f"{list(right_attrs)}"
            )
        return self._instrumented.inclusion_holds(
            left, tuple(left_attrs), right, tuple(right_attrs)
        )

    # ------------------------------------------------------------------
    # dependency bookkeeping
    # ------------------------------------------------------------------
    def add_fd(self, fd: "FunctionalDependency") -> None:
        if fd not in self.fds:
            self.fds.append(fd)

    def add_ind(self, ind: "InclusionDependency") -> None:
        if ind not in self.inds:
            self.inds.append(ind)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def copy(
        self,
        backend: Optional["ExtensionBackend"] = None,
        tracer: Optional[Tracer] = None,
    ) -> "Database":
        """Deep copy of schema + extension (dependencies reset).

        Restruct mutates the database it is given; callers that want to
        keep the original (e.g. to diff before/after) copy it first.
        Without an explicit *backend* the copy lives on a fresh sibling
        of this database's backend (memory stays memory, SQLite spawns a
        private in-memory SQLite store), so a pushdown pipeline run
        restructures inside the engine; passing one converts between
        backends — ``db.copy(backend=MemoryBackend())`` materializes a
        SQLite extension in memory.  The copy records on its own fresh
        tracer unless *tracer* hands it a shared one (the pipeline does,
        so phase spans and primitive events land in one trace).
        """
        clone = Database(
            self.schema.copy(),
            backend=backend or self.backend.spawn(),
            tracer=tracer,
        )
        for name in self.schema.relation_names:
            clone.insert_many(name, self.backend.rows(name))
        return clone

    def close(self) -> None:
        """Release backend resources (SQLite connections, caches)."""
        self.backend.close()

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}:{self.backend.row_count(name)}"
            for name in self.schema.relation_names
        )
        return f"Database({sizes})"
