"""The relational-algebra primitives the DBRE method queries with.

§2 of the paper defines ``||r[X]||`` as ``select count distinct X from R``
and uses three counts per equi-join: ``N_k = ||r_k[A_k]||``,
``N_l = ||r_l[A_l]||`` and ``N_kl = ||r_k[A_k] ⋈ r_l[A_l]||``.  Because an
equi-join matches on value equality, ``N_kl`` is exactly the cardinality of
the intersection of the two distinct value sets — that is how this module
computes it.  NULL follows SQL: it is skipped by ``count distinct`` and
never joins.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Sequence, Set, Tuple

from repro.exceptions import ArityError
from repro.relational.domain import is_null
from repro.relational.table import Row, Table

ValueTuple = Tuple[Any, ...]


def project(table: Table, attrs: Sequence[str]) -> List[ValueTuple]:
    """``r[Y]`` as a list (bag semantics — duplicates preserved)."""
    return [row.project(attrs) for row in table]


def distinct_values(table: Table, attrs: Sequence[str]) -> Set[ValueTuple]:
    """The distinct, fully non-NULL projections of *table* on *attrs*.

    Tuples with a NULL in any projected position are excluded, matching
    SQL ``count(distinct ...)`` and FK-join behaviour.
    """
    out: Set[ValueTuple] = set()
    for row in table:
        values = row.project(attrs)
        if any(is_null(v) for v in values):
            continue
        out.add(values)
    return out


def count_distinct(table: Table, attrs: Sequence[str]) -> int:
    """``||r[X]||`` — the paper's distinct-count primitive."""
    return len(distinct_values(table, attrs))


def equijoin_match_count(
    left: Table,
    left_attrs: Sequence[str],
    right: Table,
    right_attrs: Sequence[str],
) -> int:
    """``N_kl = ||r_k[A_k] ⋈ r_l[A_l]||``.

    The distinct count over the join column(s) equals the cardinality of
    the intersection of the two distinct value sets; computing it that way
    is both faithful to the paper's use and O(|r_k| + |r_l|).
    """
    if len(left_attrs) != len(right_attrs):
        raise ArityError(
            f"equi-join arity mismatch: {list(left_attrs)} vs {list(right_attrs)}"
        )
    return len(distinct_values(left, left_attrs) & distinct_values(right, right_attrs))


def natural_intersection(
    left: Table,
    left_attrs: Sequence[str],
    right: Table,
    right_attrs: Sequence[str],
) -> Set[ValueTuple]:
    """The shared distinct value combinations of the two sides."""
    if len(left_attrs) != len(right_attrs):
        raise ArityError(
            f"equi-join arity mismatch: {list(left_attrs)} vs {list(right_attrs)}"
        )
    return distinct_values(left, left_attrs) & distinct_values(right, right_attrs)


def select_equal(table: Table, attr: str, value: Any) -> List[Row]:
    """``σ_{attr = value}(r)`` with SQL semantics: NULL never matches."""
    if is_null(value):
        return []
    return [row for row in table if not is_null(row[attr]) and row[attr] == value]


def values_subset(
    left: Table,
    left_attrs: Sequence[str],
    right: Table,
    right_attrs: Sequence[str],
) -> bool:
    """True when ``r_left[A] ⊆ r_right[B]`` (NULL-bearing tuples skipped).

    This is the satisfaction test for an inclusion dependency
    ``R_left[A] ≪ R_right[B]`` under SQL foreign-key semantics.
    """
    if len(left_attrs) != len(right_attrs):
        raise ArityError(
            f"inclusion arity mismatch: {list(left_attrs)} vs {list(right_attrs)}"
        )
    return distinct_values(left, left_attrs) <= distinct_values(right, right_attrs)


def group_by(table: Table, attrs: Sequence[str]) -> dict:
    """Partition rows by their (non-NULL) projection on *attrs*.

    Rows with a NULL in the grouping attributes are dropped, consistent
    with the FD-satisfaction convention documented in DESIGN.md.
    """
    groups: dict = {}
    for row in table:
        key = row.project(attrs)
        if any(is_null(v) for v in key):
            continue
        groups.setdefault(key, []).append(row)
    return groups


def functional_maps(table: Table, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
    """True when ``lhs -> rhs`` holds in *table*.

    Single-pass partition check: every group of tuples agreeing on *lhs*
    must agree on *rhs*.  NULL on the RHS is treated as an ordinary marked
    value (two NULLs agree) so that wholly-missing optional attributes do
    not spuriously break dependencies; NULL-bearing LHS tuples are skipped.
    """
    witness: dict = {}
    for row in table:
        key = row.project(lhs)
        if any(is_null(v) for v in key):
            continue
        image = row.project(rhs)
        if key in witness:
            if witness[key] != image:
                return False
        else:
            witness[key] = image
    return True


def fd_violation_pairs(
    table: Table, lhs: Sequence[str], rhs: Sequence[str], limit: int = 10
) -> List[Tuple[Row, Row]]:
    """Up to *limit* pairs of tuples witnessing that ``lhs -> rhs`` fails.

    Used to show the expert user *why* a presumed dependency does not hold
    before asking whether to enforce it anyway.
    """
    witness: dict = {}
    violations: List[Tuple[Row, Row]] = []
    for row in table:
        key = row.project(lhs)
        if any(is_null(v) for v in key):
            continue
        image = row.project(rhs)
        if key in witness:
            prev_row, prev_image = witness[key]
            if prev_image != image:
                violations.append((prev_row, row))
                if len(violations) >= limit:
                    break
        else:
            witness[key] = (row, image)
    return violations


def missing_values(
    left: Table,
    left_attrs: Sequence[str],
    right: Table,
    right_attrs: Sequence[str],
) -> FrozenSet[ValueTuple]:
    """Left-side distinct values with no right-side match (IND witnesses)."""
    return frozenset(
        distinct_values(left, left_attrs) - distinct_values(right, right_attrs)
    )
