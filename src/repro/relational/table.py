"""Tables (relation extensions) and rows.

A :class:`Table` is the extension ``r_i`` of a relation: an ordered
multiset of typed rows.  The method's primitive queries — projection,
``count distinct``, equi-join counts — are in
:mod:`repro.relational.algebra`; the table itself only stores and
validates tuples.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.exceptions import ArityError, UnknownAttributeError
from repro.relational.domain import NULL, is_null
from repro.relational.schema import RelationSchema


def order_values(
    schema: RelationSchema, values: Union[Sequence[Any], Mapping[str, Any]]
) -> List[Any]:
    """Normalize positional-or-named *values* into schema attribute order.

    Missing attributes in a mapping default to NULL; unknown names raise.
    Shared by :meth:`Table.insert` and the extension backends, so every
    write path accepts the same two input shapes.
    """
    if isinstance(values, Mapping):
        unknown = set(values) - set(schema.attribute_names)
        if unknown:
            raise UnknownAttributeError(schema.name, sorted(unknown)[0])
        return [values.get(a, NULL) for a in schema.attribute_names]
    return list(values)


class Row:
    """One tuple of a table, addressable by attribute name or position."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: RelationSchema, values: Sequence[Any]) -> None:
        if len(values) != len(schema.attributes):
            raise ArityError(
                f"{schema.name} expects {len(schema.attributes)} values, "
                f"got {len(values)}"
            )
        coerced = []
        for attr, value in zip(schema.attributes, values):
            coerced.append(attr.dtype.coerce(value))
        self._schema = schema
        self._values: Tuple[Any, ...] = tuple(coerced)

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def values(self) -> Tuple[Any, ...]:
        return self._values

    def __getitem__(self, key: Union[str, int]) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.position(key)]

    def project(self, attrs: Iterable[str]) -> Tuple[Any, ...]:
        """``t[Y]`` — the projection of this tuple on the attributes *attrs*."""
        return tuple(self[a] for a in attrs)

    def has_null(self, attrs: Iterable[str]) -> bool:
        return any(is_null(self[a]) for a in attrs)

    def as_dict(self) -> Dict[str, Any]:
        return {a.name: v for a, v in zip(self._schema.attributes, self._values)}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return other._schema.name == self._schema.name and other._values == self._values
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Row", self._schema.name, self._values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}={v!r}" for a, v in zip(self._schema.attributes, self._values))
        return f"({inner})"


class Table:
    """The extension of one relation: an ordered list of rows.

    Insertion validates typing immediately; declared-constraint checking
    (unique / not null) is *optional and explicit* via :meth:`validate`,
    because the whole point of the paper is that legacy extensions may be
    corrupted — the engine must be able to hold dirty data.
    """

    #: process-wide generation source; every Table instance draws a fresh
    #: value, so two tables that ever coexisted (even under the same
    #: relation name, e.g. drop + recreate) are distinguishable
    _generations = itertools.count(1)

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence[Any]] = ()) -> None:
        self._schema = schema
        self._rows: List[Row] = []
        #: monotonically increasing mutation counter; the database layer
        #: keys its distinct-value caches on it, so any write (insert,
        #: delete, replace) invalidates derived statistics automatically
        self.version = 0
        #: instance identity for cache guards: a recreated or re-homed
        #: table can reach the same *version* as its predecessor (three
        #: inserts → version 3 either way), so caches must key on the
        #: (generation, version) pair, never on the version alone
        self.generation = next(Table._generations)
        for r in rows:
            self.insert(r)

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    def insert(self, values: Union[Sequence[Any], Mapping[str, Any]]) -> Row:
        """Append one tuple, given positionally or by attribute name.

        Missing attributes in a mapping default to NULL.
        """
        row = Row(self._schema, order_values(self._schema, values))
        self._rows.append(row)
        self.version += 1
        return row

    def insert_many(self, rows: Iterable[Union[Sequence[Any], Mapping[str, Any]]]) -> None:
        for r in rows:
            self.insert(r)

    def replace_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Replace the whole extension (used by corruption injection)."""
        fresh: List[Row] = [Row(self._schema, list(r)) for r in rows]
        self._rows = fresh
        self.version += 1

    def delete_where(self, predicate) -> int:
        """Remove rows for which *predicate(row)* is true; return the count."""
        kept = [r for r in self._rows if not predicate(r)]
        removed = len(self._rows) - len(kept)
        self._rows = kept
        if removed:
            self.version += 1
        return removed

    def validate(self) -> None:
        """Check every declared constraint; raise on the first violation."""
        for u in self._schema.uniques:
            u.check(self)
        for nn in self._schema.not_nulls:
            nn.check(self)

    def violations(self) -> List[str]:
        """All declared-constraint violations, as human-readable strings."""
        problems: List[str] = []
        for constraint in list(self._schema.uniques) + list(self._schema.not_nulls):
            try:
                constraint.check(self)
            except Exception as exc:  # ConstraintViolationError
                problems.append(str(exc))
        return problems

    def with_schema(self, schema: RelationSchema) -> "Table":
        """Re-home the rows under a (possibly narrower) schema.

        Used by Restruct: when ``B_i`` is removed from ``R_i(X_i)``, the
        extension is projected accordingly (duplicates kept — the logical
        schema restructuring in the paper does not deduplicate).  The new
        table carries a fresh generation *and* resumes from this table's
        version, so version-guarded caches can never mistake it for its
        source.
        """
        table = Table(schema)
        for row in self._rows:
            table.insert([row[a] for a in schema.attribute_names])
        table.version += self.version
        return table

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __repr__(self) -> str:
        return f"Table({self._schema.name}, {len(self._rows)} rows)"
