"""Declared constraints: unique, not null, and derived key constraints.

Per §4 of the paper, the only dependencies known a priori are the
``unique`` and ``not null`` declarations stored in the data dictionary,
from which the method computes:

- ``K`` — the set of declared key attribute sets (one per unique
  declaration), and
- ``N`` — the set of attributes that cannot be null, i.e. the declared
  not-null attributes plus every attribute of a key (a unique declaration
  implies not null, as in standard SQL).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Set, Tuple

from repro.exceptions import ConstraintViolationError
from repro.relational.attribute import AttributeRef, AttributeSet
from repro.relational.domain import is_null

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.table import Table


class UniqueConstraint:
    """A ``unique`` declaration over one or more attributes of a relation."""

    __slots__ = ("relation", "attributes")

    def __init__(self, relation: str, attributes: Iterable[str]) -> None:
        self.relation = relation
        self.attributes = AttributeSet(attributes)

    def __repr__(self) -> str:
        return f"UNIQUE {self.relation}{self.attributes!r}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UniqueConstraint):
            return other.relation == self.relation and other.attributes == self.attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Unique", self.relation, self.attributes))

    def as_ref(self) -> AttributeRef:
        return AttributeRef(self.relation, self.attributes)

    def check(self, table: "Table") -> None:
        """Raise :class:`ConstraintViolationError` when the table has
        two tuples agreeing on all the constrained attributes.

        NULL-containing key projections never clash (SQL unique semantics),
        but because unique implies not null here, NULLs are themselves a
        violation and are reported as such.
        """
        seen: Set[Tuple[object, ...]] = set()
        for row in table:
            values = tuple(row[a] for a in self.attributes)
            if any(is_null(v) for v in values):
                raise ConstraintViolationError(
                    "unique(implies not null)",
                    f"{self.relation}{self.attributes!r} holds NULL in {values!r}",
                )
            if values in seen:
                raise ConstraintViolationError(
                    "unique",
                    f"duplicate {values!r} for {self.relation}{self.attributes!r}",
                )
            seen.add(values)


class NotNullConstraint:
    """A ``not null`` declaration on a single attribute."""

    __slots__ = ("relation", "attribute")

    def __init__(self, relation: str, attribute: str) -> None:
        self.relation = relation
        self.attribute = attribute

    def __repr__(self) -> str:
        return f"NOT NULL {self.relation}.{self.attribute}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NotNullConstraint):
            return other.relation == self.relation and other.attribute == self.attribute
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("NotNull", self.relation, self.attribute))

    def as_ref(self) -> AttributeRef:
        return AttributeRef.single(self.relation, self.attribute)

    def check(self, table: "Table") -> None:
        for i, row in enumerate(table):
            if is_null(row[self.attribute]):
                raise ConstraintViolationError(
                    "not null", f"{self.relation}.{self.attribute} is NULL in tuple #{i}"
                )


class KeyConstraint:
    """A key constraint ``R : K -> X`` derived from a unique declaration.

    In the paper a key is a unique attribute set that functionally
    determines the whole relation; we record it as its attribute set, the
    determined side always being the full schema.
    """

    __slots__ = ("relation", "attributes")

    def __init__(self, relation: str, attributes: Iterable[str]) -> None:
        self.relation = relation
        self.attributes = AttributeSet(attributes)

    def __repr__(self) -> str:
        return f"KEY {self.relation}{self.attributes!r}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, KeyConstraint):
            return other.relation == self.relation and other.attributes == self.attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Key", self.relation, self.attributes))

    def as_ref(self) -> AttributeRef:
        return AttributeRef(self.relation, self.attributes)


def key_attribute_sets(uniques: Iterable[UniqueConstraint]) -> List[AttributeRef]:
    """Compute the paper's set ``K`` from the unique declarations.

    ``K = { R.X such that X is declared unique }``
    """
    refs = [u.as_ref() for u in uniques]
    return sorted(set(refs), key=lambda r: r.sort_key())


def not_null_attributes(
    not_nulls: Iterable[NotNullConstraint],
    uniques: Iterable[UniqueConstraint],
) -> List[AttributeRef]:
    """Compute the paper's set ``N``.

    ``N = { R.a declared not null } ∪ { R.a ∈ R.X with R.X ∈ K }``
    """
    refs: Set[AttributeRef] = {nn.as_ref() for nn in not_nulls}
    for u in uniques:
        for a in u.attributes:
            refs.add(AttributeRef.single(u.relation, a))
    return sorted(refs, key=lambda r: r.sort_key())
