"""Value domains and SQL-style NULL semantics.

The paper's method constantly asks the extension questions such as
``select count distinct X from R`` and inclusion tests between projections.
Those questions only behave like a real DBMS if NULL is handled the SQL
way: NULL never equals anything (including NULL), is skipped by
``count distinct``, and disqualifies a tuple from participating in an
equi-join.  This module defines the NULL sentinel and the small fixed set
of data types the engine supports.
"""

from __future__ import annotations

import datetime
import re
from typing import Any

from repro.exceptions import TypingError


class NullType:
    """Singleton sentinel for SQL NULL.

    A dedicated type (instead of Python ``None``) keeps NULL visible in
    reprs and prevents accidental truthiness bugs: ``bool(NULL)`` raises,
    because code should always test ``is_null(v)`` explicitly.
    """

    _instance: "NullType" = None  # type: ignore[assignment]

    def __new__(cls) -> "NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        raise TypeError("NULL has no truth value; use is_null(value)")

    def __eq__(self, other: object) -> bool:
        # Identity comparison only; NULL == NULL is *not* SQL-true, but at
        # the Python level the sentinel must be hashable and self-equal so
        # it can live in dicts and sets.  SQL three-valued logic is applied
        # by the algebra layer, which filters NULLs out before comparing.
        return other is self

    def __hash__(self) -> int:
        return 0x5E11


NULL = NullType()


def is_null(value: Any) -> bool:
    """True when *value* is the SQL NULL sentinel (or Python None)."""
    return value is NULL or value is None


_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


class DataType:
    """A named scalar domain with a membership test.

    Instances are compared by name, so the module-level constants act as
    an enumeration: :data:`INTEGER`, :data:`REAL`, :data:`TEXT`,
    :data:`DATE`, :data:`BOOLEAN`.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("DataType", self.name))

    def contains(self, value: Any) -> bool:
        """Membership test; NULL belongs to every domain."""
        if is_null(value):
            return True
        if self.name == "INTEGER":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.name == "REAL":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.name == "TEXT":
            return isinstance(value, str)
        if self.name == "DATE":
            if isinstance(value, datetime.date):
                return True
            return isinstance(value, str) and bool(_DATE_RE.match(value))
        if self.name == "BOOLEAN":
            return isinstance(value, bool)
        return False

    def coerce(self, value: Any) -> Any:
        """Return *value* normalized into this domain, or raise TypingError.

        Ints widen to REAL; ISO strings are accepted for DATE; everything
        else must already belong to the domain.
        """
        if is_null(value):
            return NULL
        if self.contains(value):
            if self.name == "DATE" and isinstance(value, datetime.date):
                return value.isoformat()
            return value
        raise TypingError(f"value {value!r} is not in domain {self.name}")


INTEGER = DataType("INTEGER")
REAL = DataType("REAL")
TEXT = DataType("TEXT")
DATE = DataType("DATE")
BOOLEAN = DataType("BOOLEAN")

_BY_NAME = {t.name: t for t in (INTEGER, REAL, TEXT, DATE, BOOLEAN)}

_SQL_TYPE_ALIASES = {
    "INT": "INTEGER",
    "INTEGER": "INTEGER",
    "SMALLINT": "INTEGER",
    "BIGINT": "INTEGER",
    "NUMBER": "REAL",
    "NUMERIC": "REAL",
    "DECIMAL": "REAL",
    "FLOAT": "REAL",
    "REAL": "REAL",
    "DOUBLE": "REAL",
    "CHAR": "TEXT",
    "VARCHAR": "TEXT",
    "VARCHAR2": "TEXT",
    "TEXT": "TEXT",
    "STRING": "TEXT",
    "DATE": "DATE",
    "BOOLEAN": "BOOLEAN",
    "BOOL": "BOOLEAN",
}


def type_named(name: str) -> DataType:
    """Resolve a type name (or common SQL alias) to a :class:`DataType`."""
    key = name.upper()
    if key in _SQL_TYPE_ALIASES:
        return _BY_NAME[_SQL_TYPE_ALIASES[key]]
    raise TypingError(f"unknown data type: {name!r}")


def value_in_domain(value: Any, dtype: DataType) -> bool:
    """Convenience wrapper over :meth:`DataType.contains`."""
    return dtype.contains(value)


def comparable(a: DataType, b: DataType) -> bool:
    """True when values of the two domains can meaningfully be equi-joined.

    INTEGER and REAL are mutually comparable; everything else only with
    itself.  The exhaustive-IND baseline uses this to prune candidates the
    way unary IND discovery tools do.
    """
    if a == b:
        return True
    numeric = {INTEGER, REAL}
    return a in numeric and b in numeric
