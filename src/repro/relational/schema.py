"""Relation schemas and the database schema ``R``.

A :class:`RelationSchema` is the intension ``R_i(X_i)`` plus its declared
``unique``/``not null`` constraints.  A :class:`DatabaseSchema` is the set
``R`` of relation schemas, with name-based lookup and the computed ``K``
and ``N`` sets of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import (
    DuplicateRelationError,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.relational.attribute import Attribute, AttributeRef, AttributeSet
from repro.relational.constraints import (
    KeyConstraint,
    NotNullConstraint,
    UniqueConstraint,
    key_attribute_sets,
    not_null_attributes,
)
from repro.relational.domain import DataType, TEXT
from repro.util.naming import is_valid_identifier


class RelationSchema:
    """The intension of one relation: name, attributes, declared constraints."""

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        unique: Iterable[Sequence[str]] = (),
    ) -> None:
        if not is_valid_identifier(name):
            raise SchemaError(f"invalid relation name: {name!r}")
        if not attributes:
            raise SchemaError(f"relation {name!r} needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {name!r}: {names}")
        self.name = name
        self._attributes: Tuple[Attribute, ...] = tuple(attributes)
        self._index: Dict[str, int] = {a.name: i for i, a in enumerate(attributes)}
        self._uniques: List[UniqueConstraint] = []
        for attrs in unique:
            self.declare_unique(attrs)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        name: str,
        attribute_names: Sequence[str],
        key: Sequence[str] = (),
        not_null: Sequence[str] = (),
        types: Optional[Dict[str, DataType]] = None,
    ) -> "RelationSchema":
        """Concise constructor used throughout tests and workloads.

        ``key`` declares one unique constraint; ``not_null`` marks
        attributes non-nullable; ``types`` overrides the TEXT default.
        """
        types = types or {}
        nn = set(not_null) | set(key)  # unique implies not null (§4)
        attrs = [
            Attribute(a, types.get(a, TEXT), nullable=a not in nn)
            for a in attribute_names
        ]
        schema = cls(name, attrs)
        if key:
            schema.declare_unique(key)
        return schema

    def declare_unique(self, attrs: Sequence[str]) -> None:
        """Record a ``unique`` declaration; implies not-null on its attributes."""
        for a in attrs:
            if a not in self._index:
                raise UnknownAttributeError(self.name, a)
        constraint = UniqueConstraint(self.name, attrs)
        if constraint not in self._uniques:
            self._uniques.append(constraint)
        # unique implies not null: reflect it on the attribute objects
        refreshed = [
            attr.with_nullable(False) if attr.name in set(attrs) else attr
            for attr in self._attributes
        ]
        self._attributes = tuple(refreshed)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    @property
    def uniques(self) -> Tuple[UniqueConstraint, ...]:
        return tuple(self._uniques)

    @property
    def not_nulls(self) -> Tuple[NotNullConstraint, ...]:
        return tuple(
            NotNullConstraint(self.name, a.name)
            for a in self._attributes
            if not a.nullable
        )

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._index

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def keys(self) -> List[KeyConstraint]:
        """The key constraints derivable from the unique declarations."""
        return [KeyConstraint(self.name, u.attributes) for u in self._uniques]

    def primary_key(self) -> Optional[AttributeSet]:
        """The first declared key, by convention the primary one."""
        if self._uniques:
            return self._uniques[0].attributes
        return None

    def is_key(self, attrs: Iterable[str]) -> bool:
        """True when *attrs* is exactly a declared key (as a set)."""
        candidate = AttributeSet(attrs)
        return any(u.attributes == candidate for u in self._uniques)

    def ref(self, attrs: Iterable[str]) -> AttributeRef:
        """A checked ``R.X`` reference into this relation."""
        if isinstance(attrs, str):
            attrs = (attrs,)
        for a in attrs:
            if a not in self._index:
                raise UnknownAttributeError(self.name, a)
        return AttributeRef(self.name, attrs)

    # ------------------------------------------------------------------
    # schema surgery (used by Restruct)
    # ------------------------------------------------------------------
    def without_attributes(self, drop: Iterable[str]) -> "RelationSchema":
        """Copy of this schema with *drop* removed (Restruct's FD split).

        Unique declarations touching a dropped attribute are discarded —
        Restruct never drops key attributes, but the generic operation must
        stay total.
        """
        drop_set = set(drop)
        kept = [a for a in self._attributes if a.name not in drop_set]
        if not kept:
            raise SchemaError(f"cannot drop every attribute of {self.name!r}")
        schema = RelationSchema(self.name, kept)
        for u in self._uniques:
            if u.attributes.isdisjoint(drop_set):
                schema.declare_unique(tuple(u.attributes))
        return schema

    def renamed(self, new_name: str) -> "RelationSchema":
        schema = RelationSchema(new_name, list(self._attributes))
        for u in self._uniques:
            schema.declare_unique(tuple(u.attributes))
        return schema

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        keys = {a for u in self._uniques for a in u.attributes}
        parts = []
        for a in self._attributes:
            mark = "*" if a.name in keys else ("!" if not a.nullable else "")
            parts.append(f"{mark}{a.name}")
        return f"{self.name}({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RelationSchema):
            return (
                other.name == self.name
                and other._attributes == self._attributes
                and set(other._uniques) == set(self._uniques)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("RelationSchema", self.name, self._attributes))


class DatabaseSchema:
    """The set ``R`` of relation schemas, with computed ``K`` and ``N``."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for r in relations:
            self.add(r)

    def add(self, relation: RelationSchema) -> None:
        if relation.name in self._relations:
            raise DuplicateRelationError(relation.name)
        self._relations[relation.name] = relation

    def replace(self, relation: RelationSchema) -> None:
        """Swap in a modified schema for an existing relation (Restruct)."""
        if relation.name not in self._relations:
            raise UnknownRelationError(relation.name)
        self._relations[relation.name] = relation

    def remove(self, name: str) -> None:
        if name not in self._relations:
            raise UnknownRelationError(name)
        del self._relations[name]

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(sorted(self._relations.values(), key=lambda r: r.name))

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def key_set(self) -> List[AttributeRef]:
        """The paper's ``K`` over the whole schema."""
        uniques = [u for r in self for u in r.uniques]
        return key_attribute_sets(uniques)

    def not_null_set(self) -> List[AttributeRef]:
        """The paper's ``N`` over the whole schema."""
        nns = [nn for r in self for nn in r.not_nulls]
        uniques = [u for r in self for u in r.uniques]
        return not_null_attributes(nns, uniques)

    def copy(self) -> "DatabaseSchema":
        clone = DatabaseSchema()
        for r in self:
            clone.add(r.renamed(r.name))
        return clone

    def __repr__(self) -> str:
        return "DatabaseSchema(" + "; ".join(repr(r) for r in self) + ")"
