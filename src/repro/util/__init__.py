"""Small shared utilities: naming, deterministic ordering, text helpers."""

from repro.util.naming import (
    is_valid_identifier,
    unique_name,
    merge_name,
    singularize,
)
from repro.util.ordering import stable_sorted, attr_sort_key
from repro.util.text import indent_block, pluralize, format_table

__all__ = [
    "is_valid_identifier",
    "unique_name",
    "merge_name",
    "singularize",
    "stable_sorted",
    "attr_sort_key",
    "indent_block",
    "pluralize",
    "format_table",
]
