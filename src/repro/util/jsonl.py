"""Line-delimited JSON: the carrier of the streamed export formats.

The observability exports (``repro/trace@1``, ``repro/provenance@1``)
are JSONL files: one self-contained JSON object per line, a header
object first.  These helpers are deliberately dependency-free — they
are shared by :mod:`repro.obs` and :mod:`repro.storage`, which sit on
opposite sides of the relational core.

:func:`load_jsonl` reports malformed lines with their line number, so a
truncated or hand-edited export fails with an actionable message
instead of a bare ``json.JSONDecodeError``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = ["save_jsonl", "load_jsonl"]


def save_jsonl(records: List[Dict[str, Any]], path: str) -> None:
    """Write *records* to *path*, one stable JSON object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read every non-blank line of *path* as one JSON object.

    Raises :class:`ValueError` naming the offending line when a line is
    not valid JSON (e.g. a truncated write) or not a JSON object.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSON ({exc.msg}) — "
                    f"truncated or corrupted export?"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(record).__name__}"
                )
            records.append(record)
    return records
