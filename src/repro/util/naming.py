"""Name manipulation helpers used when the method invents new relations.

The paper lets the expert user choose significant names for the relations
created by IND-Discovery (conceptualized intersections), RHS-Discovery
(hidden objects) and Restruct (FD splits).  When no expert supplies a name,
the library needs deterministic, readable defaults; these helpers build
them.
"""

from __future__ import annotations

import re
from typing import Iterable, Set

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-]*$")


def is_valid_identifier(name: str) -> bool:
    """Return True when *name* can be used as a relation or attribute name.

    The paper's examples use hyphenated names such as ``Ass-Dept`` and
    ``project-name``, so hyphens are allowed in non-leading positions.
    """
    return bool(_IDENTIFIER_RE.match(name))


def unique_name(base: str, taken: Iterable[str]) -> str:
    """Return *base*, suffixed with the smallest integer making it unused.

    ``unique_name("Manager", {"Manager"})`` returns ``"Manager_2"``.
    Comparison is case-insensitive because SQL identifiers usually are.
    """
    taken_fold: Set[str] = {t.casefold() for t in taken}
    if base.casefold() not in taken_fold:
        return base
    i = 2
    while f"{base}_{i}".casefold() in taken_fold:
        i += 1
    return f"{base}_{i}"


def merge_name(left: str, right: str) -> str:
    """Default name for a relation conceptualizing an intersection.

    The paper names the intersection of ``Assignment.dep`` and
    ``Department.dep`` as ``Ass-Dept``; we mimic that style by gluing
    prefixes of the two relation names.
    """
    return f"{left[:4].rstrip('-_')}-{right[:4].rstrip('-_')}"


_PLURAL_SUFFIXES = (("ies", "y"), ("ses", "s"), ("xes", "x"), ("s", ""))


def singularize(name: str) -> str:
    """Very small singularizer for generated entity-type names.

    This only needs to look reasonable on generated workload names such as
    ``employees`` -> ``employee``; it is not a linguistic tool.
    """
    lowered = name.lower()
    for suffix, replacement in _PLURAL_SUFFIXES:
        if lowered.endswith(suffix) and len(name) > len(suffix) + 1:
            return name[: len(name) - len(suffix)] + replacement
    return name
