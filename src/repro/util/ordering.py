"""Deterministic ordering helpers.

Every algorithm in the paper is stated over *sets*; to make runs
reproducible (the same schema in always produces the same schema out, with
the same names) the library iterates those sets in a stable order.  These
helpers centralize the sort keys.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, TypeVar

T = TypeVar("T")


def stable_sorted(items: Iterable[T]) -> List[T]:
    """Sort by ``repr`` as a last-resort total order for heterogeneous items.

    Used only where elements do not carry their own sort key; all core
    classes define ``sort_key()`` and should be sorted with that instead.
    """
    return sorted(items, key=repr)


def attr_sort_key(qualified: Tuple[str, Tuple[str, ...]]) -> Tuple[str, Tuple[str, ...]]:
    """Sort key for (relation name, attribute tuple) pairs."""
    relation, attrs = qualified
    return (relation, tuple(attrs))
