"""Plain-text rendering helpers shared by reports, examples and benchmarks."""

from __future__ import annotations

from typing import List, Sequence


def indent_block(text: str, prefix: str = "    ") -> str:
    """Indent every non-empty line of *text* with *prefix*."""
    return "\n".join(prefix + line if line else line for line in text.splitlines())


def pluralize(count: int, singular: str, plural: str = "") -> str:
    """Return ``"1 relation"`` / ``"3 relations"`` style phrases."""
    if count == 1:
        return f"{count} {singular}"
    return f"{count} {plural or singular + 's'}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a small left-aligned ASCII table (no external dependency).

    Used by the benchmark harness to print the paper-vs-measured rows.
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    cells.extend([str(v) for v in row] for row in rows)
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
