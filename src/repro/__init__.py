"""repro — reverse engineering of denormalized relational databases.

A faithful, self-contained reproduction of

    J-M. Petit, F. Toumani, J-F. Boulicaut, J. Kouloumdjian.
    "Towards the Reverse Engineering of Denormalized Relational
    Databases."  ICDE 1996.

The package recovers the conceptual design of a legacy relational
database from three weak inputs — the schema's ``unique``/``not null``
declarations, the database extension, and the equi-join queries embedded
in application programs — through five algorithms (IND-Discovery,
LHS-Discovery, RHS-Discovery, Restruct, Translate) and an interactive
expert-user protocol.

Quickstart::

    from repro import DBREPipeline, ScriptedExpert
    from repro.workloads import (
        build_paper_database, paper_program_corpus, paper_expert_script,
    )

    db = build_paper_database()
    expert = ScriptedExpert(paper_expert_script())
    result = DBREPipeline(db, expert).run(corpus=paper_program_corpus())
    print(result.ric)          # referential integrity constraints
    print(result.eer)          # the Figure-1 EER schema

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.exceptions import ReproError
from repro.backends import (
    ExtensionBackend,
    MemoryBackend,
    SQLiteBackend,
    open_sqlite,
)
from repro.relational import (
    Attribute,
    AttributeRef,
    AttributeSet,
    Database,
    DatabaseSchema,
    NULL,
    RelationSchema,
    Table,
)
from repro.dependencies import FunctionalDependency, InclusionDependency
from repro.programs import (
    ApplicationProgram,
    EquiJoin,
    EquiJoinExtractor,
    ProgramCorpus,
    extract_equijoins,
)
from repro.core import (
    AutoExpert,
    DBREPipeline,
    Expert,
    INDDiscovery,
    InteractiveExpert,
    LHSDiscovery,
    PipelineResult,
    RecordingExpert,
    Restruct,
    RHSDiscovery,
    ScriptedExpert,
    Translate,
)
from repro.eer import EERSchema, render_text, to_dot
from repro.engine import BatchExecutor, EngineStats, Probe, plan_probes
from repro.obs import Tracer
from repro.sql import Executor, execute_sql, parse_sql
from repro.storage import save_sqlite

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ExtensionBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "open_sqlite",
    "Attribute",
    "AttributeRef",
    "AttributeSet",
    "Database",
    "DatabaseSchema",
    "NULL",
    "RelationSchema",
    "Table",
    "FunctionalDependency",
    "InclusionDependency",
    "ApplicationProgram",
    "EquiJoin",
    "EquiJoinExtractor",
    "ProgramCorpus",
    "extract_equijoins",
    "AutoExpert",
    "DBREPipeline",
    "Expert",
    "INDDiscovery",
    "InteractiveExpert",
    "LHSDiscovery",
    "PipelineResult",
    "RecordingExpert",
    "Restruct",
    "RHSDiscovery",
    "ScriptedExpert",
    "Translate",
    "EERSchema",
    "render_text",
    "to_dot",
    "BatchExecutor",
    "EngineStats",
    "Probe",
    "plan_probes",
    "Tracer",
    "Executor",
    "execute_sql",
    "parse_sql",
    "save_sqlite",
    "__version__",
]
