"""ER → relational mapping (the forward design step the paper reverses).

Classical Teorey-style mapping: each entity becomes a relation keyed by
its identifier; each many-to-one relationship becomes a foreign-key
attribute in the child; each many-to-many relationship becomes its own
relation keyed by the pair of identifiers.  The mapping also returns the
dependencies that are "directly derivable from the EER schema"
(Markowitz-Shoshani): key constraints and referential integrity
constraints — the ground truth later stages denormalize and corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.relational.attribute import Attribute
from repro.relational.domain import INTEGER, TEXT
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.workloads.er_generator import ERSpec


@dataclass
class RelationalMapping:
    """The 3NF relational realization of an :class:`ERSpec`."""

    schema: DatabaseSchema
    ric: List[InclusionDependency] = field(default_factory=list)
    key_fds: List[FunctionalDependency] = field(default_factory=list)
    #: relation name -> originating entity (or m:n relationship) name
    origin: Dict[str, str] = field(default_factory=dict)
    #: foreign-key attribute -> (child relation, parent relation)
    fk_edges: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def map_er_to_relational(spec: ERSpec) -> RelationalMapping:
    """Realize *spec* as a 3NF relational schema with its constraints."""
    schema = DatabaseSchema()
    mapping = RelationalMapping(schema)

    for entity in spec.entities:
        fks = spec.parents_of(entity.name)
        attrs = [Attribute(entity.key_attr, INTEGER, nullable=False)]
        attrs.extend(Attribute(a, TEXT) for a in entity.attrs)
        for fk in fks:
            attrs.append(Attribute(fk.fk_attr, INTEGER, nullable=fk.nullable))
        relation = RelationSchema(entity.name, attrs)
        relation.declare_unique((entity.key_attr,))
        schema.add(relation)
        mapping.origin[entity.name] = entity.name

        mapping.key_fds.append(
            FunctionalDependency(
                entity.name,
                (entity.key_attr,),
                tuple(a.name for a in attrs if a.name != entity.key_attr) or (entity.key_attr,),
            )
        )
        for fk in fks:
            parent_key = spec.entity(fk.parent).key_attr
            mapping.ric.append(
                InclusionDependency(
                    entity.name, (fk.fk_attr,), fk.parent, (parent_key,)
                )
            )
            mapping.fk_edges[fk.fk_attr] = (entity.name, fk.parent)

    for sub in spec.subtypes:
        sup_key = spec.entity(sub.supertype).key_attr
        attrs = [Attribute(sub.key_attr, INTEGER, nullable=False)]
        attrs.extend(Attribute(a, TEXT) for a in sub.attrs)
        relation = RelationSchema(sub.name, attrs)
        relation.declare_unique((sub.key_attr,))
        schema.add(relation)
        mapping.origin[sub.name] = sub.name
        mapping.ric.append(
            InclusionDependency(sub.name, (sub.key_attr,), sub.supertype, (sup_key,))
        )
        mapping.fk_edges[sub.key_attr] = (sub.name, sub.supertype)

    for weak in spec.weak_entities:
        owner_key = spec.entity(weak.owner).key_attr
        attrs = [
            Attribute(weak.fk_attr, INTEGER, nullable=False),
            Attribute(weak.discriminator_attr, INTEGER, nullable=False),
        ]
        attrs.extend(Attribute(a, TEXT) for a in weak.attrs)
        relation = RelationSchema(weak.name, attrs)
        relation.declare_unique((weak.fk_attr, weak.discriminator_attr))
        schema.add(relation)
        mapping.origin[weak.name] = weak.name
        mapping.ric.append(
            InclusionDependency(weak.name, (weak.fk_attr,), weak.owner, (owner_key,))
        )
        mapping.fk_edges[weak.fk_attr] = (weak.name, weak.owner)

    for link in spec.many_to_many:
        left_key = spec.entity(link.left).key_attr
        right_key = spec.entity(link.right).key_attr
        left_fk = f"{link.name}_{left_key}"
        right_fk = f"{link.name}_{right_key}"
        attrs = [
            Attribute(left_fk, INTEGER, nullable=False),
            Attribute(right_fk, INTEGER, nullable=False),
        ]
        attrs.extend(Attribute(a, TEXT) for a in link.attrs)
        relation = RelationSchema(link.name, attrs)
        relation.declare_unique((left_fk, right_fk))
        schema.add(relation)
        mapping.origin[link.name] = link.name
        mapping.ric.append(
            InclusionDependency(link.name, (left_fk,), link.left, (left_key,))
        )
        mapping.ric.append(
            InclusionDependency(link.name, (right_fk,), link.right, (right_key,))
        )
        mapping.fk_edges[left_fk] = (link.name, link.left)
        mapping.fk_edges[right_fk] = (link.name, link.right)

    return mapping
