"""Workloads: the paper's running example and synthetic denormalized databases.

- :mod:`repro.workloads.paper_example` — the §5 database, its program
  corpus, the §6-§7 expert choices, and the expected artifact sets
  (used by the E-series benchmarks and the integration tests);
- :mod:`repro.workloads.er_generator` — random ground-truth ER schemas;
- :mod:`repro.workloads.mapping` — ER → relational (3NF) mapping;
- :mod:`repro.workloads.denormalizer` — controlled denormalization
  (creates hidden objects / embedded FDs with known ground truth);
- :mod:`repro.workloads.data_generator` — extensions satisfying the
  ground-truth dependencies;
- :mod:`repro.workloads.corruption` — integrity-violation injection
  (creates the non-empty-intersection cases);
- :mod:`repro.workloads.query_generator` — equi-join workloads along
  the schema's navigation paths, rendered as application programs;
- :mod:`repro.workloads.oracle` — an Expert that answers from ground
  truth;
- :mod:`repro.workloads.scenario` — ties the above into one object.
"""

from repro.workloads.paper_example import (
    build_paper_database,
    paper_program_corpus,
    paper_equijoins,
    paper_expert_script,
    PaperExpectations,
    PAPER_EXPECTED,
)
from repro.workloads.er_generator import ERGenerator, GeneratorConfig
from repro.workloads.mapping import map_er_to_relational, RelationalMapping
from repro.workloads.denormalizer import Denormalizer, DenormalizationPlan, GroundTruth
from repro.workloads.data_generator import DataGenerator
from repro.workloads.corruption import CorruptionInjector
from repro.workloads.query_generator import QueryWorkloadGenerator
from repro.workloads.oracle import OracleExpert
from repro.workloads.scenario import SyntheticScenario, build_scenario

__all__ = [
    "build_paper_database",
    "paper_program_corpus",
    "paper_equijoins",
    "paper_expert_script",
    "PaperExpectations",
    "PAPER_EXPECTED",
    "ERGenerator",
    "GeneratorConfig",
    "map_er_to_relational",
    "RelationalMapping",
    "Denormalizer",
    "DenormalizationPlan",
    "GroundTruth",
    "DataGenerator",
    "CorruptionInjector",
    "QueryWorkloadGenerator",
    "OracleExpert",
    "SyntheticScenario",
    "build_scenario",
]
