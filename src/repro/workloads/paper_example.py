"""The paper's running example (§5), end to end.

This module is the ground truth for the E-series experiments: the §5
schema and constraint declarations, a population of the extension that
realizes every count/FD/NEI situation the paper narrates, an application
program corpus embedding the five equi-joins of §5 in the syntactic
forms §4 lists, the expert answers of §6-§7 as a
:class:`~repro.core.expert.ScriptedExpert` script, and the expected
artifact sets of every section.

The paper's absolute counts (2200 persons, 1550 employees, ...) are
scaled down ~100x; every *relationship between* counts that drives the
algorithms (which side is included in which, where the NEI falls, which
FDs hold) is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.expert import ConceptualizeIntersection
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.programs.corpus import ProgramCorpus
from repro.programs.equijoin import EquiJoin
from repro.relational.attribute import AttributeRef
from repro.relational.database import Database
from repro.relational.domain import DATE, INTEGER, NULL, REAL
from repro.relational.schema import DatabaseSchema, RelationSchema

# ----------------------------------------------------------------------
# §5: the input schema
# ----------------------------------------------------------------------

_STATES = {
    "69100": "Rhone",
    "69621": "Rhone",
    "75001": "Paris",
    "13001": "Bouches-du-Rhone",
    "59000": "Nord",
}
_ZIPS = list(_STATES)

_PROJECT_NAMES = {
    "P1": "Alpha", "P2": "Beta", "P3": "Gamma", "P4": "Delta",
    "P5": "Epsilon", "P6": "Zeta", "P7": "Eta",
}


def build_paper_database(backend=None) -> Database:
    """The §5 database: schema, declared constraints, and an extension
    realizing every situation the paper narrates.  *backend* selects the
    extension store (default: the in-memory engine) — the backend
    contract tests build this same database on every backend.

    Count relationships preserved (scaled):

    - ``||Person[id]|| > ||HEmployee[no]||`` with full inclusion (the
      2200/1550/1550 example becomes 22/15/15);
    - ``Assignment[dep]`` vs ``Department[dep]`` is a genuine non-empty
      intersection (9 vs 8 with 6 shared — the paper's 45/40/30 shape);
    - ``Department: emp -> skill, proj`` and
      ``Assignment: proj -> project-name`` hold; every other candidate
      dependency the algorithms test fails;
    - ``Person: zip-code -> state`` holds but is never referenced by an
      equi-join — the paper's example of an FD that must *not* be
      elicited;
    - ``Department.emp`` has NULLs (so ``location``, not-null, is pruned
      from its FD candidates, as narrated in §6.2.2).
    """
    schema = DatabaseSchema(
        [
            RelationSchema.build(
                "Person",
                ["id", "name", "street", "number", "zip-code", "state"],
                key=["id"],
                types={"id": INTEGER, "number": INTEGER},
            ),
            RelationSchema.build(
                "HEmployee",
                ["no", "date", "salary"],
                key=["no", "date"],
                types={"no": INTEGER, "date": DATE, "salary": REAL},
            ),
            RelationSchema.build(
                "Department",
                ["dep", "emp", "skill", "location", "proj"],
                key=["dep"],
                not_null=["location"],
                types={"emp": INTEGER},
            ),
            RelationSchema.build(
                "Assignment",
                ["emp", "dep", "proj", "date", "project-name"],
                key=["emp", "dep", "proj"],
                types={"emp": INTEGER, "date": DATE},
            ),
        ]
    )
    db = Database(schema, backend=backend)

    # Person: 22 ids; zip-code -> state holds by construction
    streets = ["rue Alpha", "av Einstein", "bd Centre", "rue Sud"]
    for i in range(1, 23):
        zip_code = _ZIPS[i % len(_ZIPS)]
        db.insert(
            "Person",
            [i, f"person-{i}", streets[i % len(streets)], i * 3,
             zip_code, _STATES[zip_code]],
        )

    # HEmployee: nos 1..15 (all Person ids); no -> salary fails (history)
    for no in range(1, 16):
        db.insert("HEmployee", [no, "2019-06-01", 1000.0 + 10 * no])
        db.insert("HEmployee", [no, "2020-06-01", 1100.0 + 15 * no])

    # Department: deps D1..D8; emp -> skill, proj hold; emp has NULLs;
    # proj -> emp / skill fail (P1 shared by two departments)
    department_rows = [
        ("D1", 1, "management", "Lyon", "P1"),
        ("D2", 2, "sales", "Paris", "P1"),
        ("D3", 3, "engineering", "Lyon", "P2"),
        ("D4", NULL, NULL, "Nice", NULL),
        ("D5", 4, "operations", "Lille", "P3"),
        ("D6", 5, "hr", "Metz", "P4"),
        ("D7", NULL, NULL, "Brest", NULL),
        ("D8", 6, "finance", "Pau", "P5"),
    ]
    db.insert_many("Department", department_rows)

    # Assignment: deps D1..D6 plus DA7..DA9 (the NEI with Department);
    # proj -> project-name holds; everything else the method tests fails
    assignment_rows = [
        (1, "D1", "P1", "2020-01-01"),
        (1, "D2", "P2", "2020-02-01"),
        (2, "D1", "P1", "2020-03-01"),
        (3, "D3", "P3", "2020-01-01"),
        (4, "D4", "P4", "2020-04-01"),
        (5, "D5", "P5", "2020-05-01"),
        (6, "D6", "P6", "2020-06-01"),
        (7, "DA7", "P7", "2020-07-01"),
        (8, "DA8", "P1", "2020-08-01"),
        (9, "DA9", "P2", "2020-09-01"),
        (10, "D1", "P3", "2020-10-01"),
    ]
    for emp, dep, proj, date in assignment_rows:
        db.insert("Assignment", [emp, dep, proj, date, _PROJECT_NAMES[proj]])

    db.validate()
    return db


# ----------------------------------------------------------------------
# §4/§5: the application programs embedding Q
# ----------------------------------------------------------------------

def paper_program_corpus() -> ProgramCorpus:
    """Forms, reports and batch files embedding the five §5 equi-joins.

    Each join appears in a different syntactic form so the corpus also
    exercises the whole §4 extraction matrix: plain WHERE join (with an
    alias and an unqualified column), nested ``IN``, correlated
    ``EXISTS``, ``JOIN ... ON``, and ``INTERSECT``.
    """
    corpus = ProgramCorpus()

    corpus.add_source(
        "reports/employee_directory.sql",
        """
        -- yearly directory: salaries joined to civil identity
        SELECT name, street, number, salary
        FROM HEmployee h, Person
        WHERE h.no = id AND h.date = '2020-06-01'
        ORDER BY name;
        """,
    )

    corpus.add_source(
        "forms/department_head.cob",
        """
       IDENTIFICATION DIVISION.
       PROGRAM-ID. DEPTHEAD.
       PROCEDURE DIVISION.
           EXEC SQL
             DECLARE heads CURSOR FOR
             SELECT dep, skill INTO :dep, :skill
             FROM Department d
             WHERE d.emp IN (SELECT no FROM HEmployee)
           END-EXEC.
        """,
    )

    corpus.add_source(
        "batch/assignment_check.pc",
        """
        /* nightly check: every assignee must be a salaried employee */
        void check(void) {
            EXEC SQL
              SELECT COUNT(*)
              FROM Assignment a
              WHERE EXISTS (SELECT * FROM HEmployee h
                            WHERE a.emp = h.no);
        }
        """,
    )

    corpus.add_source(
        "reports/staffing.sql",
        """
        SELECT a.emp, d.location
        FROM Assignment a JOIN Department d ON a.dep = d.dep;
        """,
    )

    corpus.add_source(
        "batch/shared_projects.sql",
        """
        -- projects both departments and assignments reference
        SELECT proj FROM Department
        INTERSECT
        SELECT proj FROM Assignment;
        """,
    )
    return corpus


def paper_equijoins() -> List[EquiJoin]:
    """The §5 set ``Q``, stated directly (the paper's assumption)."""
    return [
        EquiJoin("HEmployee", ("no",), "Person", ("id",)),
        EquiJoin("Department", ("emp",), "HEmployee", ("no",)),
        EquiJoin("Assignment", ("emp",), "HEmployee", ("no",)),
        EquiJoin("Assignment", ("dep",), "Department", ("dep",)),
        EquiJoin("Department", ("proj",), "Assignment", ("proj",)),
    ]


# ----------------------------------------------------------------------
# §6-§7: the expert's choices
# ----------------------------------------------------------------------

def paper_expert_script() -> Dict[str, object]:
    """The §6-§7 expert decisions as a ScriptedExpert answer dict."""
    return {
        # §6.1: conceptualize the Assignment/Department intersection
        "nei:Assignment[dep] >< Department[dep]": ConceptualizeIntersection(
            "Ass-Dept"
        ),
        # §6.2.2: conceptualize Employee; give the other empty LHS up
        "hidden:HEmployee.{no}": True,
        "hidden:Assignment.{emp}": False,
        "hidden:Department.{proj}": False,
        # §7: names chosen by the expert
        "name_hidden:HEmployee.{no}": "Employee",
        "name_hidden:Assignment.{dep}": "Other-Dept",
        "name_fd:Department: emp -> skill, proj": "Manager",
        "name_fd:Assignment: proj -> project-name": "Project",
    }


# ----------------------------------------------------------------------
# expected artifacts, section by section
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PaperExpectations:
    """Every artifact set the paper states, as value objects."""

    key_set: Tuple[AttributeRef, ...]
    not_null_set: Tuple[AttributeRef, ...]
    equijoins: Tuple[EquiJoin, ...]
    inds: Tuple[InclusionDependency, ...]
    s_relations: Tuple[str, ...]
    lhs: Tuple[AttributeRef, ...]
    hidden_after_lhs: Tuple[AttributeRef, ...]
    fds: Tuple[FunctionalDependency, ...]
    hidden_after_rhs: Tuple[AttributeRef, ...]
    restructured_relations: Dict[str, Tuple[str, ...]]
    restructured_keys: Dict[str, Tuple[str, ...]]
    ric: Tuple[InclusionDependency, ...]


def _ref(relation: str, *attrs: str) -> AttributeRef:
    return AttributeRef(relation, attrs)


PAPER_EXPECTED = PaperExpectations(
    # §5: K
    key_set=(
        _ref("Assignment", "emp", "dep", "proj"),
        _ref("Department", "dep"),
        _ref("HEmployee", "no", "date"),
        _ref("Person", "id"),
    ),
    # §5: N
    not_null_set=(
        _ref("Assignment", "dep"),
        _ref("Assignment", "emp"),
        _ref("Assignment", "proj"),
        _ref("Department", "dep"),
        _ref("Department", "location"),
        _ref("HEmployee", "date"),
        _ref("HEmployee", "no"),
        _ref("Person", "id"),
    ),
    # §5: Q
    equijoins=tuple(paper_equijoins()),
    # §6.1: IND (and S)
    inds=(
        InclusionDependency.parse("HEmployee[no] << Person[id]"),
        InclusionDependency.parse("Department[emp] << HEmployee[no]"),
        InclusionDependency.parse("Assignment[emp] << HEmployee[no]"),
        InclusionDependency.parse("Ass-Dept[dep] << Assignment[dep]"),
        InclusionDependency.parse("Ass-Dept[dep] << Department[dep]"),
        InclusionDependency.parse("Department[proj] << Assignment[proj]"),
    ),
    s_relations=("Ass-Dept",),
    # §6.2.1: LHS and H
    lhs=(
        _ref("Assignment", "emp"),
        _ref("Assignment", "proj"),
        _ref("Department", "emp"),
        _ref("Department", "proj"),
        _ref("HEmployee", "no"),
    ),
    hidden_after_lhs=(_ref("Assignment", "dep"),),
    # §6.2.2: F and final H
    fds=(
        FunctionalDependency("Assignment", ("proj",), ("project-name",)),
        FunctionalDependency("Department", ("emp",), ("skill", "proj")),
    ),
    hidden_after_rhs=(
        _ref("Assignment", "dep"),
        _ref("HEmployee", "no"),
    ),
    # §7: the restructured schema (attribute sets) and its keys
    restructured_relations={
        "Person": ("id", "name", "street", "number", "zip-code", "state"),
        "HEmployee": ("no", "date", "salary"),
        "Department": ("dep", "emp", "location"),
        "Assignment": ("emp", "dep", "proj", "date"),
        "Employee": ("no",),
        "Ass-Dept": ("dep",),
        "Other-Dept": ("dep",),
        "Manager": ("emp", "skill", "proj"),
        "Project": ("proj", "project-name"),
    },
    restructured_keys={
        "Person": ("id",),
        "HEmployee": ("no", "date"),
        "Department": ("dep",),
        "Assignment": ("emp", "dep", "proj"),
        "Employee": ("no",),
        "Ass-Dept": ("dep",),
        "Other-Dept": ("dep",),
        "Manager": ("emp",),
        "Project": ("proj",),
    },
    # §7: RIC
    ric=(
        InclusionDependency.parse("Employee[no] << Person[id]"),
        InclusionDependency.parse("Manager[emp] << Employee[no]"),
        InclusionDependency.parse("Assignment[emp] << Employee[no]"),
        InclusionDependency.parse("Ass-Dept[dep] << Other-Dept[dep]"),
        InclusionDependency.parse("Assignment[dep] << Other-Dept[dep]"),
        InclusionDependency.parse("Ass-Dept[dep] << Department[dep]"),
        InclusionDependency.parse("Manager[proj] << Project[proj]"),
        InclusionDependency.parse("HEmployee[no] << Employee[no]"),
        InclusionDependency.parse("Department[emp] << Manager[emp]"),
        InclusionDependency.parse("Assignment[proj] << Project[proj]"),
    ),
)
