"""Rendering the navigation workload as application programs.

The method's input is not a dependency list but *programs*: this module
turns the ground truth's join edges into a corpus of legacy-looking
sources, rotating through every syntactic join form §4 lists (plain
WHERE join, ``JOIN ... ON``, nested ``IN``, correlated ``EXISTS``,
``INTERSECT``) and through host languages (plain SQL, COBOL ``EXEC
SQL``, Pro*C).  *coverage* keeps only a fraction of the edges — programs
never exercise every path of a real system, and the S3 benchmark sweeps
exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.programs.corpus import ProgramCorpus
from repro.programs.equijoin import EquiJoin

_COBOL_TEMPLATE = """\
       IDENTIFICATION DIVISION.
       PROGRAM-ID. {name}.
       PROCEDURE DIVISION.
           EXEC SQL
             {sql}
           END-EXEC.
"""

_PROC_TEMPLATE = """\
/* generated legacy maintenance job */
void run_{name}(void) {{
    EXEC SQL
      {sql};
}}
"""


@dataclass(frozen=True)
class WorkloadConfig:
    seed: int = 43
    coverage: float = 1.0           # fraction of join edges referenced
    queries_per_program: int = 3


class QueryWorkloadGenerator:
    """Generates a :class:`ProgramCorpus` from equi-join edges."""

    def __init__(self, config: Optional[WorkloadConfig] = None) -> None:
        self.config = config or WorkloadConfig()

    # ------------------------------------------------------------------
    def render_query(self, edge: EquiJoin, form: int) -> str:
        """One SQL statement performing *edge*, in the chosen form."""
        (l_rel, l_attrs), (r_rel, r_attrs) = edge.sides()
        la, ra = l_attrs[0], r_attrs[0]
        form = form % 5
        if form == 0:
            conds = " AND ".join(
                f"x.{a} = y.{b}" for a, b in zip(l_attrs, r_attrs)
            )
            return (
                f"SELECT COUNT(*) FROM {l_rel} x, {r_rel} y WHERE {conds}"
            )
        if form == 1:
            conds = " AND ".join(
                f"x.{a} = y.{b}" for a, b in zip(l_attrs, r_attrs)
            )
            return (
                f"SELECT COUNT(*) FROM {l_rel} x JOIN {r_rel} y ON {conds}"
            )
        if form == 2 and edge.is_self_join() is False and len(l_attrs) == 1:
            return (
                f"SELECT {la} FROM {l_rel} WHERE {la} IN "
                f"(SELECT {ra} FROM {r_rel})"
            )
        if form == 3:
            conds = " AND ".join(
                f"x.{a} = y.{b}" for a, b in zip(l_attrs, r_attrs)
            )
            return (
                f"SELECT COUNT(*) FROM {l_rel} x WHERE EXISTS "
                f"(SELECT * FROM {r_rel} y WHERE {conds})"
            )
        # form 4 (and the multi-attribute fallback for form 2)
        l_list = ", ".join(l_attrs)
        r_list = ", ".join(r_attrs)
        return (
            f"SELECT {l_list} FROM {l_rel} INTERSECT "
            f"SELECT {r_list} FROM {r_rel}"
        )

    # ------------------------------------------------------------------
    def generate(self, edges: Sequence[EquiJoin]) -> ProgramCorpus:
        cfg = self.config
        rng = random.Random(cfg.seed)
        chosen = sorted(set(edges), key=lambda e: e.sort_key())
        if cfg.coverage < 1.0:
            keep = max(1, int(len(chosen) * cfg.coverage)) if chosen else 0
            chosen = sorted(
                rng.sample(chosen, keep), key=lambda e: e.sort_key()
            )

        corpus = ProgramCorpus()
        sql_buffer: List[str] = []
        program_index = 0
        for i, edge in enumerate(chosen):
            sql = self.render_query(edge, form=i)
            style = i % 7
            if style == 5:
                corpus.add_source(
                    f"forms/form_{program_index:03d}.cob",
                    _COBOL_TEMPLATE.format(
                        name=f"F{program_index:03d}", sql=sql
                    ),
                )
                program_index += 1
            elif style == 6:
                corpus.add_source(
                    f"jobs/job_{program_index:03d}.pc",
                    _PROC_TEMPLATE.format(name=f"{program_index:03d}", sql=sql),
                )
                program_index += 1
            else:
                sql_buffer.append(sql + ";")
                if len(sql_buffer) >= cfg.queries_per_program:
                    corpus.add_source(
                        f"reports/report_{program_index:03d}.sql",
                        "\n".join(sql_buffer),
                    )
                    sql_buffer = []
                    program_index += 1
        if sql_buffer:
            corpus.add_source(
                f"reports/report_{program_index:03d}.sql", "\n".join(sql_buffer)
            )
        return corpus
