"""One-stop construction of a synthetic reverse-engineering scenario.

``build_scenario`` chains the whole generation stack — random ER schema,
3NF mapping, controlled denormalization, data population, corruption,
query workload — and returns everything a benchmark needs: the dirty
denormalized database, the program corpus, the ground truth, the oracle
expert and the corruption report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.programs.corpus import ProgramCorpus
from repro.relational.database import Database
from repro.workloads.corruption import CorruptionInjector, CorruptionReport
from repro.workloads.data_generator import DataConfig, DataGenerator
from repro.workloads.denormalizer import (
    DenormalizationPlan,
    Denormalizer,
    GroundTruth,
)
from repro.workloads.er_generator import ERGenerator, GeneratorConfig
from repro.workloads.mapping import map_er_to_relational
from repro.workloads.oracle import OracleExpert
from repro.workloads.query_generator import QueryWorkloadGenerator, WorkloadConfig


@dataclass(frozen=True)
class ScenarioConfig:
    """All knobs of a synthetic scenario, with sensible defaults."""

    seed: int = 7
    n_entities: int = 6
    n_one_to_many: int = 5
    n_many_to_many: int = 1
    merges: int = 2
    link_merges: int = 0       # 1NF-producing merges into M:N links
    subtypes: int = 0          # is-a hierarchies in the ground truth
    weak_entities: int = 0     # weak entity-types in the ground truth
    parent_rows: int = 20
    corruption_ind_rate: float = 0.0    # fraction of INDs corrupted
    corruption_row_rate: float = 0.1
    coverage: float = 1.0               # fraction of join edges in programs


@dataclass
class SyntheticScenario:
    """A ready-to-run reverse-engineering problem with known answers."""

    config: ScenarioConfig
    truth: GroundTruth
    database: Database
    corpus: ProgramCorpus
    expert: OracleExpert
    corruption: CorruptionReport = field(default_factory=CorruptionReport)

    def summary(self) -> str:
        rows = sum(len(t) for t in self.database.tables())
        return (
            f"{len(self.truth.denormalized_schema)} relations, {rows} rows, "
            f"{len(self.truth.merges)} merges, "
            f"{len(self.truth.join_edges)} join edges, "
            f"{len(self.corruption.corrupted_inds)} corrupted INDs"
        )


def build_scenario(config: Optional[ScenarioConfig] = None) -> SyntheticScenario:
    """Generate a complete scenario from one seed."""
    config = config or ScenarioConfig()

    er_spec = ERGenerator(
        GeneratorConfig(
            seed=config.seed,
            n_entities=config.n_entities,
            n_one_to_many=config.n_one_to_many,
            n_many_to_many=config.n_many_to_many,
            n_subtypes=config.subtypes,
            n_weak_entities=config.weak_entities,
        )
    ).generate()
    mapping = map_er_to_relational(er_spec)

    truth = Denormalizer(er_spec, mapping).run(
        DenormalizationPlan(
            auto_merges=config.merges,
            auto_link_merges=config.link_merges,
            seed=config.seed + 1,
        )
    )

    database = DataGenerator(
        truth, DataConfig(seed=config.seed + 2, parent_rows=config.parent_rows)
    ).generate()

    corruption = CorruptionReport()
    if config.corruption_ind_rate > 0:
        injector = CorruptionInjector(
            seed=config.seed + 3,
            ind_rate=config.corruption_ind_rate,
            row_rate=config.corruption_row_rate,
        )
        corruption = injector.corrupt(database, truth.true_inds)

    corpus = QueryWorkloadGenerator(
        WorkloadConfig(seed=config.seed + 4, coverage=config.coverage)
    ).generate(truth.join_edges)

    return SyntheticScenario(
        config=config,
        truth=truth,
        database=database,
        corpus=corpus,
        expert=OracleExpert(truth),
        corruption=corruption,
    )
