"""An expert user that answers from synthetic ground truth.

The paper's expert "knows the application domain"; for generated
workloads the application domain *is* the ground truth, so the oracle
expert answers every interactive question from it:

- a non-empty intersection over a true navigation edge is forced into
  its true direction (the extension is dirty, the expert is not);
- a failed FD test is enforced iff the dependency is part of a true
  merge payload;
- a discovered FD is validated iff its right-hand side is true payload;
- an empty-RHS identifier is conceptualized iff it anchors a merged
  attribute-less parent;
- new relations receive the original entity names.

Benchmarks use the oracle to measure the *method's* ceiling — how much
semantics the algorithms can recover when the human answers perfectly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.expert import (
    Expert,
    FDContext,
    ForceInclusion,
    IgnoreIntersection,
    NEIContext,
    NEIDecision,
)
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.programs.equijoin import EquiJoin
from repro.relational.attribute import AttributeRef
from repro.util.naming import unique_name
from repro.workloads.denormalizer import GroundTruth


class OracleExpert(Expert):
    """Ground-truth-backed implementation of the expert protocol."""

    def __init__(self, truth: GroundTruth) -> None:
        self.truth = truth
        # canonical equi-join -> true inclusion direction
        self._edge_direction: Dict[EquiJoin, InclusionDependency] = {}
        for ind in truth.true_inds:
            edge = EquiJoin(
                ind.lhs_relation, ind.lhs_attrs, ind.rhs_relation, ind.rhs_attrs
            )
            self._edge_direction[edge] = ind
        # (relation, lhs attr) -> true payload
        self._payload: Dict[Tuple[str, str], frozenset] = {}
        for fd in truth.true_fds:
            self._payload[(fd.relation, tuple(fd.lhs)[0])] = frozenset(fd.rhs)
        self._hidden = set(truth.true_hidden)

    # ------------------------------------------------------------------
    def decide_nei(self, context: NEIContext) -> NEIDecision:
        true_ind = self._edge_direction.get(context.join)
        if true_ind is None:
            return IgnoreIntersection()
        (left_rel, left_attrs), _ = context.join.sides()
        if (
            true_ind.lhs_relation == left_rel
            and tuple(true_ind.lhs_attrs) == tuple(left_attrs)
        ):
            return ForceInclusion("left_in_right")
        return ForceInclusion("right_in_left")

    # ------------------------------------------------------------------
    def enforce_fd(self, context: FDContext) -> bool:
        fd = context.fd
        if len(fd.lhs) != 1:
            return False
        payload = self._payload.get((fd.relation, tuple(fd.lhs)[0]))
        if payload is None:
            return False
        return set(fd.rhs) <= payload

    def validate_fd(self, fd: FunctionalDependency) -> bool:
        if len(fd.lhs) != 1:
            return False
        payload = self._payload.get((fd.relation, tuple(fd.lhs)[0]))
        if payload is None:
            return False
        return set(fd.rhs) <= payload

    def conceptualize_hidden_object(self, ref: AttributeRef) -> bool:
        return ref in self._hidden

    # ------------------------------------------------------------------
    def _object_name(
        self, relation: str, attribute: str, taken: Tuple[str, ...]
    ) -> Optional[str]:
        name = self.truth.object_names.get((relation, attribute))
        if name is None:
            return None
        return unique_name(name.capitalize(), taken)

    def name_hidden_object(self, ref: AttributeRef, taken: Tuple[str, ...]) -> str:
        if ref.is_single():
            name = self._object_name(ref.relation, ref.attribute, taken)
            if name is not None:
                return name
        return super().name_hidden_object(ref, taken)

    def name_fd_relation(
        self, fd: FunctionalDependency, taken: Tuple[str, ...]
    ) -> str:
        if len(fd.lhs) == 1:
            name = self._object_name(fd.relation, tuple(fd.lhs)[0], taken)
            if name is not None:
                return name
        return super().name_fd_relation(fd, taken)
