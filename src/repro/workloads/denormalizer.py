"""Controlled denormalization with known ground truth.

The paper's motivation: real schemas are "often either directly produced
in 1NF or 2NF, or denormalized at the end of the design process" for
access-time reasons.  The denormalizer reproduces that step on a clean
3NF mapping: a *merge* embeds a parent relation into one of its children
(the parent's non-key attributes and foreign keys move into the child;
the parent relation disappears).  Each merge creates, with full ground
truth:

- a transitive dependency ``child : fk -> embedded attributes`` (the FD
  RHS-Discovery must recover), or — when the parent carried no non-key
  attributes — a *hidden object* (the empty-RHS case);
- interrelation dependencies between non-key attributes: every other
  relation that referenced the parent now navigates through the child's
  foreign key (the ``Department[proj] ≪ Assignment[proj]`` situation).

Merges are non-cascading: a relation takes part in at most one merge
(as parent or child), which keeps the ground-truth bookkeeping exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.exceptions import ProcessError
from repro.programs.equijoin import EquiJoin
from repro.relational.attribute import Attribute, AttributeRef
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.workloads.er_generator import ERSpec
from repro.workloads.mapping import RelationalMapping


@dataclass(frozen=True)
class Merge:
    """One denormalization step: *parent* embedded into *child* via *fk*.

    ``kind`` distinguishes the two operators:

    - ``"child"`` — the parent folded into a 1:N child; the anchoring fk
      is a plain non-key attribute, so the payload hangs off a non-key
      determinant (a *transitive* dependency: the child drops to 2NF);
    - ``"link"`` — the parent folded into an M:N link relation; the
      anchoring fk is *part of the link's composite key*, so the payload
      depends on a proper subset of the key (a *partial* dependency: the
      link drops to 1NF — the paper's Assignment case).
    """

    parent: str
    child: str
    fk_attr: str
    embedded_attrs: Tuple[str, ...]     # parent non-key attributes moved
    moved_fks: Tuple[str, ...]          # parent foreign keys moved
    kind: str = "child"

    @property
    def payload(self) -> Tuple[str, ...]:
        return self.embedded_attrs + self.moved_fks


@dataclass
class GroundTruth:
    """Everything the evaluation layer needs to score a recovery run."""

    er: ERSpec
    normalized: RelationalMapping
    denormalized_schema: DatabaseSchema
    merges: List[Merge] = field(default_factory=list)
    #: FDs a perfect run elicits (one per merge with a non-empty payload)
    true_fds: List[FunctionalDependency] = field(default_factory=list)
    #: hidden objects a perfect run elicits (merges with empty payload)
    true_hidden: List[AttributeRef] = field(default_factory=list)
    #: INDs a perfect run elicits from the navigation workload
    true_inds: List[InclusionDependency] = field(default_factory=list)
    #: the equi-joins application programs perform on the denormalized schema
    join_edges: List[EquiJoin] = field(default_factory=list)
    #: identifier attribute (relation, attr) -> original entity name
    object_names: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def merged_parents(self) -> List[str]:
        return [m.parent for m in self.merges]


@dataclass(frozen=True)
class DenormalizationPlan:
    """Which merges to perform.

    ``auto_merges`` picks that many child-merge candidates automatically
    (preferring parents referenced by several relations, so the hidden
    semantics stay discoverable from the query workload);
    ``auto_link_merges`` additionally folds that many parents into M:N
    link relations (the 1NF-producing operator);
    ``explicit`` lists (parent, child-or-link) pairs to merge instead.
    """

    auto_merges: int = 2
    auto_link_merges: int = 0
    explicit: Tuple[Tuple[str, str], ...] = ()
    seed: int = 11


class Denormalizer:
    """Applies a :class:`DenormalizationPlan` to a 3NF mapping."""

    def __init__(self, spec: ERSpec, mapping: RelationalMapping) -> None:
        self.spec = spec
        self.mapping = mapping

    # ------------------------------------------------------------------
    def run(self, plan: Optional[DenormalizationPlan] = None) -> GroundTruth:
        plan = plan or DenormalizationPlan()
        schema = self.mapping.schema.copy()
        truth = GroundTruth(self.spec, self.mapping, schema)

        link_names = {l.name for l in self.spec.many_to_many}
        for parent, target in self._choose_merges(plan):
            if target in link_names:
                self._apply_link_merge(parent, target, schema, truth)
            else:
                self._apply_merge(parent, target, schema, truth)

        self._derive_edges_and_inds(schema, truth)
        return truth

    # ------------------------------------------------------------------
    def _choose_merges(
        self, plan: DenormalizationPlan
    ) -> List[Tuple[str, str]]:
        if plan.explicit:
            return list(plan.explicit)
        rng = random.Random(plan.seed)
        # candidates: (parent, child) 1:N edges; score by how many *other*
        # relations reference the parent (discoverability of the merge)
        ref_count: Dict[str, int] = {}
        for fk, (child, parent) in self.mapping.fk_edges.items():
            ref_count[parent] = ref_count.get(parent, 0) + 1
        candidates = [
            (rel.parent, rel.child, ref_count.get(rel.parent, 0))
            for rel in self.spec.one_to_many
        ]
        rng.shuffle(candidates)
        candidates.sort(key=lambda c: -c[2])
        chosen: List[Tuple[str, str]] = []
        used: set = set()
        for parent, child, score in candidates:
            if len(chosen) >= plan.auto_merges:
                break
            if parent in used or child in used:
                continue
            if score < 2:
                # a parent referenced only by its merge child leaves no
                # join partner for the anchoring fk: the hidden semantics
                # would be invisible to ANY query workload.  Auto plans
                # skip such merges (explicit plans may still request them
                # to study exactly that blind spot).
                continue
            used.add(parent)
            used.add(child)
            chosen.append((parent, child))

        # link merges: fold a parent into an M:N link relation that
        # references it (requires another reference for discoverability)
        link_candidates = []
        for link in self.spec.many_to_many:
            for side in (link.left, link.right):
                link_candidates.append((side, link.name, ref_count.get(side, 0)))
        rng.shuffle(link_candidates)
        link_candidates.sort(key=lambda c: -c[2])
        taken_links = 0
        for parent, link_name, score in link_candidates:
            if taken_links >= plan.auto_link_merges:
                break
            if parent in used or link_name in used or score < 2:
                continue
            used.add(parent)
            used.add(link_name)
            chosen.append((parent, link_name))
            taken_links += 1
        return chosen

    # ------------------------------------------------------------------
    def _apply_merge(
        self,
        parent: str,
        child: str,
        schema: DatabaseSchema,
        truth: GroundTruth,
    ) -> None:
        if parent not in schema or child not in schema:
            raise ProcessError(f"cannot merge {parent!r} into {child!r}: missing")
        if parent in truth.merged_parents() or any(
            m.child in (parent, child) or m.parent == child for m in truth.merges
        ):
            raise ProcessError(
                f"merge ({parent}, {child}) overlaps an earlier merge"
            )
        fk_attr = self._fk_of(child, parent)
        parent_schema = schema.relation(parent)
        parent_key = self.spec.entity(parent).key_attr
        parent_spec = self.spec.entity(parent)
        embedded = tuple(parent_spec.attrs)
        moved_fks = tuple(
            a.name
            for a in parent_schema.attributes
            if a.name != parent_key and a.name not in embedded
        )

        # widen the child: embedded attributes are nullable (the child's
        # fk itself may be NULL)
        child_schema = schema.relation(child)
        new_attrs = list(child_schema.attributes)
        for name in embedded + moved_fks:
            dtype = parent_schema.attribute(name).dtype
            new_attrs.append(Attribute(name, dtype, nullable=True))
        widened = RelationSchema(child, new_attrs)
        for u in child_schema.uniques:
            widened.declare_unique(tuple(u.attributes))
        schema.replace(widened)
        schema.remove(parent)

        merge = Merge(parent, child, fk_attr, embedded, moved_fks)
        truth.merges.append(merge)
        truth.object_names[(child, fk_attr)] = parent
        if merge.payload:
            truth.true_fds.append(
                FunctionalDependency(child, (fk_attr,), merge.payload)
            )
        else:
            truth.true_hidden.append(AttributeRef.single(child, fk_attr))

    def _apply_link_merge(
        self,
        parent: str,
        link_name: str,
        schema: DatabaseSchema,
        truth: GroundTruth,
    ) -> None:
        """Fold *parent* into the M:N link relation *link_name*.

        The anchoring foreign key is part of the link's composite key,
        so the embedded payload forms a *partial* dependency — the link
        relation drops to 1NF, the paper's Assignment situation.
        """
        if parent not in schema or link_name not in schema:
            raise ProcessError(
                f"cannot merge {parent!r} into link {link_name!r}: missing"
            )
        involved = {m.parent for m in truth.merges} | {
            m.child for m in truth.merges
        }
        if parent in involved or link_name in involved:
            raise ProcessError(
                f"merge ({parent}, {link_name}) overlaps an earlier merge"
            )
        link = next(
            l for l in self.spec.many_to_many if l.name == link_name
        )
        if parent not in (link.left, link.right):
            raise ProcessError(
                f"link {link_name!r} does not reference {parent!r}"
            )
        parent_spec = self.spec.entity(parent)
        fk_attr = f"{link_name}_{parent_spec.key_attr}"
        parent_schema = schema.relation(parent)
        embedded = tuple(parent_spec.attrs)
        moved_fks = tuple(
            a.name
            for a in parent_schema.attributes
            if a.name != parent_spec.key_attr and a.name not in embedded
        )

        link_schema = schema.relation(link_name)
        new_attrs = list(link_schema.attributes)
        for name in embedded + moved_fks:
            dtype = parent_schema.attribute(name).dtype
            new_attrs.append(Attribute(name, dtype, nullable=True))
        widened = RelationSchema(link_name, new_attrs)
        for u in link_schema.uniques:
            widened.declare_unique(tuple(u.attributes))
        schema.replace(widened)
        schema.remove(parent)

        merge = Merge(
            parent, link_name, fk_attr, embedded, moved_fks, kind="link"
        )
        truth.merges.append(merge)
        truth.object_names[(link_name, fk_attr)] = parent
        if merge.payload:
            truth.true_fds.append(
                FunctionalDependency(link_name, (fk_attr,), merge.payload)
            )
        else:
            truth.true_hidden.append(AttributeRef.single(link_name, fk_attr))

    def _fk_of(self, child: str, parent: str) -> str:
        for rel in self.spec.one_to_many:
            if rel.child == child and rel.parent == parent:
                return rel.fk_attr
        raise ProcessError(f"no one-to-many edge {child} -> {parent}")

    # ------------------------------------------------------------------
    def _derive_edges_and_inds(
        self, schema: DatabaseSchema, truth: GroundTruth
    ) -> None:
        """Navigation edges + expected INDs on the denormalized schema.

        An attribute can have moved (merged parents' fks live in their
        child now); ``locate`` finds its current home.
        """
        home: Dict[str, str] = {}
        for rel in schema:
            for a in rel.attribute_names:
                home[a] = rel.name

        anchor: Dict[str, Tuple[str, str]] = {}     # merged parent -> (child, fk)
        for m in truth.merges:
            anchor[m.parent] = (m.child, m.fk_attr)

        for fk, (child, parent) in sorted(self.mapping.fk_edges.items()):
            fk_home = home.get(fk)
            if fk_home is None:
                continue  # the fk vanished with a dropped relation (not expected)
            if parent in schema:
                parent_key = self.spec.entity(parent).key_attr
                if fk_home == parent:
                    continue
                truth.join_edges.append(
                    EquiJoin(fk_home, (fk,), parent, (parent_key,))
                )
                truth.true_inds.append(
                    InclusionDependency(fk_home, (fk,), parent, (parent_key,))
                )
            elif parent in anchor:
                anchor_rel, anchor_fk = anchor[parent]
                if fk_home == anchor_rel and fk == anchor_fk:
                    continue  # the anchoring fk itself is not a join edge
                truth.join_edges.append(
                    EquiJoin(fk_home, (fk,), anchor_rel, (anchor_fk,))
                )
                truth.true_inds.append(
                    InclusionDependency(fk_home, (fk,), anchor_rel, (anchor_fk,))
                )
        truth.join_edges = sorted(set(truth.join_edges), key=lambda j: j.sort_key())
        truth.true_inds = sorted(set(truth.true_inds), key=lambda i: i.sort_key())
