"""Populating a denormalized schema consistently with its ground truth.

Data is generated entity-by-entity on the *original* (normalized) model
— every attribute value is a deterministic function of its entity's
identifier, so all key FDs hold — and then materialized onto the
denormalized schema: a merged parent's attributes are joined into its
child's rows through the child's foreign key.

Invariants the generator guarantees (and the tests assert):

- every ground-truth FD of the denormalization holds;
- every ground-truth IND holds, because the anchoring child of a merge
  references *every* parent identifier at least once (its first ``|P|``
  rows sweep the parent pool) — so sibling references stay included;
- children are strictly larger than parents, so merged payload values
  repeat and no spurious ``fk -> child attribute`` FD can hold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.relational.database import Database
from repro.relational.domain import NULL
from repro.workloads.denormalizer import GroundTruth
from repro.workloads.er_generator import ERSpec


@dataclass(frozen=True)
class DataConfig:
    """Sizing knobs for the generator."""

    seed: int = 23
    parent_rows: int = 20
    child_factor: int = 3          # child size = parent_rows * child_factor
    nullable_fk_null_rate: float = 0.15
    link_rows: int = 40


class DataGenerator:
    """Builds a populated :class:`Database` for a :class:`GroundTruth`."""

    def __init__(self, truth: GroundTruth, config: Optional[DataConfig] = None) -> None:
        self.truth = truth
        self.config = config or DataConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------
    def generate(self) -> Database:
        spec = self.truth.er
        sizes = self._entity_sizes(spec)
        virtual = self._generate_virtual_rows(spec, sizes)
        return self._materialize(virtual, sizes)

    # ------------------------------------------------------------------
    def _entity_sizes(self, spec: ERSpec) -> Dict[str, int]:
        """Sizes grow with depth in the reference DAG.

        A child must be strictly larger than every parent it references:
        otherwise the sweep that covers a merged parent's pool would make
        the anchoring foreign key unique, and spurious ``fk -> anything``
        FDs would hold.  Entities are emitted parents-first, so one pass
        suffices.
        """
        sizes: Dict[str, int] = {}
        for entity in spec.entities:
            parent_sizes = [
                sizes[rel.parent] for rel in spec.parents_of(entity.name)
            ]
            if parent_sizes:
                sizes[entity.name] = max(parent_sizes) * self.config.child_factor
            else:
                sizes[entity.name] = self.config.parent_rows
        return sizes

    def _generate_virtual_rows(
        self, spec: ERSpec, sizes: Dict[str, int]
    ) -> Dict[str, List[Dict[str, Any]]]:
        """Rows for every *original* entity relation, parents first."""
        anchors = {
            m.child: m for m in self.truth.merges if m.kind == "child"
        }
        virtual: Dict[str, List[Dict[str, Any]]] = {}
        for entity in spec.entities:     # generator emits parents first
            rows: List[Dict[str, Any]] = []
            size = sizes[entity.name]
            fks = spec.parents_of(entity.name)
            anchor = anchors.get(entity.name)
            for i in range(1, size + 1):
                row: Dict[str, Any] = {entity.key_attr: i}
                for attr in entity.attrs:
                    row[attr] = f"{attr}-{i}"
                for fk in fks:
                    parent_size = sizes[fk.parent]
                    sweep = (
                        anchor is not None
                        and fk.fk_attr == anchor.fk_attr
                        and i <= parent_size
                    )
                    if sweep:
                        # the anchoring child's first |P| rows cover the
                        # whole parent pool (keeps sibling INDs clean)
                        row[fk.fk_attr] = i
                    elif fk.nullable and self._rng.random() < self.config.nullable_fk_null_rate:
                        row[fk.fk_attr] = NULL
                    else:
                        row[fk.fk_attr] = self._rng.randint(1, parent_size)
                rows.append(row)
            virtual[entity.name] = rows
        return virtual

    def _materialize(
        self, virtual: Dict[str, List[Dict[str, Any]]], sizes: Dict[str, int]
    ) -> Database:
        schema = self.truth.denormalized_schema.copy()
        db = Database(schema)
        spec = self.truth.er

        parent_lookup: Dict[str, Dict[int, Dict[str, Any]]] = {
            m.parent: {
                row[spec.entity(m.parent).key_attr]: row
                for row in virtual[m.parent]
            }
            for m in self.truth.merges
        }
        merges_by_child = {
            m.child: m for m in self.truth.merges if m.kind == "child"
        }
        merged_parents = {m.parent for m in self.truth.merges}

        for entity in spec.entities:
            if entity.name in merged_parents:
                continue
            relation = schema.relation(entity.name)
            merge = merges_by_child.get(entity.name)
            for row in virtual[entity.name]:
                values = dict(row)
                if merge is not None:
                    fk_value = values.get(merge.fk_attr)
                    if fk_value is NULL or fk_value is None:
                        for attr in merge.payload:
                            values[attr] = NULL
                    else:
                        parent_row = parent_lookup[merge.parent][fk_value]
                        for attr in merge.payload:
                            values[attr] = parent_row.get(attr, NULL)
                db.insert(entity.name, values)

        # subtype relations: ids are a subset of the supertype's pool
        for sub in spec.subtypes:
            sup_size = sizes[sub.supertype]
            count = max(1, sup_size // 2)
            ids = sorted(self._rng.sample(range(1, sup_size + 1), count))
            for i in ids:
                row = {sub.key_attr: i}
                for attr in sub.attrs:
                    row[attr] = f"{attr}-{i}"
                db.insert(sub.name, row)

        # weak entity relations: (owner ref, running discriminator)
        for weak in spec.weak_entities:
            owner_size = sizes[weak.owner]
            for owner_id in range(1, owner_size + 1):
                for seq in range(1, self._rng.randint(1, 3) + 1):
                    row = {
                        weak.fk_attr: owner_id,
                        weak.discriminator_attr: seq,
                    }
                    for attr in weak.attrs:
                        row[attr] = f"{attr}-{owner_id}-{seq}"
                    db.insert(weak.name, row)

        # many-to-many link relations (possibly carrying a merged parent)
        merges_by_link = {
            m.child: m for m in self.truth.merges if m.kind == "link"
        }
        for link in spec.many_to_many:
            relation = schema.relation(link.name)
            left_size = sizes[link.left]
            right_size = sizes[link.right]
            key_attrs = tuple(relation.uniques[0].attributes)
            merge = merges_by_link.get(link.name)
            merged_side = None
            if merge is not None:
                merged_side = 0 if merge.parent == link.left else 1
                merged_pool = sizes[merge.parent]

            def payload_of(parent_id):
                if merge is None:
                    return {}
                parent_row = parent_lookup[merge.parent][parent_id]
                return {a: parent_row.get(a, NULL) for a in merge.payload}

            seen: set = set()
            rows: List[Dict[str, Any]] = []
            if merge is not None:
                # sweep: the link covers the merged parent's whole pool,
                # so sibling references stay included after the merge
                for i in range(1, merged_pool + 1):
                    other = self._rng.randint(
                        1, right_size if merged_side == 0 else left_size
                    )
                    pair = (i, other) if merged_side == 0 else (other, i)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    rows.append(
                        {key_attrs[0]: pair[0], key_attrs[1]: pair[1]}
                    )
            # a merged link needs enough extra rows that anchor-fk values
            # repeat — otherwise the fk would be accidentally unique and
            # spurious `fk -> anything` dependencies would hold
            target = max(
                self.config.link_rows,
                2 * len(rows) if merge is not None else len(rows),
            )
            attempts = 0
            while len(rows) < target and attempts < target * 10:
                attempts += 1
                pair = (
                    self._rng.randint(1, left_size),
                    self._rng.randint(1, right_size),
                )
                if pair in seen:
                    continue
                seen.add(pair)
                rows.append({key_attrs[0]: pair[0], key_attrs[1]: pair[1]})
            for row in rows:
                if merge is not None:
                    parent_id = row[key_attrs[merged_side]]
                    row.update(payload_of(parent_id))
                for attr in relation.attribute_names:
                    if attr not in row:
                        row[attr] = (
                            f"{attr}-{row[key_attrs[0]]}-{row[key_attrs[1]]}"
                        )
                db.insert(link.name, row)

        db.validate()
        return db
