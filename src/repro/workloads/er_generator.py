"""Random ground-truth ER schemas for the S-series experiments.

The generator produces a seeded, reproducible conceptual schema made of
entity-types, many-to-one (functional) relationships and many-to-many
relationships — the constructs the ER→relational mapping of
:mod:`repro.workloads.mapping` knows how to realize.  Entity and
attribute names are drawn from a small business vocabulary so generated
schemas read like the legacy systems the paper targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.eer.model import EERSchema, EntityType, Participation, RelationshipType

_VOCABULARY = [
    "customer", "order", "product", "invoice", "supplier", "warehouse",
    "shipment", "employee", "department", "project", "contract", "account",
    "region", "category", "carrier", "plant", "machine", "operator",
    "route", "ticket", "policy", "claim", "agent", "branch",
]

_ATTR_VOCABULARY = [
    "name", "code", "status", "city", "grade", "type", "label",
    "amount", "origin", "rank", "note", "group", "zone",
]


@dataclass(frozen=True)
class EntitySpec:
    """One generated entity: key attribute plus plain attributes.

    All attribute names are globally prefixed with the entity name so
    later denormalization merges never collide.
    """

    name: str
    key_attr: str
    attrs: Tuple[str, ...]          # non-key attributes (already prefixed)

    @property
    def all_attrs(self) -> Tuple[str, ...]:
        return (self.key_attr,) + self.attrs


@dataclass(frozen=True)
class OneToManySpec:
    """A functional relationship: each *child* references one *parent*.

    ``nullable`` children may lack a parent (NULL foreign key).
    """

    child: str
    parent: str
    fk_attr: str
    nullable: bool = False


@dataclass(frozen=True)
class ManyToManySpec:
    """A many-to-many relationship, realized as its own relation."""

    name: str
    left: str
    right: str
    attrs: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SubtypeSpec:
    """A specialization: *name* is-a *supertype*.

    The subtype relation is keyed by its own copy of the supertype's
    identifier (``<name>_id``) whose values are a subset of the
    supertype's pool — the whole-key inclusion Translate's rule (a)
    recognizes as an is-a link.
    """

    name: str
    supertype: str
    attrs: Tuple[str, ...] = ()

    @property
    def key_attr(self) -> str:
        return f"{self.name}_id"


@dataclass(frozen=True)
class WeakEntitySpec:
    """A weak entity-type identified by *owner* plus a discriminator.

    Realized as a relation keyed by (owner reference, discriminator);
    the partial-key reference is what Translate classifies as a weak
    entity-type.
    """

    name: str
    owner: str
    attrs: Tuple[str, ...] = ()

    @property
    def fk_attr(self) -> str:
        return f"{self.name}_{self.owner}_id"

    @property
    def discriminator_attr(self) -> str:
        return f"{self.name}_seq"


@dataclass
class ERSpec:
    """The generated conceptual schema, as plain specs."""

    entities: List[EntitySpec] = field(default_factory=list)
    one_to_many: List[OneToManySpec] = field(default_factory=list)
    many_to_many: List[ManyToManySpec] = field(default_factory=list)
    subtypes: List[SubtypeSpec] = field(default_factory=list)
    weak_entities: List[WeakEntitySpec] = field(default_factory=list)

    def entity(self, name: str) -> EntitySpec:
        for e in self.entities:
            if e.name == name:
                return e
        raise KeyError(name)

    def parents_of(self, child: str) -> List[OneToManySpec]:
        return [r for r in self.one_to_many if r.child == child]

    def to_eer(self) -> EERSchema:
        """The ground-truth EER schema these specs describe."""
        eer = EERSchema()
        for spec in self.entities:
            eer.add_entity(
                EntityType(spec.name, spec.all_attrs, (spec.key_attr,))
            )
        for sub in self.subtypes:
            eer.add_entity(
                EntityType(
                    sub.name, (sub.key_attr,) + sub.attrs, (sub.key_attr,)
                )
            )
            eer.add_isa(sub.name, sub.supertype)
        for weak in self.weak_entities:
            key = (weak.fk_attr, weak.discriminator_attr)
            eer.add_entity(
                EntityType(
                    weak.name,
                    key + weak.attrs,
                    key,
                    weak=True,
                    owners=(weak.owner,),
                    discriminator=(weak.discriminator_attr,),
                )
            )
        for rel in self.one_to_many:
            eer.add_relationship(
                RelationshipType(
                    f"{rel.child}-{rel.parent}",
                    (
                        Participation(rel.child, "N", via=(rel.fk_attr,)),
                        Participation(rel.parent, "1"),
                    ),
                )
            )
        for rel in self.many_to_many:
            eer.add_relationship(
                RelationshipType(
                    rel.name,
                    (
                        Participation(rel.left, "N"),
                        Participation(rel.right, "N"),
                    ),
                    attributes=rel.attrs,
                )
            )
        return eer


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random schema generator (all sizes inclusive)."""

    seed: int = 7
    n_entities: int = 6
    min_attrs: int = 1
    max_attrs: int = 4
    n_one_to_many: int = 5
    n_many_to_many: int = 1
    n_subtypes: int = 0
    n_weak_entities: int = 0
    nullable_fk_fraction: float = 0.25


class ERGenerator:
    """Seeded generator of :class:`ERSpec` ground truths."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()

    def generate(self) -> ERSpec:
        cfg = self.config
        rng = random.Random(cfg.seed)
        spec = ERSpec()

        # entities with prefixed attributes
        names = self._entity_names(rng, cfg.n_entities)
        for name in names:
            n_attrs = rng.randint(cfg.min_attrs, cfg.max_attrs)
            picks = rng.sample(_ATTR_VOCABULARY, min(n_attrs, len(_ATTR_VOCABULARY)))
            spec.entities.append(
                EntitySpec(
                    name=name,
                    key_attr=f"{name}_id",
                    attrs=tuple(f"{name}_{a}" for a in sorted(picks)),
                )
            )

        # many-to-one edges child -> parent; parents precede children in
        # the name list so the reference graph is acyclic
        possible = [
            (child, parent)
            for i, parent in enumerate(names)
            for child in names[i + 1 :]
        ]
        rng.shuffle(possible)
        used: set = set()
        for child, parent in possible:
            if len(spec.one_to_many) >= cfg.n_one_to_many:
                break
            if (child, parent) in used:
                continue
            used.add((child, parent))
            spec.one_to_many.append(
                OneToManySpec(
                    child=child,
                    parent=parent,
                    fk_attr=f"{child}_{parent}_id",
                    nullable=rng.random() < cfg.nullable_fk_fraction,
                )
            )

        # many-to-many relations over remaining pairs
        remaining = [p for p in possible if p not in used]
        for left, right in remaining[: cfg.n_many_to_many]:
            spec.many_to_many.append(
                ManyToManySpec(
                    name=f"{left}_{right}_link",
                    left=left,
                    right=right,
                    attrs=(f"{left}_{right}_qty",),
                )
            )

        # subtypes and weak entities hang off random existing entities
        for i in range(cfg.n_subtypes):
            sup = names[rng.randrange(len(names))]
            sub_name = f"special_{sup}{i if i else ''}".rstrip()
            spec.subtypes.append(
                SubtypeSpec(
                    name=sub_name,
                    supertype=sup,
                    attrs=(f"{sub_name}_grade",),
                )
            )
        for i in range(cfg.n_weak_entities):
            owner = names[rng.randrange(len(names))]
            weak_name = f"{owner}_history{i if i else ''}".rstrip()
            spec.weak_entities.append(
                WeakEntitySpec(
                    name=weak_name,
                    owner=owner,
                    attrs=(f"{weak_name}_note",),
                )
            )
        return spec

    @staticmethod
    def _entity_names(rng: random.Random, count: int) -> List[str]:
        base = list(_VOCABULARY)
        rng.shuffle(base)
        names: List[str] = []
        i = 0
        while len(names) < count:
            if i < len(base):
                names.append(base[i])
            else:
                names.append(f"{base[i % len(base)]}{i // len(base) + 1}")
            i += 1
        return names
