"""Integrity-violation injection.

Legacy extensions are dirty; the paper's NEI branch and the expert's
"enforce anyway" override exist precisely for that.  The injector takes
a clean database + ground truth and breaks a controlled fraction of the
referencing values of chosen inclusion dependencies: corrupted values
are moved far outside the referenced domain, turning a clean inclusion
into a genuine non-empty intersection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.dependencies.ind import InclusionDependency
from repro.relational.database import Database
from repro.relational.domain import is_null

#: corrupted identifiers start here — far outside any generated pool
_CORRUPTION_BASE = 900_000


@dataclass
class CorruptionReport:
    """What was broken, for the oracle and the evaluation layer."""

    corrupted_inds: List[InclusionDependency] = field(default_factory=list)
    rows_touched: int = 0

    def __repr__(self) -> str:
        return (
            f"CorruptionReport({len(self.corrupted_inds)} INDs, "
            f"{self.rows_touched} rows)"
        )


class CorruptionInjector:
    """Breaks a fraction of the left-hand values of inclusion dependencies.

    *row_rate* is the fraction of (non-NULL) referencing rows corrupted
    per chosen dependency; *ind_rate* the fraction of dependencies
    touched at all.
    """

    def __init__(
        self,
        seed: int = 31,
        ind_rate: float = 0.5,
        row_rate: float = 0.1,
    ) -> None:
        self.seed = seed
        self.ind_rate = ind_rate
        self.row_rate = row_rate

    def corrupt(
        self,
        database: Database,
        inds: Sequence[InclusionDependency],
    ) -> CorruptionReport:
        """Mutate *database* in place; returns what was corrupted."""
        rng = random.Random(self.seed)
        report = CorruptionReport()
        counter = 0
        for ind in sorted(set(inds), key=lambda i: i.sort_key()):
            if rng.random() >= self.ind_rate:
                continue
            if not ind.is_unary():
                continue  # generated ground truths are unary
            attr = ind.lhs_attrs[0]
            table = database.table(ind.lhs_relation)
            position = table.schema.position(attr)
            rows = [list(r.values) for r in table]
            eligible = [
                i for i, r in enumerate(rows) if not is_null(r[position])
            ]
            if not eligible:
                continue
            k = max(1, int(len(eligible) * self.row_rate))
            touched = rng.sample(eligible, min(k, len(eligible)))
            for idx in touched:
                counter += 1
                rows[idx][position] = _CORRUPTION_BASE + counter
            table.replace_rows(rows)
            report.corrupted_inds.append(ind)
            report.rows_touched += len(touched)
        return report
