"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the boundary.  The sub-hierarchy mirrors the
package layout: schema-level problems, data-level problems, SQL language
problems, and reverse-engineering process problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema or database schema is malformed or inconsistent."""


class UnknownRelationError(SchemaError):
    """A relation name was referenced but is not part of the schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(SchemaError):
    """An attribute was referenced but does not belong to its relation."""

    def __init__(self, relation: str, attribute: str) -> None:
        super().__init__(f"unknown attribute: {relation}.{attribute}")
        self.relation = relation
        self.attribute = attribute


class DuplicateRelationError(SchemaError):
    """Two relations with the same name were added to one database."""

    def __init__(self, name: str) -> None:
        super().__init__(f"duplicate relation name: {name!r}")
        self.name = name


class DataError(ReproError):
    """A tuple violates typing rules or a declared constraint."""


class ConstraintViolationError(DataError):
    """A declared constraint (unique / not null / key) is violated."""

    def __init__(self, constraint: str, detail: str) -> None:
        super().__init__(f"{constraint} violated: {detail}")
        self.constraint = constraint
        self.detail = detail


class StorageError(DataError):
    """A storage file is missing, truncated, or not in the expected format.

    Raised by the paged storage engine (:mod:`repro.storage.paged`) with
    one-line diagnostics that name the offending file and byte offset,
    so a damaged page file surfaces as ``error: ...`` at the CLI instead
    of a traceback.
    """


class TypingError(DataError):
    """A value does not belong to the domain of its attribute."""


class ArityError(DataError):
    """A tuple or projection has the wrong number of values."""


class SQLError(ReproError):
    """Base class for SQL language-processing errors."""


class SQLLexError(SQLError):
    """The lexer met a character sequence that is not a token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class SQLParseError(SQLError):
    """The parser met an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} at line {line}, column {column}"
        super().__init__(message)
        self.line = line
        self.column = column


class SQLExecutionError(SQLError):
    """A parsed statement cannot be executed against the database."""


class ExtractionError(ReproError):
    """Equi-join extraction failed on an application program."""


class ProcessError(ReproError):
    """A reverse-engineering algorithm was used inconsistently."""


class ExpertDeclinedError(ProcessError):
    """An interactive step needed an expert answer that was not provided."""


class ServiceError(ReproError):
    """Base class for the service layer (process pool, job manager)."""


class WorkerPoolError(ServiceError):
    """The process pool could not answer a probe batch.

    Raised when a batch exhausts its bounded retries across worker
    crashes, hung-batch timeouts, or worker-side errors.  The batch
    executor catches it and falls back to the serial path, so a broken
    pool degrades throughput, never correctness.
    """


class RunCancelled(ServiceError):
    """A queued or running discovery job was cancelled by its owner.

    The pipeline checks its ``cancel`` hook between phases and raises
    this to unwind; the job manager records the job as ``cancelled``
    rather than ``failed``.
    """


class UnknownJobError(ServiceError):
    """A job id was referenced but is not known to the job manager."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job: {job_id!r}")
        self.job_id = job_id
