"""Pulling SQL statements out of host-language source.

Legacy applications embed SQL in three shapes this module recognizes:

- plain SQL scripts (``.sql`` files, forms, reports) — the whole file is a
  semicolon-separated statement list;
- COBOL: ``EXEC SQL ... END-EXEC.`` blocks;
- C / Pro*C: ``EXEC SQL ... ;`` blocks.

Host variables (``:name``) and ``INTO :a, :b`` clauses are normalized away
before parsing — a host variable behaves like an opaque literal, so the
scanner replaces it with a marker string; this keeps column-to-column
equalities (the joins we want) distinct from column-to-variable filters.
``DECLARE c CURSOR FOR`` prefixes are stripped so the underlying SELECT is
parsed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.programs.corpus import ApplicationProgram

#: marker literal substituted for host variables before parsing
HOST_VARIABLE_MARKER = "__host_var__"

_COBOL_BLOCK_RE = re.compile(r"EXEC\s+SQL(.*?)END-EXEC\.?", re.IGNORECASE | re.DOTALL)
_C_BLOCK_RE = re.compile(r"EXEC\s+SQL(.*?);", re.IGNORECASE | re.DOTALL)
_INTO_CLAUSE_RE = re.compile(
    r"\bINTO\s+:[A-Za-z_][\w\-]*(\s*,\s*:[A-Za-z_][\w\-]*)*", re.IGNORECASE
)
_HOST_VAR_RE = re.compile(r":[A-Za-z_][\w\-]*")
_CURSOR_RE = re.compile(
    r"\bDECLARE\s+[A-Za-z_][\w\-]*\s+CURSOR\s+FOR\b", re.IGNORECASE
)
_NON_QUERY_PREFIXES = (
    "OPEN", "CLOSE", "FETCH", "COMMIT", "ROLLBACK", "WHENEVER",
    "CONNECT", "BEGIN", "END", "INCLUDE",
)


@dataclass(frozen=True)
class SQLUnit:
    """One extracted SQL statement with its provenance."""

    program: str
    index: int          # position of the statement within the program
    text: str           # normalized SQL, ready for the parser

    def __repr__(self) -> str:
        head = " ".join(self.text.split())[:60]
        return f"SQLUnit({self.program}#{self.index}: {head}...)"


def normalize_embedded(sql: str) -> str:
    """Remove host-language artifacts so the parser accepts *sql*."""
    sql = _CURSOR_RE.sub("", sql)
    sql = _INTO_CLAUSE_RE.sub("", sql)
    sql = _HOST_VAR_RE.sub(f"'{HOST_VARIABLE_MARKER}'", sql)
    # drop line comments so statement classification sees the first keyword
    # (the SQL lexer would skip them anyway, but _is_query_like must too)
    lines = [line for line in sql.splitlines() if not line.lstrip().startswith("--")]
    sql = "\n".join(lines)
    return sql.strip().rstrip(";").strip()


def _is_query_like(sql: str) -> bool:
    head = sql.lstrip().split(None, 1)
    if not head:
        return False
    first = head[0].upper()
    if first in _NON_QUERY_PREFIXES:
        return False
    # UPDATE/DELETE are kept: their WHERE clauses can hide equi-joins
    # behind IN / EXISTS subqueries
    return (
        first in ("SELECT", "INSERT", "CREATE", "DROP", "UPDATE", "DELETE")
        or first == "("
    )


def extract_sql_units(program: ApplicationProgram) -> List[SQLUnit]:
    """All SQL statements embedded in *program*, normalized.

    Plain-SQL languages are split on semicolons (respecting nothing more —
    the corpus fixtures do not put semicolons in string literals); host
    languages are scanned for ``EXEC SQL`` blocks.
    """
    units: List[SQLUnit] = []
    if program.language in ("sql", "report", "form"):
        chunks = [c.strip() for c in program.source.split(";")]
        index = 0
        for chunk in chunks:
            if not chunk:
                continue
            normalized = normalize_embedded(chunk)
            if normalized and _is_query_like(normalized):
                units.append(SQLUnit(program.name, index, normalized))
                index += 1
        return units

    if program.language == "cobol":
        blocks = _COBOL_BLOCK_RE.findall(program.source)
    else:  # c / Pro*C
        blocks = _C_BLOCK_RE.findall(program.source)

    index = 0
    for block in blocks:
        normalized = normalize_embedded(block)
        if normalized and _is_query_like(normalized):
            units.append(SQLUnit(program.name, index, normalized))
            index += 1
    return units
