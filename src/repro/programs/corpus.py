"""The application-program corpus ``P``.

A corpus is the "application part of the relational database in
operation" (§4): forms, reports and batch files in a host language with
embedded SQL, or plain SQL scripts.  The corpus only stores sources and
metadata; SQL extraction lives in :mod:`repro.programs.embedded` and
equi-join recognition in :mod:`repro.programs.extractor`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.exceptions import ExtractionError

#: languages the embedded-SQL scanner knows how to handle
LANGUAGES = ("sql", "cobol", "c", "report", "form")

_EXTENSION_LANGUAGE = {
    ".sql": "sql",
    ".cob": "cobol",
    ".cbl": "cobol",
    ".c": "c",
    ".pc": "c",       # Pro*C style
    ".rpt": "report",
    ".frm": "form",
}


@dataclass(frozen=True)
class ApplicationProgram:
    """One source file of the legacy application."""

    name: str
    language: str
    source: str

    def __post_init__(self) -> None:
        if self.language not in LANGUAGES:
            raise ExtractionError(
                f"unknown program language {self.language!r} for {self.name!r}"
            )

    @property
    def line_count(self) -> int:
        return self.source.count("\n") + 1


class ProgramCorpus:
    """An ordered collection of application programs."""

    def __init__(self, programs: Iterable[ApplicationProgram] = ()) -> None:
        self._programs: Dict[str, ApplicationProgram] = {}
        for p in programs:
            self.add(p)

    def add(self, program: ApplicationProgram) -> None:
        if program.name in self._programs:
            raise ExtractionError(f"duplicate program name {program.name!r}")
        self._programs[program.name] = program

    def add_source(self, name: str, source: str, language: Optional[str] = None) -> ApplicationProgram:
        """Add a program, inferring the language from the file extension."""
        if language is None:
            _, ext = os.path.splitext(name)
            language = _EXTENSION_LANGUAGE.get(ext.lower())
            if language is None:
                raise ExtractionError(
                    f"cannot infer language of {name!r}; pass language= explicitly"
                )
        program = ApplicationProgram(name, language, source)
        self.add(program)
        return program

    @classmethod
    def from_directory(cls, path: str) -> "ProgramCorpus":
        """Load every recognized source file under *path* (recursively)."""
        corpus = cls()
        for root, _dirs, files in os.walk(path):
            for fname in sorted(files):
                _, ext = os.path.splitext(fname)
                if ext.lower() not in _EXTENSION_LANGUAGE:
                    continue
                full = os.path.join(root, fname)
                with open(full, "r", encoding="utf-8") as handle:
                    source = handle.read()
                rel = os.path.relpath(full, path)
                corpus.add_source(rel, source)
        return corpus

    def program(self, name: str) -> ApplicationProgram:
        try:
            return self._programs[name]
        except KeyError:
            raise ExtractionError(f"no program named {name!r}") from None

    def __iter__(self) -> Iterator[ApplicationProgram]:
        return iter(sorted(self._programs.values(), key=lambda p: p.name))

    def __len__(self) -> int:
        return len(self._programs)

    def __contains__(self, name: object) -> bool:
        return name in self._programs

    @property
    def names(self) -> List[str]:
        return sorted(self._programs)

    def total_lines(self) -> int:
        return sum(p.line_count for p in self)

    def __repr__(self) -> str:
        return f"ProgramCorpus({len(self)} programs, {self.total_lines()} lines)"
