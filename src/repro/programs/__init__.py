"""Application-program analysis: from source files to the equi-join set ``Q``.

§4 of the paper assumes "the set ``Q`` of equi-join queries extracted from
the application programs ... has been computed"; this package computes it.
It models a corpus of legacy programs (plain SQL scripts, or COBOL/C hosts
with ``EXEC SQL`` blocks), pulls the SQL out, parses it with
:mod:`repro.sql`, and recognizes equi-joins written in every form the
paper lists: unnested WHERE-clause joins (single- and multi-attribute),
nested ``IN`` / ``=`` / ``EXISTS`` subqueries, and ``INTERSECT``.
"""

from repro.programs.equijoin import EquiJoin
from repro.programs.corpus import ApplicationProgram, ProgramCorpus
from repro.programs.embedded import extract_sql_units, SQLUnit
from repro.programs.extractor import (
    EquiJoinExtractor,
    ExtractionReport,
    extract_equijoins,
)

__all__ = [
    "EquiJoin",
    "ApplicationProgram",
    "ProgramCorpus",
    "extract_sql_units",
    "SQLUnit",
    "EquiJoinExtractor",
    "ExtractionReport",
    "extract_equijoins",
]
