"""The equi-join value object ``R_k[A_k] ⋈ R_l[A_l]``.

Equi-joins are symmetric: ``R[a] ⋈ S[b]`` and ``S[b] ⋈ R[a]`` are the same
element of ``Q``.  Attribute order within a side is significant only
through the pairing (position i on the left joins position i on the
right), exactly as for inclusion dependencies.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.exceptions import SchemaError
from repro.relational.attribute import AttributeRef


class EquiJoin:
    """A (symmetric) equi-join between two attribute lists."""

    __slots__ = ("left_relation", "left_attrs", "right_relation", "right_attrs")

    def __init__(
        self,
        left_relation: str,
        left_attrs: Iterable[str],
        right_relation: str,
        right_attrs: Iterable[str],
    ) -> None:
        if isinstance(left_attrs, str):
            left_attrs = (left_attrs,)
        if isinstance(right_attrs, str):
            right_attrs = (right_attrs,)
        left_attrs = tuple(left_attrs)
        right_attrs = tuple(right_attrs)
        if len(left_attrs) != len(right_attrs):
            raise SchemaError(
                f"equi-join arity mismatch: {left_attrs} vs {right_attrs}"
            )
        if not left_attrs:
            raise SchemaError("equi-join needs at least one attribute pair")
        # canonical side order: smaller (relation, attrs) first, so the
        # symmetric pairs hash identically
        left_key = (left_relation, tuple(sorted(left_attrs)))
        right_key = (right_relation, tuple(sorted(right_attrs)))
        if right_key < left_key:
            left_relation, right_relation = right_relation, left_relation
            left_attrs, right_attrs = right_attrs, left_attrs
        # canonicalize pairing order by the left attribute names
        pairs = sorted(zip(left_attrs, right_attrs))
        self.left_relation = left_relation
        self.left_attrs: Tuple[str, ...] = tuple(p[0] for p in pairs)
        self.right_relation = right_relation
        self.right_attrs: Tuple[str, ...] = tuple(p[1] for p in pairs)

    @classmethod
    def parse(cls, text: str) -> "EquiJoin":
        """Parse the paper's written form ``"R[a, b] >< S[x, y]"``.

        ``⋈`` is written ``><`` in ASCII.
        """
        if "><" not in text:
            raise SchemaError(f"not an equi-join: {text!r}")
        left, right = text.split("><", 1)

        def side(chunk: str):
            chunk = chunk.strip()
            if "[" not in chunk or not chunk.endswith("]"):
                raise SchemaError(f"malformed equi-join side: {chunk!r}")
            rel, attrs = chunk[:-1].split("[", 1)
            return rel.strip(), tuple(a.strip() for a in attrs.split(",") if a.strip())

        lrel, lattrs = side(left)
        rrel, rattrs = side(right)
        return cls(lrel, lattrs, rrel, rattrs)

    # ------------------------------------------------------------------
    def left_ref(self) -> AttributeRef:
        return AttributeRef(self.left_relation, self.left_attrs)

    def right_ref(self) -> AttributeRef:
        return AttributeRef(self.right_relation, self.right_attrs)

    def sides(self) -> Tuple[Tuple[str, Tuple[str, ...]], Tuple[str, Tuple[str, ...]]]:
        """((relation, attrs), (relation, attrs)) in canonical order."""
        return (
            (self.left_relation, self.left_attrs),
            (self.right_relation, self.right_attrs),
        )

    def is_self_join(self) -> bool:
        return self.left_relation == self.right_relation

    def involves(self, relation: str) -> bool:
        return relation in (self.left_relation, self.right_relation)

    def _canonical(self):
        return (
            self.left_relation,
            self.left_attrs,
            self.right_relation,
            self.right_attrs,
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EquiJoin):
            return other._canonical() == self._canonical()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("EquiJoin",) + self._canonical())

    def __repr__(self) -> str:
        return (
            f"{self.left_relation}[{', '.join(self.left_attrs)}] >< "
            f"{self.right_relation}[{', '.join(self.right_attrs)}]"
        )

    def sort_key(self):
        return self._canonical()
