"""Recognizing equi-joins in parsed SQL — computing the paper's set ``Q``.

§4 lists the forms an equi-join hides in: an unnested query with a
``WHERE`` clause (possibly equating several attribute pairs between the
same two relations), nested queries (``IN`` / scalar ``=`` / correlated
``EXISTS``), and the ``INTERSECT`` operator.  The extractor handles all of
them, resolves aliases and unqualified column names against the database
schema, and aggregates multiple attribute equalities between the same two
table bindings into one multi-attribute equi-join — exactly the
``A_k = {a_i1 .. a_in}`` construction in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SQLError
from repro.programs.corpus import ApplicationProgram, ProgramCorpus
from repro.programs.embedded import SQLUnit, extract_sql_units
from repro.programs.equijoin import EquiJoin
from repro.relational.schema import DatabaseSchema
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_sql

# a scope frame: binding name -> relation name (innermost last in the chain)
Scope = Tuple[Dict[str, str], ...]


@dataclass(frozen=True)
class ResolvedColumn:
    """A column reference resolved to its binding and base relation."""

    binding: str
    relation: str
    attribute: str


@dataclass
class ExtractionReport:
    """Everything an extraction run learned, with provenance.

    ``joins`` is the deduplicated, deterministic set ``Q``;
    ``provenance`` maps each join to the (program, statement-index) pairs
    it was seen in; ``skipped`` lists statements the parser rejected;
    ``warnings`` records unresolvable or ambiguous column references.
    """

    joins: List[EquiJoin] = field(default_factory=list)
    provenance: Dict[EquiJoin, List[Tuple[str, int]]] = field(default_factory=dict)
    skipped: List[Tuple[str, int, str]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    statements_seen: int = 0

    def record(self, join: EquiJoin, program: str, index: int) -> None:
        if join not in self.provenance:
            self.provenance[join] = []
            self.joins.append(join)
            self.joins.sort(key=lambda j: j.sort_key())
        self.provenance[join].append((program, index))

    def __repr__(self) -> str:
        return (
            f"ExtractionReport({len(self.joins)} joins from "
            f"{self.statements_seen} statements, {len(self.skipped)} skipped)"
        )


class EquiJoinExtractor:
    """Extracts the set ``Q`` from statements, programs or whole corpora."""

    def __init__(self, schema: Optional[DatabaseSchema] = None) -> None:
        self.schema = schema

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def extract_from_corpus(self, corpus: ProgramCorpus) -> ExtractionReport:
        report = ExtractionReport()
        for program in corpus:
            self._extract_program(program, report)
        return report

    def extract_from_program(self, program: ApplicationProgram) -> ExtractionReport:
        report = ExtractionReport()
        self._extract_program(program, report)
        return report

    def extract_from_sql(self, sql: str, program: str = "<inline>") -> List[EquiJoin]:
        report = ExtractionReport()
        self._extract_unit(SQLUnit(program, 0, sql), report)
        return report.joins

    # ------------------------------------------------------------------
    def _extract_program(self, program: ApplicationProgram, report: ExtractionReport) -> None:
        for unit in extract_sql_units(program):
            self._extract_unit(unit, report)

    def _extract_unit(self, unit: SQLUnit, report: ExtractionReport) -> None:
        report.statements_seen += 1
        try:
            statement = parse_sql(unit.text)
        except SQLError as exc:
            report.skipped.append((unit.program, unit.index, str(exc)))
            return
        for join in self.extract_from_statement(statement, report):
            report.record(join, unit.program, unit.index)

    def extract_from_statement(
        self, statement: ast.Statement, report: Optional[ExtractionReport] = None
    ) -> List[EquiJoin]:
        """All equi-joins in one statement (deduplicated, ordered)."""
        report = report if report is not None else ExtractionReport()
        joins: List[EquiJoin] = []
        if isinstance(statement, ast.Select):
            self._walk_select(statement, (), joins, report)
        elif isinstance(statement, ast.Intersect):
            self._walk_intersect(statement, joins, report)
        elif isinstance(statement, ast.Union):
            # a UNION is not itself a join, but each branch may contain some
            for query in statement.queries:
                self._walk_select(query, (), joins, report)
        elif isinstance(statement, (ast.Update, ast.Delete)):
            self._walk_dml(statement, joins, report)
        seen = []
        for j in joins:
            if j not in seen:
                seen.append(j)
        return sorted(seen, key=lambda j: j.sort_key())

    # ------------------------------------------------------------------
    # SELECT traversal
    # ------------------------------------------------------------------
    def _walk_select(
        self,
        select: ast.Select,
        outer: Scope,
        joins: List[EquiJoin],
        report: ExtractionReport,
    ) -> None:
        frame: Dict[str, str] = {}
        for ref in select.tables:
            frame[ref.binding] = ref.name
        for join in select.joins:
            frame[join.table.binding] = join.table.name
        scope: Scope = outer + (frame,)

        predicates: List[ast.Predicate] = []
        if select.where is not None:
            predicates.append(select.where)
        for join in select.joins:
            if join.condition is not None:
                predicates.append(join.condition)

        equalities: List[Tuple[ResolvedColumn, ResolvedColumn]] = []
        for pred in predicates:
            self._collect(pred, scope, equalities, joins, report)

        self._emit_grouped(equalities, joins)

    def _walk_dml(
        self,
        statement,
        joins: List[EquiJoin],
        report: ExtractionReport,
    ) -> None:
        """UPDATE/DELETE: the WHERE clause navigates like a SELECT's."""
        if statement.where is None:
            return
        scope: Scope = ({statement.table: statement.table},)
        equalities: List[Tuple[ResolvedColumn, ResolvedColumn]] = []
        self._collect(statement.where, scope, equalities, joins, report)
        self._emit_grouped(equalities, joins)

    def _walk_intersect(
        self, stmt: ast.Intersect, joins: List[EquiJoin], report: ExtractionReport
    ) -> None:
        """``SELECT a FROM R INTERSECT SELECT b FROM S`` joins R[a] with S[b]."""
        sides: List[Optional[Tuple[str, Tuple[str, ...]]]] = []
        for query in stmt.queries:
            self._walk_select(query, (), joins, report)
            sides.append(self._intersect_side(query, report))
        for i in range(len(sides) - 1):
            left, right = sides[i], sides[i + 1]
            if left is None or right is None:
                continue
            if len(left[1]) != len(right[1]):
                report.warnings.append(
                    "INTERSECT sides differ in arity; skipped"
                )
                continue
            if left[0] == right[0] and left[1] == right[1]:
                continue  # same projection both sides: no interrelation
            joins.append(EquiJoin(left[0], left[1], right[0], right[1]))

    def _intersect_side(
        self, query: ast.Select, report: ExtractionReport
    ) -> Optional[Tuple[str, Tuple[str, ...]]]:
        """Resolve one INTERSECT operand to (relation, attributes).

        Only single-relation projections of plain columns qualify; anything
        else cannot be read as a side of an equi-join.
        """
        frame: Dict[str, str] = {ref.binding: ref.name for ref in query.tables}
        for join in query.joins:
            frame[join.table.binding] = join.table.name
        scope: Scope = (frame,)
        resolved: List[ResolvedColumn] = []
        for item in query.items:
            if not isinstance(item, ast.ColumnRef):
                return None
            col = self._resolve(item, scope, report)
            if col is None:
                return None
            resolved.append(col)
        relations = {c.relation for c in resolved}
        bindings = {c.binding for c in resolved}
        if len(relations) != 1 or len(bindings) != 1:
            report.warnings.append(
                "INTERSECT side projects several relations; skipped"
            )
            return None
        return resolved[0].relation, tuple(c.attribute for c in resolved)

    # ------------------------------------------------------------------
    # predicate traversal
    # ------------------------------------------------------------------
    def _collect(
        self,
        pred: ast.Predicate,
        scope: Scope,
        equalities: List[Tuple[ResolvedColumn, ResolvedColumn]],
        joins: List[EquiJoin],
        report: ExtractionReport,
    ) -> None:
        if isinstance(pred, ast.And):
            for p in pred.operands:
                self._collect(p, scope, equalities, joins, report)
            return
        if isinstance(pred, ast.Or):
            # A join under OR is still navigation evidence; each branch is
            # collected independently (it cannot merge with conjunct
            # equalities into a multi-attribute join, so branches emit
            # directly).
            for p in pred.operands:
                branch: List[Tuple[ResolvedColumn, ResolvedColumn]] = []
                self._collect(p, scope, branch, joins, report)
                self._emit_grouped(branch, joins)
            return
        if isinstance(pred, ast.Not):
            # negated equality is not a join
            return
        if isinstance(pred, ast.Comparison):
            if pred.is_column_equality():
                left = self._resolve(pred.left, scope, report)   # type: ignore[arg-type]
                right = self._resolve(pred.right, scope, report)  # type: ignore[arg-type]
                if left is None or right is None:
                    return
                if left.binding == right.binding:
                    return  # intra-tuple comparison, not a join
                equalities.append((left, right))
            return
        if isinstance(pred, ast.InSubquery):
            if not pred.negated:
                self._subquery_join(pred.expr, pred.query, scope, joins, report)
            self._walk_select(pred.query, scope, joins, report)
            return
        if isinstance(pred, ast.CompareSubquery):
            if pred.op == "=":
                self._subquery_join(pred.expr, pred.query, scope, joins, report)
            self._walk_select(pred.query, scope, joins, report)
            return
        if isinstance(pred, ast.ExistsSubquery):
            # correlated equalities inside the subquery surface as joins
            # when the subquery is walked with the chained scope
            if not pred.negated:
                self._walk_select(pred.query, scope, joins, report)
            return
        # IsNull and other predicates carry no join information

    def _subquery_join(
        self,
        outer_expr: ast.Expr,
        query: ast.Select,
        scope: Scope,
        joins: List[EquiJoin],
        report: ExtractionReport,
    ) -> None:
        """``outer IN (SELECT inner FROM ...)`` joins outer with inner."""
        if not isinstance(outer_expr, ast.ColumnRef):
            return
        outer_col = self._resolve(outer_expr, scope, report)
        if outer_col is None:
            return
        if len(query.items) != 1 or not isinstance(query.items[0], ast.ColumnRef):
            return
        frame: Dict[str, str] = {ref.binding: ref.name for ref in query.tables}
        for join in query.joins:
            frame[join.table.binding] = join.table.name
        inner_scope: Scope = scope + (frame,)
        inner_col = self._resolve(query.items[0], inner_scope, report)
        if inner_col is None:
            return
        # same binding name AND same relation: the alias was not shadowed,
        # so this is a same-tuple reference, not a join.  A subquery alias
        # shadowing an outer one (same name, different relation) IS a join.
        if (
            inner_col.binding == outer_col.binding
            and inner_col.relation == outer_col.relation
        ):
            return
        joins.append(
            EquiJoin(
                outer_col.relation,
                (outer_col.attribute,),
                inner_col.relation,
                (inner_col.attribute,),
            )
        )

    # ------------------------------------------------------------------
    # column resolution
    # ------------------------------------------------------------------
    def _resolve(
        self, col: ast.ColumnRef, scope: Scope, report: ExtractionReport
    ) -> Optional[ResolvedColumn]:
        if col.qualifier is not None:
            for frame in reversed(scope):
                if col.qualifier in frame:
                    return ResolvedColumn(col.qualifier, frame[col.qualifier], col.name)
            report.warnings.append(f"unknown table or alias {col.qualifier!r}")
            return None
        # unqualified: need the schema to find the owning relation; search
        # innermost frame outward, taking the unique owner per frame
        if self.schema is None:
            report.warnings.append(
                f"cannot resolve unqualified column {col.name!r} without a schema"
            )
            return None
        for frame in reversed(scope):
            owners = [
                (binding, relation)
                for binding, relation in frame.items()
                if relation in self.schema
                and self.schema.relation(relation).has_attribute(col.name)
            ]
            if len(owners) == 1:
                binding, relation = owners[0]
                return ResolvedColumn(binding, relation, col.name)
            if len(owners) > 1:
                report.warnings.append(
                    f"ambiguous column {col.name!r} among {sorted(o[0] for o in owners)}"
                )
                return None
        report.warnings.append(f"column {col.name!r} not found in any scope")
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _emit_grouped(
        equalities: Sequence[Tuple[ResolvedColumn, ResolvedColumn]],
        joins: List[EquiJoin],
    ) -> None:
        """Merge equalities between the same binding pair into one join."""
        grouped: Dict[Tuple[str, str], List[Tuple[ResolvedColumn, ResolvedColumn]]] = {}
        for left, right in equalities:
            if (right.binding, left.binding) in grouped:
                grouped[(right.binding, left.binding)].append((right, left))
            else:
                grouped.setdefault((left.binding, right.binding), []).append((left, right))
        for pairs in grouped.values():
            lefts = tuple(dict.fromkeys(p[0].attribute for p in pairs))
            rights = tuple(dict.fromkeys(p[1].attribute for p in pairs))
            if len(lefts) != len(rights):
                # duplicate-attribute pathologies: fall back to unary joins
                for left, right in pairs:
                    joins.append(
                        EquiJoin(
                            left.relation, (left.attribute,),
                            right.relation, (right.attribute,),
                        )
                    )
                continue
            joins.append(
                EquiJoin(pairs[0][0].relation, lefts, pairs[0][1].relation, rights)
            )


def extract_equijoins(
    corpus: ProgramCorpus, schema: Optional[DatabaseSchema] = None
) -> ExtractionReport:
    """One-shot convenience: the set ``Q`` of *corpus* under *schema*."""
    return EquiJoinExtractor(schema).extract_from_corpus(corpus)
