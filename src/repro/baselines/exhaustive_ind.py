"""Exhaustive unary IND discovery — the no-workload baseline (S1).

Without a query workload, IND candidates are *every* ordered pair of
type-compatible attributes; with the paper's workload analysis they are
only the attribute pairs programs actually join.  This baseline runs the
exhaustive search and reports both what it found and what it cost, so
the S1 benchmark can put the two candidate-space sizes side by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

from repro.dependencies.discovery import (
    count_unary_candidates,
    discover_unary_inds,
)
from repro.dependencies.ind import InclusionDependency
from repro.relational.database import Database


@dataclass
class ExhaustiveINDResult:
    """Findings + cost of one exhaustive run."""

    inds: List[InclusionDependency] = field(default_factory=list)
    candidates_examined: int = 0
    elapsed_seconds: float = 0.0

    def __repr__(self) -> str:
        return (
            f"ExhaustiveINDResult({len(self.inds)} INDs from "
            f"{self.candidates_examined} candidates, "
            f"{self.elapsed_seconds * 1000:.1f} ms)"
        )


class ExhaustiveINDBaseline:
    """Test every type-compatible attribute pair against the extension."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def candidate_count(self) -> int:
        """Size of the search space, without running it."""
        return count_unary_candidates(self.database)

    def run(self, require_nonempty: bool = True) -> ExhaustiveINDResult:
        start = time.perf_counter()
        inds = discover_unary_inds(
            self.database, require_nonempty=require_nonempty
        )
        elapsed = time.perf_counter() - start
        return ExhaustiveINDResult(
            inds=inds,
            candidates_examined=self.candidate_count(),
            elapsed_seconds=elapsed,
        )
