"""All-constraints-known DBRE — the Shoval-Shreiber school.

The other school the paper contrasts with assumes every dependency is
available up front ("with all the needed constraints at hand") and only
performs the structural transformation.  This baseline takes ground
truth dependencies directly and runs the same Restruct + Translate tail
as the paper's method — isolating the *elicitation* contribution: any
gap between the two pipelines on a given scenario is attributable to
what elicitation failed to recover, and the baseline's requirement
(perfect a-priori knowledge) is exactly what legacy systems lack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.expert import Expert
from repro.core.restruct import Restruct, RestructResult
from repro.core.translate import Translate
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.eer.model import EERSchema
from repro.relational.attribute import AttributeRef
from repro.relational.database import Database


@dataclass
class KnownConstraintsOutcome:
    restruct: RestructResult
    eer: EERSchema


class KnownConstraintsBaseline:
    """Restruct + Translate fed with ground-truth dependencies."""

    def __init__(self, database: Database, expert: Optional[Expert] = None) -> None:
        self.database = database
        self.expert = expert

    def run(
        self,
        fds: Sequence[FunctionalDependency],
        hidden: Sequence[AttributeRef],
        inds: Sequence[InclusionDependency],
    ) -> KnownConstraintsOutcome:
        working = self.database.copy()
        restruct = Restruct(working, self.expert).run(fds, hidden, inds)
        eer = Translate(working.schema).run(restruct.ric)
        return KnownConstraintsOutcome(restruct, eer)
