"""Baselines the paper's method is measured against.

- :mod:`repro.baselines.exhaustive_ind` — unary IND discovery by testing
  every type-compatible attribute pair (de Marchi-style), the
  no-workload alternative to query-guided IND-Discovery (S1);
- :mod:`repro.baselines.naive_fd` — full lattice FD discovery per
  relation, the alternative to RHS-Discovery's candidate narrowing (S2);
- :mod:`repro.baselines.naming_dbre` — the naming-convention school of
  DBRE (Chiang-Barron-Storey style): foreign keys found by attribute
  name equality, no extension or workload needed;
- :mod:`repro.baselines.known_constraints` — the all-constraints-known
  school (Shoval-Shreiber style): assumes the true dependencies are
  handed over and only performs the restructuring.
"""

from repro.baselines.exhaustive_ind import ExhaustiveINDBaseline, ExhaustiveINDResult
from repro.baselines.naive_fd import NaiveFDBaseline, NaiveFDResult
from repro.baselines.naming_dbre import NamingConventionBaseline
from repro.baselines.known_constraints import KnownConstraintsBaseline

__all__ = [
    "ExhaustiveINDBaseline",
    "ExhaustiveINDResult",
    "NaiveFDBaseline",
    "NaiveFDResult",
    "NamingConventionBaseline",
    "KnownConstraintsBaseline",
]
