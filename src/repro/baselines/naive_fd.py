"""Full lattice FD discovery — the no-narrowing baseline (S2).

RHS-Discovery only tests dependencies whose left-hand side an equi-join
pointed at, and prunes the right-hand candidates with the key and
not-null rules.  The alternative is classical FD discovery: search the
whole LHS lattice of every relation.  This baseline does that (via the
TANE-lite search in :mod:`repro.dependencies.discovery`) and reports
candidate counts, so S2 can show the narrowing factor — and the
*selectivity* point of §5: exhaustive discovery surfaces dependencies
like ``zip-code -> state`` that are integrity constraints, not design
semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dependencies.discovery import count_fd_candidates, discover_fds
from repro.dependencies.fd import FunctionalDependency
from repro.relational.database import Database


@dataclass
class NaiveFDResult:
    """Findings + cost of a full-lattice run."""

    fds: List[FunctionalDependency] = field(default_factory=list)
    candidates_examined: int = 0
    elapsed_seconds: float = 0.0
    per_relation: Dict[str, int] = field(default_factory=dict)

    def non_key_fds(self, database: Database) -> List[FunctionalDependency]:
        """Discovered FDs whose LHS is not a declared key (the ones a
        DBRE process would have to triage)."""
        out = []
        for fd in self.fds:
            relation = database.schema.relation(fd.relation)
            if not relation.is_key(tuple(fd.lhs)):
                out.append(fd)
        return out

    def __repr__(self) -> str:
        return (
            f"NaiveFDResult({len(self.fds)} FDs from "
            f"{self.candidates_examined} candidates, "
            f"{self.elapsed_seconds * 1000:.1f} ms)"
        )


class NaiveFDBaseline:
    """Level-wise FD search over every relation of the database."""

    def __init__(self, database: Database, max_lhs_size: int = 2) -> None:
        self.database = database
        self.max_lhs_size = max_lhs_size

    def run(self, relations: Optional[Sequence[str]] = None) -> NaiveFDResult:
        result = NaiveFDResult()
        names = list(relations or self.database.schema.relation_names)
        start = time.perf_counter()
        for name in names:
            table = self.database.table(name)
            n_attrs = len(table.schema.attribute_names)
            found = discover_fds(table, max_lhs_size=self.max_lhs_size)
            result.fds.extend(found)
            count = count_fd_candidates(n_attrs, self.max_lhs_size)
            result.per_relation[name] = count
            result.candidates_examined += count
        result.elapsed_seconds = time.perf_counter() - start
        result.fds.sort(key=lambda f: f.sort_key())
        return result
