"""Naming-convention DBRE — the Chiang-Barron-Storey school.

Earlier relational DBRE methods assume "a consistent naming of key
attributes": a foreign key is any non-key attribute carrying the same
name as some relation's key attribute.  The paper explicitly drops that
assumption ("without any restriction on the naming of attributes").
This baseline implements the convention so benchmarks can show where it
breaks: schemas like the §5 example, where ``HEmployee.no`` references
``Person.id`` under a different name, are invisible to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dependencies.ind import InclusionDependency
from repro.relational.schema import DatabaseSchema


@dataclass
class NamingConventionResult:
    """Foreign keys proposed by name matching only."""

    inds: List[InclusionDependency] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"NamingConventionResult({len(self.inds)} INDs)"


class NamingConventionBaseline:
    """Propose ``R[a] ≪ S[a]`` whenever a non-key ``R.a`` shares the name
    of a single-attribute key ``S.a``.

    Purely syntactic: no extension access, no programs — and therefore no
    way to see renamed references or identifiers that are not keys
    anywhere (the paper's hidden objects).
    """

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema

    def run(self) -> NamingConventionResult:
        result = NamingConventionResult()
        # single-attribute keys by attribute name
        key_owners: Dict[str, List[str]] = {}
        for relation in self.schema:
            for unique in relation.uniques:
                names = tuple(unique.attributes)
                if len(names) == 1:
                    key_owners.setdefault(names[0], []).append(relation.name)

        for relation in self.schema:
            key_attrs = {a for u in relation.uniques for a in u.attributes}
            for attr in relation.attribute_names:
                if attr in key_attrs:
                    continue
                for owner in key_owners.get(attr, []):
                    if owner == relation.name:
                        continue
                    result.inds.append(
                        InclusionDependency(
                            relation.name, (attr,), owner, (attr,)
                        )
                    )
        result.inds.sort(key=lambda i: i.sort_key())
        return result
