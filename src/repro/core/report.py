"""Human-readable session reports of a reverse-engineering run.

A DBRE run is an audit exercise: the practitioner needs to defend every
elicited dependency and every schema change in front of the application
owners.  This module renders a :class:`~repro.core.pipeline.PipelineResult`
(plus the recording expert's log) into a structured Markdown document:
inputs, each algorithm's findings with provenance, the expert's
decisions, the restructured schema, and the conceptual schema.
"""

from __future__ import annotations

from typing import Optional

from repro.core.expert import RecordingExpert
from repro.core.pipeline import PipelineResult
from repro.eer.render import render_text
from repro.util.text import format_table


class SessionReport:
    """Builds the Markdown report for one pipeline run."""

    def __init__(
        self,
        result: PipelineResult,
        expert: Optional[RecordingExpert] = None,
        title: str = "Database reverse-engineering session",
    ) -> None:
        self.result = result
        self.expert = expert
        self.title = title

    # ------------------------------------------------------------------
    def to_markdown(self) -> str:
        sections = [
            self._header(),
            self._inputs(),
            self._equijoins(),
            self._ind_section(),
            self._fd_section(),
            self._restruct_section(),
            self._eer_section(),
            self._expert_section(),
            self._cost_section(),
        ]
        return "\n\n".join(s for s in sections if s)

    # ------------------------------------------------------------------
    def _header(self) -> str:
        return f"# {self.title}"

    def _inputs(self) -> str:
        lines = ["## Inputs", ""]
        lines.append("Declared keys (`K`):")
        for ref in self.result.key_set:
            lines.append(f"- `{ref!r}`")
        lines.append("")
        lines.append("Not-null attributes (`N`):")
        for ref in self.result.not_null_set:
            lines.append(f"- `{ref!r}`")
        return "\n".join(lines)

    def _equijoins(self) -> str:
        lines = ["## Equi-joins extracted from the application programs (`Q`)", ""]
        if not self.result.equijoins:
            lines.append("*(none — the programs perform no joins)*")
            return "\n".join(lines)
        extraction = self.result.extraction
        for join in self.result.equijoins:
            if extraction is not None and join in extraction.provenance:
                programs = sorted(
                    {p for p, _ in extraction.provenance[join]}
                )
                lines.append(f"- `{join!r}` — seen in {', '.join(programs)}")
            else:
                lines.append(f"- `{join!r}`")
        if extraction is not None and extraction.skipped:
            lines.append("")
            lines.append(
                f"{len(extraction.skipped)} statement(s) could not be "
                f"parsed and were skipped:"
            )
            for program, index, reason in extraction.skipped:
                lines.append(f"- {program}#{index}: {reason}")
        if extraction is not None and extraction.warnings:
            lines.append("")
            lines.append("Resolution warnings:")
            for warning in sorted(set(extraction.warnings)):
                lines.append(f"- {warning}")
        return "\n".join(lines)

    def _ind_section(self) -> str:
        ind_result = self.result.ind_result
        if ind_result is None:
            return ""
        lines = ["## Inclusion dependencies (IND-Discovery, §6.1)", ""]
        rows = []
        for outcome in ind_result.outcomes:
            elicited = "; ".join(repr(i) for i in outcome.elicited) or "—"
            rows.append(
                [
                    repr(outcome.join),
                    outcome.n_left,
                    outcome.n_right,
                    outcome.n_common,
                    outcome.case + (f" ({outcome.decision})" if outcome.decision else ""),
                    elicited,
                ]
            )
        lines.append("```")
        lines.append(
            format_table(
                ["equi-join", "N_k", "N_l", "N_kl", "case", "elicited"], rows
            )
        )
        lines.append("```")
        if ind_result.new_relations:
            lines.append("")
            lines.append("Conceptualized intersections (`S`):")
            for relation in ind_result.new_relations:
                lines.append(f"- `{relation!r}`")
        return "\n".join(lines)

    def _fd_section(self) -> str:
        rhs = self.result.rhs_result
        lhs = self.result.lhs_result
        if rhs is None or lhs is None:
            return ""
        lines = ["## Functional dependencies (LHS/RHS-Discovery, §6.2)", ""]
        lines.append(
            f"Candidate identifiers (`LHS`): "
            + (", ".join(f"`{r!r}`" for r in lhs.lhs) or "*(none)*")
        )
        lines.append("")
        rows = []
        for outcome in rhs.outcomes:
            rows.append(
                [
                    repr(outcome.ref),
                    ", ".join(outcome.pruned_keys) or "—",
                    ", ".join(outcome.pruned_not_null) or "—",
                    ", ".join(outcome.candidates) or "—",
                    ", ".join(outcome.accepted) or "—",
                    outcome.action,
                ]
            )
        lines.append("```")
        lines.append(
            format_table(
                [
                    "identifier", "pruned (key)", "pruned (not null)",
                    "tested", "accepted", "outcome",
                ],
                rows,
            )
        )
        lines.append("```")
        lines.append("")
        lines.append("Elicited dependencies (`F`):")
        for fd in rhs.fds:
            lines.append(f"- `{fd!r}`")
        if rhs.hidden:
            lines.append("")
            lines.append("Hidden objects (`H`):")
            for ref in rhs.hidden:
                lines.append(f"- `{ref!r}`")
        return "\n".join(lines)

    def _restruct_section(self) -> str:
        restruct = self.result.restruct_result
        if restruct is None:
            return ""
        lines = ["## Restructured schema (Restruct, §7)", ""]
        for relation in restruct.database.schema:
            lines.append(f"- `{relation!r}`")
        if restruct.added:
            lines.append("")
            lines.append("Relations created:")
            for added in restruct.added:
                lines.append(
                    f"- `{added.name}` ({added.kind}, from `{added.source}`, "
                    f"attributes {', '.join(added.attributes)})"
                )
        if restruct.certificates:
            lines.append("")
            lines.append(
                "Decomposition certificates (`repro/normalization@1`, "
                "re-checkable with `verify_certificate()`):"
            )
            for certificate in restruct.certificates:
                fragments = ", ".join(
                    f"`{scheme.name}` [{scheme.normal_form}]"
                    for scheme in certificate.relations
                )
                verdict = "lossless" if certificate.lossless else "LOSSY"
                if certificate.repaired:
                    verdict += " after repair"
                lines.append(
                    f"- `{certificate.source}` -> {fragments} — {verdict}, "
                    f"{len(certificate.preserved)} dependency(ies) preserved, "
                    f"{len(certificate.lost)} lost"
                )
        lines.append("")
        lines.append("Referential integrity constraints (`RIC`):")
        for ind in restruct.ric:
            lines.append(f"- `{ind!r}`")
        if restruct.warnings:
            lines.append("")
            lines.append("Warnings:")
            for warning in restruct.warnings:
                lines.append(f"- {warning}")
        return "\n".join(lines)

    def _eer_section(self) -> str:
        if self.result.eer is None:
            return ""
        lines = ["## Conceptual schema (Translate, §7)", "", "```"]
        lines.append(render_text(self.result.eer))
        lines.append("```")
        if self.result.translation_notes:
            lines.append("")
            lines.append("Classification notes:")
            for note in self.result.translation_notes:
                lines.append(f"- {note}")
        if self.result.translation_warnings:
            lines.append("")
            lines.append("Warnings:")
            for warning in self.result.translation_warnings:
                lines.append(f"- {warning}")
        return "\n".join(lines)

    def _expert_section(self) -> str:
        if self.expert is None or not self.expert.log:
            return ""
        lines = ["## Expert decisions", ""]
        rows = [
            [i.kind, i.question, i.answer] for i in self.expert.log
        ]
        lines.append("```")
        lines.append(format_table(["kind", "question", "answer"], rows))
        lines.append("```")
        return "\n".join(lines)

    def _cost_section(self) -> str:
        return "\n".join(
            [
                "## Costs",
                "",
                f"- extension queries: {self.result.extension_queries}",
                f"- expert decisions: {self.result.expert_decisions}",
            ]
        )


def session_report(
    result: PipelineResult,
    expert: Optional[RecordingExpert] = None,
    title: str = "Database reverse-engineering session",
) -> str:
    """One-shot convenience: the Markdown report of *result*."""
    return SessionReport(result, expert, title).to_markdown()
