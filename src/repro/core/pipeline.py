"""The end-to-end DBRE pipeline.

Chains the paper's steps against one database:

1. compute ``K`` and ``N`` from the data dictionary (§4);
2. extract ``Q`` from the application programs (§4 — optional: a caller
   may supply ``Q`` directly, as the paper assumes);
3. IND-Discovery (§6.1) — ``IND`` and ``S``;
4. LHS-Discovery (§6.2.1) — ``LHS`` and ``H``;
5. RHS-Discovery (§6.2.2) — ``F`` and final ``H``;
6. Restruct (§7) — the 3NF schema, ``K`` and ``RIC``;
7. Translate (§7) — the EER schema.

The pipeline mutates a *copy* of the database (Restruct adds and narrows
relations); the original stays untouched.  Every intermediate set is kept
on the :class:`PipelineResult` so callers (and the benchmarks) can audit
each step against the paper.

The run is traced: the pipeline opens one root ``pipeline`` span and one
``phase`` span per algorithm on its :class:`~repro.obs.tracer.Tracer`,
and shares that tracer with the working database copy, so every
extension-primitive event lands inside the phase that issued it.
``result.trace`` exposes the tracer; :mod:`repro.obs.export` turns it
into JSONL traces and metrics summaries.

``engine="batched"`` routes IND- and RHS-Discovery through one shared
:class:`~repro.engine.executor.BatchExecutor`: each phase submits its
probes declaratively, the planner dedupes and groups them, and the
backend answers them in as few passes as it supports (grouped SQL
pushdown, worker threads, or the serial fallback).  The default
``serial`` mode keeps the original call-at-a-time behavior; both modes
produce identical results and identical per-probe trace events — only
``result.engine_stats`` (and the wall clock) tell them apart.

``engine="process"`` goes one step further: the executor ships probe
chunks to a :class:`~repro.service.pool.ProcessProbeExecutor`, a pool
of worker processes that each rebuild the extension on a private
backend instance from a payload snapshot taken before discovery starts
(sound because only IND- and RHS-Discovery probe, and Restruct — the
mutating phase — runs after both).  Results and telemetry merge back
deterministically; a pool that fails past its bounded retries degrades
to the serial path mid-run.  Output stays bit-identical to serial on
every backend — the differential suite proves it.

A pipeline built with a ``cancel`` hook (the job manager's mid-run
cancellation path) checks it between phases and raises
:class:`~repro.exceptions.RunCancelled` when it reports True.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exceptions import RunCancelled

from repro.core.expert import Expert, RecordingExpert
from repro.core.ind_discovery import INDDiscovery, INDDiscoveryResult
from repro.core.lhs_discovery import LHSDiscovery, LHSDiscoveryResult
from repro.core.restruct import Restruct, RestructResult
from repro.core.rhs_discovery import RHSDiscovery, RHSDiscoveryResult
from repro.core.translate import Translate
from repro.eer.model import EERSchema
from repro.engine.executor import BatchExecutor, EngineStats
from repro.obs.log import get_logger, log_context, new_run_id
from repro.obs.provenance import ProvenanceLedger
from repro.obs.tracer import Tracer
from repro.programs.corpus import ProgramCorpus
from repro.programs.equijoin import EquiJoin
from repro.programs.extractor import EquiJoinExtractor, ExtractionReport
from repro.relational.attribute import AttributeRef
from repro.relational.database import Database

log = get_logger("pipeline")


@dataclass
class PipelineResult:
    """Every artifact of one reverse-engineering run."""

    key_set: List[AttributeRef] = field(default_factory=list)           # K
    not_null_set: List[AttributeRef] = field(default_factory=list)      # N
    equijoins: List[EquiJoin] = field(default_factory=list)             # Q
    extraction: Optional[ExtractionReport] = None
    ind_result: Optional[INDDiscoveryResult] = None
    lhs_result: Optional[LHSDiscoveryResult] = None
    rhs_result: Optional[RHSDiscoveryResult] = None
    restruct_result: Optional[RestructResult] = None
    eer: Optional[EERSchema] = None
    translation_notes: List[str] = field(default_factory=list)
    translation_warnings: List[str] = field(default_factory=list)
    expert_decisions: int = 0
    extension_queries: int = 0
    run_id: Optional[str] = None
    trace: Optional[Tracer] = None
    engine: str = "serial"
    engine_stats: Optional[EngineStats] = None
    provenance: Optional[ProvenanceLedger] = None

    # convenient views -------------------------------------------------
    @property
    def inds(self):
        return self.ind_result.inds if self.ind_result else []

    @property
    def fds(self):
        return self.rhs_result.fds if self.rhs_result else []

    @property
    def hidden(self):
        return self.rhs_result.hidden if self.rhs_result else []

    @property
    def ric(self):
        return self.restruct_result.ric if self.restruct_result else []

    @property
    def certificates(self):
        return self.restruct_result.certificates if self.restruct_result else []

    @property
    def restructured(self) -> Optional[Database]:
        return self.restruct_result.database if self.restruct_result else None

    def __repr__(self) -> str:
        return (
            f"PipelineResult(|Q|={len(self.equijoins)}, |IND|={len(self.inds)}, "
            f"|F|={len(self.fds)}, |H|={len(self.hidden)}, "
            f"|RIC|={len(self.ric)})"
        )


class DBREPipeline:
    """Orchestrates the full method over one database + program corpus."""

    #: recognized values of the *engine* switch
    ENGINE_MODES = ("serial", "batched", "process")

    def __init__(
        self,
        database: Database,
        expert: Optional[Expert] = None,
        tracer: Optional[Tracer] = None,
        engine: str = "serial",
        engine_workers: int = 0,
        engine_options: Optional[Dict[str, Any]] = None,
        provenance: bool = True,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> None:
        if engine not in self.ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {engine!r}; pick one of {self.ENGINE_MODES}"
            )
        self.original = database
        self.tracer = tracer if tracer is not None else Tracer()
        # the ledger is pure bookkeeping over counts the phases already
        # computed — it issues no extension query, so it is on by default
        self.ledger = ProvenanceLedger(self.tracer) if provenance else None
        self.expert = RecordingExpert(expert or Expert(), ledger=self.ledger)
        self.engine_mode = engine
        self.engine_workers = engine_workers
        #: process-mode knobs forwarded to the pool: ``batch_timeout``,
        #: ``max_retries``, ``mp_context``, ``backend_options``, ``fault``
        self.engine_options = dict(engine_options or {})
        self._cancel = cancel

    def run(
        self,
        corpus: Optional[ProgramCorpus] = None,
        equijoins: Optional[Sequence[EquiJoin]] = None,
        translate: bool = True,
    ) -> PipelineResult:
        """Run the whole method.

        Exactly one of *corpus* (programs to analyze) or *equijoins*
        (a precomputed ``Q``, as §4 assumes) must be provided.
        """
        if (corpus is None) == (equijoins is None):
            raise ValueError("provide exactly one of corpus= or equijoins=")

        result = PipelineResult()
        result.trace = self.tracer
        result.engine = self.engine_mode
        result.provenance = self.ledger
        result.run_id = new_run_id()
        with log_context(run=result.run_id), \
                self.tracer.span("pipeline", kind="pipeline") as root:
            root.attributes["engine"] = self.engine_mode
            database = self.original.copy(tracer=self.tracer)
            database.counter.reset()

            # one executor is shared by every batching phase, so its
            # stats describe the whole run
            engine: Optional[BatchExecutor] = None
            pool = None
            if self.engine_mode == "batched":
                engine = BatchExecutor(database, max_workers=self.engine_workers)
                result.engine_stats = engine.stats
            elif self.engine_mode == "process":
                # lazy import: the service layer depends on the engine,
                # so the pipeline must not import it at module scope
                from repro.service.pool import ProcessProbeExecutor, worker_payload

                # the snapshot is taken before discovery starts; it stays
                # valid for the whole probing lifetime because only IND-
                # and RHS-Discovery probe, and Restruct mutates after both
                options = dict(self.engine_options)
                payload = worker_payload(
                    database,
                    options=options.pop("backend_options", None),
                    fault=options.pop("fault", None),
                )
                pool = ProcessProbeExecutor(
                    payload, workers=self.engine_workers or 2,
                    notify=self.tracer.pool_event, **options
                )
                engine = BatchExecutor(database, pool=pool)
                result.engine_stats = engine.stats
                root.attributes["workers"] = pool.workers

            try:
                # §4: the dictionary-derived sets
                result.key_set = database.schema.key_set()
                result.not_null_set = database.schema.not_null_set()

                # §4: the set Q
                if corpus is not None:
                    extractor = EquiJoinExtractor(database.schema)
                    result.extraction = extractor.extract_from_corpus(corpus)
                    result.equijoins = list(result.extraction.joins)
                else:
                    result.equijoins = sorted(
                        set(equijoins), key=lambda j: j.sort_key()
                    )
                root.attributes["equijoins"] = len(result.equijoins)
                self._record_sources(result)

                # §6.1 IND-Discovery
                self._check_cancel("IND-Discovery")
                with self.tracer.span("IND-Discovery", kind="phase") as span:
                    self.tracer.progress(
                        "probing candidate inclusion dependencies",
                        total=len(result.equijoins),
                    )
                    ind_step = INDDiscovery(
                        database, self.expert, engine=engine, ledger=self.ledger
                    )
                    result.ind_result = ind_step.run(result.equijoins)
                    span.attributes["inds"] = len(result.ind_result.inds)
                    log.info(
                        "IND-Discovery complete",
                        extra={"data": {"phase": "IND-Discovery",
                                        "inds": len(result.ind_result.inds)}},
                    )

                # §6.2.1 LHS-Discovery
                self._check_cancel("LHS-Discovery")
                with self.tracer.span("LHS-Discovery", kind="phase") as span:
                    self.tracer.progress(
                        "deriving left-hand sides",
                        total=len(result.ind_result.inds),
                    )
                    lhs_step = LHSDiscovery(
                        database.schema, result.ind_result.s_names,
                        ledger=self.ledger,
                    )
                    result.lhs_result = lhs_step.run(result.ind_result.inds)
                    span.attributes["lhs"] = len(result.lhs_result.lhs)
                    self.tracer.progress(
                        "left-hand sides derived",
                        current=len(result.lhs_result.lhs),
                        total=len(result.lhs_result.lhs),
                    )
                    log.info(
                        "LHS-Discovery complete",
                        extra={"data": {"phase": "LHS-Discovery",
                                        "lhs": len(result.lhs_result.lhs)}},
                    )

                # §6.2.2 RHS-Discovery
                self._check_cancel("RHS-Discovery")
                with self.tracer.span("RHS-Discovery", kind="phase") as span:
                    self.tracer.progress(
                        "checking candidate functional dependencies",
                        total=len(result.lhs_result.lhs),
                    )
                    rhs_step = RHSDiscovery(
                        database, self.expert, engine=engine, ledger=self.ledger
                    )
                    result.rhs_result = rhs_step.run(
                        result.lhs_result.lhs, result.lhs_result.hidden
                    )
                    span.attributes["fds"] = len(result.rhs_result.fds)
                    log.info(
                        "RHS-Discovery complete",
                        extra={"data": {"phase": "RHS-Discovery",
                                        "fds": len(result.rhs_result.fds)}},
                    )

                # §7 Restruct
                self._check_cancel("Restruct")
                with self.tracer.span("Restruct", kind="phase") as span:
                    self.tracer.progress(
                        "restructuring to 3NF",
                        total=len(result.rhs_result.fds),
                    )
                    restruct_step = Restruct(
                        database, self.expert, ledger=self.ledger
                    )
                    result.restruct_result = restruct_step.run(
                        result.rhs_result.fds,
                        result.rhs_result.hidden,
                        result.ind_result.inds,
                    )
                    span.attributes["ric"] = len(result.restruct_result.ric)
                    span.attributes["certificates"] = len(
                        result.restruct_result.certificates
                    )
                    log.info(
                        "Restruct complete",
                        extra={"data": {"phase": "Restruct",
                                        "ric": len(result.restruct_result.ric)}},
                    )

                # §7 Translate
                if translate:
                    self._check_cancel("Translate")
                    with self.tracer.span("Translate", kind="phase") as span:
                        self.tracer.progress(
                            "translating to the EER model",
                            total=len(result.restruct_result.ric),
                        )
                        translator = Translate(database.schema, ledger=self.ledger)
                        result.eer = translator.run(result.restruct_result.ric)
                        result.translation_notes = list(translator.notes.entries)
                        result.translation_warnings = list(
                            translator.notes.warnings
                        )
                        span.attributes["entities"] = len(result.eer.entities)
                        self.tracer.progress(
                            "EER translation done",
                            current=len(result.eer.entities),
                            total=len(result.eer.entities),
                        )
                        log.info(
                            "Translate complete",
                            extra={"data": {"phase": "Translate",
                                            "entities": len(result.eer.entities)}},
                        )
            finally:
                if pool is not None:
                    pool.close()
                    root.attributes["pool"] = pool.stats.as_dict()

            result.expert_decisions = self.expert.decision_count
            result.extension_queries = database.counter.total()
            root.attributes["queries"] = result.extension_queries
            root.attributes["decisions"] = result.expert_decisions
            log.info(
                "pipeline run complete",
                extra={"data": {
                    "engine": self.engine_mode,
                    "queries": result.extension_queries,
                    "decisions": result.expert_decisions,
                }},
            )
        return result

    def _check_cancel(self, phase: str) -> None:
        """Honor a pending cancellation before entering *phase*."""
        if self._cancel is not None and self._cancel():
            log.info(
                "run cancelled",
                extra={"data": {"before_phase": phase}},
            )
            raise RunCancelled(f"run cancelled before {phase}")

    # ------------------------------------------------------------------
    def _record_sources(self, result: PipelineResult) -> None:
        """Seed the lineage DAG with ``Q`` and the queries it came from."""
        if self.ledger is None:
            return
        if result.extraction is not None:
            for join in result.equijoins:
                join_id = self.ledger.node("equijoin", repr(join))
                for program, index in result.extraction.provenance.get(join, ()):
                    query_id = self.ledger.node(
                        "query",
                        f"{program}#{index}",
                        label=f"{program}, statement {index}",
                        program=program,
                        statement=index,
                    )
                    self.ledger.link(query_id, join_id, "extracted")
        else:
            # Q was supplied directly (the paper's assumption); the joins
            # are the lineage roots
            for join in result.equijoins:
                self.ledger.node("equijoin", repr(join), source="given")
