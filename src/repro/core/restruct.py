"""Restruct (§7): from a 1NF schema + elicited dependencies to 3NF.

Two passes over the database:

1. **Hidden objects** — each ``R_i.A_i ∈ H`` becomes a new relation
   ``R_p(A_i)`` (keyed by ``A_i``, populated with the distinct values of
   ``r_i[A_i]``); the inclusion dependency ``R_i[A_i] ≪ R_p[A_i]`` is
   added and every other occurrence of ``R_i[A_i]`` in the IND set is
   redirected to ``R_p[A_i]``.
2. **FD splits** — each ``R_i : A_i -> B_i ∈ F`` becomes a new relation
   ``R_p(A_i B_i)`` keyed by ``A_i``; ``B_i`` is removed from ``R_i``;
   ``R_i[A_i] ≪ R_p[A_i]`` is added and occurrences of ``R_i`` sides
   within ``A_i ∪ B_i`` are redirected to ``R_p``.

Finally ``RIC`` — the referential integrity constraints — is the subset
of the rewritten IND set whose right-hand side is a key.

The expert user names the new relations (``Employee``, ``Other-Dept``,
``Manager``, ``Project`` in the paper's example).  Processing order is
deterministic: ``H`` sorted, then ``F`` sorted; DESIGN.md records why the
paper's example is order-insensitive here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.expert import Expert

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.provenance import ProvenanceLedger
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.normalization.certificate import (
    DecompositionCertificate,
    DecompositionStep,
)
from repro.normalization.engine import certify_decomposition
from repro.relational.attribute import Attribute, AttributeRef
from repro.relational.database import Database
from repro.relational.domain import is_null
from repro.relational.schema import RelationSchema


@dataclass(frozen=True)
class AddedRelation:
    """Provenance of a relation created by Restruct."""

    name: str
    kind: str                      # "hidden" | "fd"
    source: str                    # originating relation R_i
    attributes: Tuple[str, ...]


@dataclass
class RestructResult:
    """The restructured database with its keys and integrity constraints."""

    database: Database
    inds: List[InclusionDependency] = field(default_factory=list)
    ric: List[InclusionDependency] = field(default_factory=list)
    added: List[AddedRelation] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    #: one machine-checkable certificate per FD-decomposed relation
    certificates: List[DecompositionCertificate] = field(default_factory=list)

    def key_set(self) -> List[AttributeRef]:
        """The final ``K``."""
        return self.database.schema.key_set()

    def relation_names(self) -> List[str]:
        return self.database.schema.relation_names

    def __repr__(self) -> str:
        return (
            f"RestructResult({len(self.relation_names())} relations, "
            f"{len(self.ric)} RICs)"
        )


class Restruct:
    """Runs the Restruct algorithm; mutates the database it is given.

    Callers that need the original afterwards should pass
    ``database.copy()``.
    """

    def __init__(
        self,
        database: Database,
        expert: Optional[Expert] = None,
        ledger: Optional["ProvenanceLedger"] = None,
    ) -> None:
        self.database = database
        self.expert = expert or Expert()
        self.ledger = ledger

    def run(
        self,
        fds: Sequence[FunctionalDependency],
        hidden: Sequence[AttributeRef],
        inds: Sequence[InclusionDependency],
    ) -> RestructResult:
        result = RestructResult(self.database)
        working: List[InclusionDependency] = sorted(
            set(inds), key=lambda i: i.sort_key()
        )
        # snapshot every relation's pre-restruct universe and key, so
        # each FD decomposition can be certified against the original
        snapshot = {
            relation.name: (
                tuple(relation.attribute_names),
                tuple(relation.uniques[0].attributes)
                if relation.uniques
                else tuple(relation.attribute_names),
            )
            for relation in self.database.schema
        }

        for ref in sorted(set(hidden), key=lambda r: r.sort_key()):
            working = self._materialize_hidden(ref, working, result)

        ordered_fds = sorted(set(fds), key=lambda f: f.sort_key())
        for fd in ordered_fds:
            working = self._split_fd(fd, working, result)
        self._certify_splits(ordered_fds, snapshot, result)

        result.inds = sorted(set(working), key=lambda i: i.sort_key())
        result.ric = [
            ind
            for ind in result.inds
            if ind.rhs_relation in self.database.schema
            and self.database.schema.relation(ind.rhs_relation).is_key(ind.rhs_attrs)
        ]
        if self.ledger is not None:
            for ind in result.ric:
                ind_id = self.ledger.node("ind", repr(ind))
                ric_id = self.ledger.node("ric", repr(ind))
                self.ledger.link(ind_id, ric_id, "promoted")
        return result

    # ------------------------------------------------------------------
    # pass 1: hidden objects
    # ------------------------------------------------------------------
    def _materialize_hidden(
        self,
        ref: AttributeRef,
        working: List[InclusionDependency],
        result: RestructResult,
    ) -> List[InclusionDependency]:
        source = self.database.schema.relation(ref.relation)
        attrs = tuple(ref.attributes)
        name = self.expert.name_hidden_object(
            ref, tuple(self.database.schema.relation_names)
        )
        new_schema = RelationSchema(
            name,
            [
                Attribute(a, source.attribute(a).dtype, nullable=False)
                for a in attrs
            ],
        )
        new_schema.declare_unique(attrs)          # add R_p.A_i to K
        table = self.database.create_relation(new_schema)
        for values in self._distinct_projection(ref.relation, attrs):
            table.insert(list(values))
        result.added.append(AddedRelation(name, "hidden", ref.relation, attrs))

        # redirect existing occurrences of R_i[A_i], then add the link
        working = self._redirect(
            working, ref.relation, set(attrs), name, exact=True
        )
        link = InclusionDependency(ref.relation, attrs, name, attrs)
        working.append(link)
        if self.ledger is not None:
            rel_id = self.ledger.node(
                "relation", name, origin="hidden", source=repr(ref)
            )
            cand_id = self.ledger.node("candidate", repr(ref))
            self.ledger.link(cand_id, rel_id, "materialized")
            naming = self.ledger.last_decision()
            if naming is not None:
                self.ledger.link(naming, rel_id, "named")
            link_id = self.ledger.node("ind", repr(link))
            self.ledger.link(rel_id, link_id, "links")
        return working

    # ------------------------------------------------------------------
    # pass 2: FD splits
    # ------------------------------------------------------------------
    def _split_fd(
        self,
        fd: FunctionalDependency,
        working: List[InclusionDependency],
        result: RestructResult,
    ) -> List[InclusionDependency]:
        source = self.database.schema.relation(fd.relation)
        lhs = tuple(a for a in source.attribute_names if a in fd.lhs)
        rhs = tuple(a for a in source.attribute_names if a in fd.rhs)
        name = self.expert.name_fd_relation(
            fd, tuple(self.database.schema.relation_names)
        )
        new_schema = RelationSchema(
            name,
            [
                # the key side becomes not-null via declare_unique below;
                # the payload keeps its source nullability
                Attribute(
                    a,
                    source.attribute(a).dtype,
                    nullable=a not in lhs and source.attribute(a).nullable,
                )
                for a in lhs + rhs
            ],
        )
        new_schema.declare_unique(lhs)            # add R_p.A_i to K
        table = self.database.create_relation(new_schema)
        for values in self._grouped_projection(fd.relation, lhs, rhs, result):
            table.insert(list(values))
        result.added.append(AddedRelation(name, "fd", fd.relation, lhs + rhs))

        # remove B_i from R_i(X_i)
        self.database.replace_relation(source.without_attributes(rhs))

        # redirect occurrences of R_i sides within A_i ∪ B_i, then link
        working = self._redirect(
            working, fd.relation, set(lhs) | set(rhs), name, exact=False
        )
        link = InclusionDependency(fd.relation, lhs, name, lhs)
        working.append(link)
        if self.ledger is not None:
            rel_id = self.ledger.node(
                "relation", name, origin="fd-split", source=fd.relation
            )
            fd_id = self.ledger.node("fd", repr(fd))
            self.ledger.link(fd_id, rel_id, "split")
            naming = self.ledger.last_decision()
            if naming is not None:
                self.ledger.link(naming, rel_id, "named")
            link_id = self.ledger.node("ind", repr(link))
            self.ledger.link(rel_id, link_id, "links")
        return working

    # ------------------------------------------------------------------
    # certification of the FD decompositions
    # ------------------------------------------------------------------
    def _certify_splits(
        self,
        ordered_fds: Sequence[FunctionalDependency],
        snapshot: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]],
        result: RestructResult,
    ) -> None:
        """One certificate per FD-decomposed relation.

        The decomposition of ``R_i`` is its final residual plus every
        relation split out of it; the input FDs are the elicited FDs on
        ``R_i`` plus its declared-key FD.  The certificate records the
        chase verdict, the preserved/lost dependencies and the normal
        form each fragment attained — independently re-checkable via
        ``verify_certificate``.
        """
        split_added = [a for a in result.added if a.kind == "fd"]
        by_source: Dict[str, List[Tuple[FunctionalDependency, AddedRelation]]] = {}
        for fd, added in zip(ordered_fds, split_added):
            by_source.setdefault(fd.relation, []).append((fd, added))
        for source in sorted(by_source):
            if source not in snapshot:
                result.warnings.append(
                    f"cannot certify decomposition of {source}: relation "
                    f"was not present before restructuring"
                )
                continue
            universe, original_key = snapshot[source]
            input_fds = [
                FunctionalDependency("", tuple(fd.lhs), tuple(fd.rhs))
                for fd, _added in by_source[source]
            ]
            input_fds.append(FunctionalDependency("", original_key, universe))
            residual = self.database.schema.relation(source)
            residual_key = (
                tuple(residual.uniques[0].attributes)
                if residual.uniques
                else tuple(residual.attribute_names)
            )
            fragments = [
                (source, tuple(residual.attribute_names), residual_key)
            ]
            steps = []
            for fd, added in by_source[source]:
                key = tuple(a for a in added.attributes if a in fd.lhs)
                fragments.append((added.name, tuple(added.attributes), key))
                steps.append(
                    DecompositionStep(
                        "restruct-split", f"{fd!r} -> {added.name}"
                    )
                )
            certificate = certify_decomposition(
                source,
                universe,
                fragments,
                input_fds,
                target="3nf",
                steps=steps,
                meta={"phase": "restruct"},
            )
            result.certificates.append(certificate)
            if self.ledger is not None:
                dec_id = self.ledger.node(
                    "decomposition",
                    source,
                    label=f"{source} -> {len(fragments)} fragment(s)",
                    lossless=certificate.lossless,
                    preserved=len(certificate.preserved),
                    lost=len(certificate.lost),
                    target=certificate.target,
                )
                for fd, added in by_source[source]:
                    fd_id = self.ledger.node("fd", repr(fd))
                    self.ledger.link(fd_id, dec_id, "evidence")
                    rel_id = self.ledger.node("relation", added.name)
                    self.ledger.link(dec_id, rel_id, "fragment")
                self.ledger.link(
                    dec_id, self.ledger.node("relation", source), "fragment"
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _distinct_projection(
        self, relation: str, attrs: Tuple[str, ...]
    ) -> List[Tuple[object, ...]]:
        """Distinct fully-non-NULL projections, deterministic order."""
        seen: Set[Tuple[object, ...]] = set()
        out: List[Tuple[object, ...]] = []
        for row in self.database.table(relation):
            values = row.project(attrs)
            if any(is_null(v) for v in values):
                continue
            if values not in seen:
                seen.add(values)
                out.append(values)
        return sorted(out, key=repr)

    def _grouped_projection(
        self,
        relation: str,
        lhs: Tuple[str, ...],
        rhs: Tuple[str, ...],
        result: RestructResult,
    ) -> List[Tuple[object, ...]]:
        """Distinct (A_i, B_i) projections, one row per A_i value.

        When the FD was *enforced* over dirty data, several B_i images can
        exist for one A_i; the first (in table order) wins and a warning
        records the conflict.
        """
        chosen: Dict[Tuple[object, ...], Tuple[object, ...]] = {}
        for row in self.database.table(relation):
            key = row.project(lhs)
            if any(is_null(v) for v in key):
                continue
            image = row.project(rhs)
            if key in chosen:
                if chosen[key] != image:
                    result.warnings.append(
                        f"enforced FD on {relation}: value {key!r} maps to both "
                        f"{chosen[key]!r} and {image!r}; kept the first"
                    )
                continue
            chosen[key] = image
        return sorted((k + v for k, v in chosen.items()), key=repr)

    def _redirect(
        self,
        working: List[InclusionDependency],
        relation: str,
        attr_pool: Set[str],
        new_relation: str,
        exact: bool,
    ) -> List[InclusionDependency]:
        """Rewrite IND sides referencing *relation* onto *new_relation*.

        *exact* (hidden-object pass): only sides whose attribute set equals
        *attr_pool* move.  Non-exact (FD pass): any side whose attributes
        all lie within ``A_i ∪ B_i`` moves.  Reflexive results are dropped.
        """

        def remap_side(rel: str, attrs: Tuple[str, ...]) -> Tuple[str, Tuple[str, ...]]:
            if rel != relation:
                return rel, attrs
            attr_set = set(attrs)
            if exact:
                if attr_set == attr_pool:
                    return new_relation, attrs
            elif attr_set <= attr_pool:
                return new_relation, attrs
            return rel, attrs

        out: List[InclusionDependency] = []
        for ind in working:
            l_rel, l_attrs = remap_side(ind.lhs_relation, ind.lhs_attrs)
            r_rel, r_attrs = remap_side(ind.rhs_relation, ind.rhs_attrs)
            if l_rel == r_rel and l_attrs == r_attrs:
                continue  # became reflexive; drop
            rewritten = InclusionDependency(l_rel, l_attrs, r_rel, r_attrs)
            if self.ledger is not None and rewritten != ind:
                old_id = self.ledger.node("ind", repr(ind))
                new_id = self.ledger.node("ind", repr(rewritten))
                self.ledger.link(old_id, new_id, "redirected")
            if rewritten not in out:
                out.append(rewritten)
        return out


def restructure(
    database: Database,
    fds: Sequence[FunctionalDependency],
    hidden: Sequence[AttributeRef],
    inds: Sequence[InclusionDependency],
    expert: Optional[Expert] = None,
) -> RestructResult:
    """One-shot convenience wrapper around :class:`Restruct`."""
    return Restruct(database, expert).run(fds, hidden, inds)
