"""RHS-Discovery (§6.2.2): finding the right-hand sides of candidate FDs.

For each candidate identifier ``R_i.A`` in ``LHS ∪ H``:

1. *prune the candidates*: ``T = X_i - A - K_i`` (keys are dropped — only
   3NF is targeted), and when ``A`` is nullable (``A ∉ N``) every not-null
   attribute is dropped too — a nullable determinant cannot functionally
   account for a mandatory attribute;
2. *test each survivor* ``b ∈ T`` against the extension; on failure the
   expert may still enforce ``A -> b`` (dirty-data override, step ii);
3. *classify*: a non-empty right-hand side ``B``, once validated by the
   expert, yields ``R_i : A -> B`` in ``F`` (and leaves ``H`` if it was
   there); an empty one makes ``R_i.A`` a *hidden object* candidate the
   expert may conceptualize into ``H`` (steps iv/v).

When an :class:`~repro.engine.executor.BatchExecutor` is supplied, the
candidate pruning (pure schema work) runs up front for every identifier
and all surviving ``A -> b`` checks are submitted as one probe batch.
This is safe because RHS-Discovery never mutates the database — hidden
objects are only conceptualized later, by Restruct — so every FD test
reads the same extension the serial walk reads; the per-identifier loop
then consumes the prefetched verdicts in the original order, asking the
expert exactly the serial questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.expert import Expert, FDContext
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.inference import satisfaction_ratio, violation_witnesses
from repro.relational.attribute import AttributeRef
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import BatchExecutor
    from repro.obs.provenance import ProvenanceLedger


@dataclass(frozen=True)
class CandidateOutcome:
    """Audit record of one ``R_i.A`` processed by RHS-Discovery."""

    ref: AttributeRef
    candidates: Tuple[str, ...]        # T after pruning
    pruned_keys: Tuple[str, ...]       # removed because they are key attrs
    pruned_not_null: Tuple[str, ...]   # removed by the nullable-LHS rule
    accepted: Tuple[str, ...]          # B
    enforced: Tuple[str, ...]          # subset of B the expert forced
    action: str                        # "fd" | "hidden" | "ignored" | "kept-hidden" | "rejected"


@dataclass
class RHSDiscoveryResult:
    """The sets ``F`` and (final) ``H``."""

    fds: List[FunctionalDependency] = field(default_factory=list)
    hidden: List[AttributeRef] = field(default_factory=list)
    outcomes: List[CandidateOutcome] = field(default_factory=list)

    def add_fd(self, fd: FunctionalDependency) -> None:
        if fd not in self.fds:
            self.fds.append(fd)
            self.fds.sort(key=lambda f: f.sort_key())

    def add_hidden(self, ref: AttributeRef) -> None:
        if ref not in self.hidden:
            self.hidden.append(ref)
            self.hidden.sort(key=lambda r: r.sort_key())

    def remove_hidden(self, ref: AttributeRef) -> None:
        if ref in self.hidden:
            self.hidden.remove(ref)

    def __repr__(self) -> str:
        return f"RHSDiscoveryResult(F={self.fds}, H={self.hidden})"


class RHSDiscovery:
    """Runs RHS-Discovery against one database.

    The two pruning rules of the algorithm's first step can be disabled
    individually (*prune_keys*, *prune_not_null*) — used by the ablation
    benchmarks to measure what each rule saves; production runs keep
    both on, as the paper specifies.
    """

    def __init__(
        self,
        database: Database,
        expert: Optional[Expert] = None,
        prune_keys: bool = True,
        prune_not_null: bool = True,
        engine: Optional["BatchExecutor"] = None,
        ledger: Optional["ProvenanceLedger"] = None,
    ) -> None:
        self.database = database
        self.expert = expert or Expert()
        self.prune_keys = prune_keys
        self.prune_not_null = prune_not_null
        self.engine = engine
        self.ledger = ledger

    def run(
        self,
        lhs: Sequence[AttributeRef],
        hidden: Sequence[AttributeRef],
    ) -> RHSDiscoveryResult:
        result = RHSDiscoveryResult()
        hidden_set = {h for h in hidden}
        for ref in hidden:
            result.add_hidden(ref)
        ordered = sorted(set(lhs) | hidden_set, key=lambda r: r.sort_key())
        verdicts = self._prefetch(ordered)
        for index, ref in enumerate(ordered, start=1):
            self._process(
                ref, ref in hidden_set, result,
                verdicts.get(ref) if verdicts else None,
            )
            self.database.tracer.progress(
                "identifier checked", current=index, total=len(ordered),
            )
        return result

    # ------------------------------------------------------------------
    def _prefetch(
        self, ordered: Sequence[AttributeRef]
    ) -> Optional[Dict[AttributeRef, Dict[str, bool]]]:
        """Batch every surviving ``A -> b`` check across all identifiers."""
        if self.engine is None:
            return None
        from repro.engine.probes import Probe

        probes: List[Probe] = []
        spans: List[Tuple[AttributeRef, List[str]]] = []
        for ref in ordered:
            candidates, _, _ = self._prune(ref)
            for name in candidates:
                probes.append(Probe.fd(ref.relation, tuple(ref.attributes), (name,)))
            spans.append((ref, candidates))
        values = self.engine.run(probes)
        verdicts: Dict[AttributeRef, Dict[str, bool]] = {}
        cursor = 0
        for ref, candidates in spans:
            verdicts[ref] = {
                name: values[cursor + i] for i, name in enumerate(candidates)
            }
            cursor += len(candidates)
        return verdicts

    # ------------------------------------------------------------------
    def _not_null_names(self, relation: str) -> Set[str]:
        """Attributes of *relation* in the paper's set ``N``."""
        schema = self.database.schema.relation(relation)
        names = {a.name for a in schema.attributes if not a.nullable}
        for u in schema.uniques:
            names |= set(u.attributes)
        return names

    def _prune(self, ref: AttributeRef) -> Tuple[List[str], List[str], List[str]]:
        """Step 1: ``(T, pruned keys, pruned not-null)`` for one ``R_i.A``.

        Pure schema work — shared verbatim by the serial walk and the
        batched prefetch, so both modes test the same candidate set.
        """
        relation = self.database.schema.relation(ref.relation)

        # T = X_i - A - K_i  (every declared key's attributes are pruned)
        key_attrs: Set[str] = (
            {a for u in relation.uniques for a in u.attributes}
            if self.prune_keys
            else set()
        )
        pruned_keys: List[str] = []
        candidates: List[str] = []
        for name in relation.attribute_names:
            if name in ref.attributes:
                continue
            if name in key_attrs:
                pruned_keys.append(name)
            else:
                candidates.append(name)

        # if A ∉ N then T = T - (N ∩ X_i)
        not_null = self._not_null_names(ref.relation)
        pruned_not_null: List[str] = []
        if self.prune_not_null and not set(ref.attributes) <= not_null:
            kept = []
            for name in candidates:
                if name in not_null:
                    pruned_not_null.append(name)
                else:
                    kept.append(name)
            candidates = kept
        return candidates, pruned_keys, pruned_not_null

    def _process(
        self,
        ref: AttributeRef,
        in_hidden: bool,
        result: RHSDiscoveryResult,
        verdicts: Optional[Dict[str, bool]] = None,
    ) -> None:
        a_names = tuple(ref.attributes)
        candidates, pruned_keys, pruned_not_null = self._prune(ref)
        cand_id = (
            self.ledger.node("candidate", repr(ref))
            if self.ledger is not None
            else None
        )

        # test each candidate; the expert may enforce failures
        accepted: List[str] = []
        enforced: List[str] = []
        decision_ids: List[str] = []
        table = self.database.table(ref.relation)
        for name in candidates:
            holds = (
                verdicts[name]
                if verdicts is not None
                else self.database.fd_holds(ref.relation, a_names, (name,))
            )
            if cand_id is not None:
                # the fd_holds test of A -> name, matched by signature
                self.ledger.attach_evidence(
                    cand_id, "fd_holds", (ref.relation,), (a_names, (name,))
                )
            if holds:                                                        # (i)
                accepted.append(name)
            else:                                                            # (ii)
                fd = FunctionalDependency(ref.relation, a_names, (name,))
                context = FDContext(
                    fd,
                    satisfaction_ratio(table, fd),
                    tuple(
                        f"{a!r} / {b!r}"
                        for a, b in violation_witnesses(table, fd, limit=3)
                    ),
                )
                if self.expert.enforce_fd(context):
                    accepted.append(name)
                    enforced.append(name)
                if self.ledger is not None:
                    decision = self.ledger.last_decision()
                    if decision is not None:
                        decision_ids.append(decision)

        if accepted:                                                         # (iii)
            fd = FunctionalDependency(ref.relation, a_names, tuple(accepted))
            valid = self.expert.validate_fd(fd)
            if self.ledger is not None:
                decision = self.ledger.last_decision()
                if decision is not None:
                    decision_ids.append(decision)
            if valid:
                result.add_fd(fd)
                result.remove_hidden(ref)
                action = "fd"
                if cand_id is not None:
                    fd_id = self.ledger.node(
                        "fd",
                        repr(fd),
                        accepted=list(accepted),
                        enforced=list(enforced),
                    )
                    self.ledger.link(cand_id, fd_id, "determined")
                    for decision in decision_ids:
                        self.ledger.link(decision, fd_id, "decided")
            else:
                # the expert rejected the presumption; treat as empty RHS
                action = self._handle_empty(ref, in_hidden, result)
                action = "rejected" if action == "ignored" else action
        else:
            action = self._handle_empty(ref, in_hidden, result)

        if cand_id is not None:
            node = self.ledger.nodes[cand_id]
            node.attrs["action"] = action
            if action in ("hidden", "kept-hidden"):
                node.attrs["set"] = "H"
            if action != "fd":
                # the empty-RHS / rejection path: its expert answers
                # (enforce refusals, rejected validation, hidden-object
                # question) justify the candidate's final state
                for decision in decision_ids:
                    self.ledger.link(decision, cand_id, "decided")
                decision = self.ledger.last_decision()
                if decision is not None and action in ("hidden", "ignored"):
                    self.ledger.link(decision, cand_id, "decided")

        result.outcomes.append(
            CandidateOutcome(
                ref=ref,
                candidates=tuple(candidates),
                pruned_keys=tuple(pruned_keys),
                pruned_not_null=tuple(pruned_not_null),
                accepted=tuple(accepted),
                enforced=tuple(enforced),
                action=action,
            )
        )

    def _handle_empty(
        self, ref: AttributeRef, in_hidden: bool, result: RHSDiscoveryResult
    ) -> str:
        if in_hidden:
            return "kept-hidden"          # already conceptualized, stays in H
        if self.expert.conceptualize_hidden_object(ref):                    # (iv)
            result.add_hidden(ref)
            return "hidden"
        return "ignored"                                                    # (v)


def discover_rhs(
    database: Database,
    lhs: Sequence[AttributeRef],
    hidden: Sequence[AttributeRef],
    expert: Optional[Expert] = None,
    engine: Optional["BatchExecutor"] = None,
) -> RHSDiscoveryResult:
    """One-shot convenience wrapper around :class:`RHSDiscovery`."""
    return RHSDiscovery(database, expert, engine=engine).run(lhs, hidden)
