"""Translate (§7): the restructured 3NF schema as an EER schema.

The paper sketches three rules over the referential integrity
constraints ``R_l[A_l] ≪ R_k[A_k]``:

a) ``A_l`` is the *whole key* of ``R_l`` — an **is-a link** from ``R_l``
   to ``R_k`` (e.g. ``Employee[no] ≪ Person[id]``);
b) the key-covering left-hand sides of ``R_l``'s constraints **partition
   its key** (two or more parts) — ``R_l`` becomes an n-ary
   (many-to-many) **relationship-type** among the referenced entities,
   its non-key attributes riding along (``Assignment``); a *partial*
   cover instead makes ``R_l`` a **weak entity-type** of the referenced
   owners, the uncovered key attributes forming the discriminator
   (``HEmployee``);
c) ``A_l`` is **not in the key** — a binary (many-to-one)
   **relationship-type** between ``R_l`` and ``R_k``
   (``Department[emp] ≪ Manager[emp]``).

Cyclic inclusion dependencies are out of the paper's scope (and ours);
:meth:`Translate.run` validates the result, so a cycle of is-a links
raises instead of silently producing nonsense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.dependencies.ind import InclusionDependency
from repro.eer.model import EERSchema, EntityType, Participation, RelationshipType
from repro.relational.schema import DatabaseSchema
from repro.util.naming import unique_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.provenance import ProvenanceLedger


@dataclass
class TranslationNotes:
    """Audit trail of the rule applied to each relation / constraint."""

    entries: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def note(self, text: str) -> None:
        self.entries.append(text)


class Translate:
    """Maps a restructured relational schema + RIC to an EER schema."""

    def __init__(
        self,
        schema: DatabaseSchema,
        ledger: Optional["ProvenanceLedger"] = None,
    ) -> None:
        self.schema = schema
        self.notes = TranslationNotes()
        self.ledger = ledger

    # ------------------------------------------------------------------
    # provenance emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        kind: str,
        key: str,
        relation: Optional[str] = None,
        ric: Sequence[InclusionDependency] = (),
        **attrs,
    ) -> None:
        """Record one EER construct, derived from its relation and RICs."""
        if self.ledger is None:
            return
        out_id = self.ledger.node(kind, key, **attrs)
        if relation is not None:
            rel_id = self.ledger.node("relation", relation)
            self.ledger.link(rel_id, out_id, "translated")
        for ind in ric:
            ric_id = self.ledger.node("ric", repr(ind))
            self.ledger.link(ric_id, out_id, "translated")

    def run(self, ric: Sequence[InclusionDependency]) -> EERSchema:
        eer = EERSchema()
        ric = sorted(set(ric), key=lambda i: i.sort_key())
        by_lhs: Dict[str, List[InclusionDependency]] = {}
        for ind in ric:
            by_lhs.setdefault(ind.lhs_relation, []).append(ind)

        # classify each relation: which become relationship-types?
        relationship_relations: Dict[str, List[InclusionDependency]] = {}
        weak_relations: Dict[str, List[InclusionDependency]] = {}
        for rel in self.schema:
            key = rel.primary_key()
            if key is None:
                continue
            covering = [
                ind
                for ind in by_lhs.get(rel.name, [])
                if set(ind.lhs_attrs) <= set(key.names)
            ]
            parts = self._dedupe_parts(covering)
            if not parts:
                continue
            covered: Set[str] = set()
            disjoint = True
            for part in parts:
                if covered & part:
                    disjoint = False
                covered |= part
            if (
                disjoint
                and covered == set(key.names)
                and len(parts) >= 2
            ):
                relationship_relations[rel.name] = covering
            elif covered < set(key.names) or not disjoint:
                if any(set(ind.lhs_attrs) == set(key.names) for ind in covering):
                    continue  # whole-key references: pure is-a, rule (a)
                weak_relations[rel.name] = covering

        # pass 1: entity-types for every relation that is not a relationship
        for rel in self.schema:
            if rel.name in relationship_relations:
                continue
            key = rel.primary_key()
            if rel.name in weak_relations:
                owners = tuple(
                    sorted({i.rhs_relation for i in weak_relations[rel.name]})
                )
                covered = {
                    a for i in weak_relations[rel.name] for a in i.lhs_attrs
                }
                discriminator = tuple(
                    a for a in (key.names if key else ()) if a not in covered
                )
                eer.add_entity(
                    EntityType(
                        rel.name,
                        attributes=rel.attribute_names,
                        key=key.names if key else (),
                        weak=True,
                        owners=owners,
                        discriminator=discriminator,
                    )
                )
                self.notes.note(
                    f"{rel.name}: weak entity-type of {', '.join(owners)} "
                    f"(discriminator {discriminator})"
                )
                self._emit(
                    "entity",
                    rel.name,
                    relation=rel.name,
                    ric=weak_relations[rel.name],
                    weak=True,
                    owners=list(owners),
                )
            else:
                eer.add_entity(
                    EntityType(
                        rel.name,
                        attributes=rel.attribute_names,
                        key=key.names if key else (),
                    )
                )
                self.notes.note(f"{rel.name}: entity-type")
                self._emit("entity", rel.name, relation=rel.name)

        # pass 2: n-ary relationship-types (rule b)
        for name, covering in sorted(relationship_relations.items()):
            rel = self.schema.relation(name)
            key = rel.primary_key()
            participants = []
            for ind in covering:
                if not eer.has_entity(ind.rhs_relation):
                    self.notes.warnings.append(
                        f"{name}: participant {ind.rhs_relation!r} is itself a "
                        f"relationship-type; leg skipped"
                    )
                    continue
                participants.append(
                    Participation(
                        ind.rhs_relation,
                        cardinality="N",
                        via=ind.lhs_attrs,
                    )
                )
            if len(participants) < 2:
                # cannot form a relationship after skips: degrade to entity
                eer.add_entity(
                    EntityType(name, rel.attribute_names, key.names if key else ())
                )
                self.notes.warnings.append(
                    f"{name}: degraded to entity-type (insufficient participants)"
                )
                self._emit("entity", name, relation=name, degraded=True)
                continue
            extra = tuple(
                a for a in rel.attribute_names if key is None or a not in key.names
            )
            eer.add_relationship(
                RelationshipType(name, tuple(participants), attributes=extra)
            )
            self.notes.note(
                f"{name}: {len(participants)}-ary relationship-type among "
                f"{', '.join(p.entity for p in participants)}"
            )
            self._emit(
                "relationship",
                name,
                relation=name,
                ric=covering,
                arity=len(participants),
            )

        # pass 3: is-a links (rule a) and binary relationships (rule c)
        for ind in ric:
            if ind.lhs_relation in relationship_relations:
                continue  # consumed by rule (b)
            rel = self.schema.relation(ind.lhs_relation)
            key = rel.primary_key()
            lhs_set = set(ind.lhs_attrs)
            if key is not None and lhs_set == set(key.names):
                if eer.has_entity(ind.lhs_relation) and eer.has_entity(ind.rhs_relation):
                    # cyclic inclusion dependencies are outside the
                    # paper's Translate sketch ("the treatment of cyclic
                    # inclusion dependencies is not considered here");
                    # mutual inclusions arise routinely from equal value
                    # sets, so skip any link that would close a cycle
                    # instead of producing an invalid schema
                    if self._reaches(eer, ind.rhs_relation, ind.lhs_relation):
                        self.notes.warnings.append(
                            f"{ind!r}: is-a link would close a cycle; skipped "
                            f"(cyclic INDs are out of the paper's scope)"
                        )
                    else:
                        eer.add_isa(ind.lhs_relation, ind.rhs_relation)
                        self.notes.note(f"{ind!r}: is-a link")
                        self._emit(
                            "isa",
                            f"{ind.lhs_relation} isa {ind.rhs_relation}",
                            relation=ind.lhs_relation,
                            ric=(ind,),
                        )
                else:
                    self.notes.warnings.append(
                        f"{ind!r}: is-a endpoints are not both entities; skipped"
                    )
                continue
            if key is not None and lhs_set <= set(key.names):
                continue  # consumed by the weak-entity classification
            # rule (c): non-key left-hand side
            if not (eer.has_entity(ind.lhs_relation) and eer.has_entity(ind.rhs_relation)):
                self.notes.warnings.append(
                    f"{ind!r}: binary-relationship endpoints are not both "
                    f"entities; skipped"
                )
                continue
            taken = tuple(
                [e.name for e in eer.entities] + [r.name for r in eer.relationships]
            )
            rel_name = unique_name(
                f"{ind.lhs_relation}-{ind.rhs_relation}", taken
            )
            eer.add_relationship(
                RelationshipType(
                    rel_name,
                    (
                        Participation(ind.lhs_relation, "N", via=ind.lhs_attrs),
                        Participation(ind.rhs_relation, "1", via=ind.rhs_attrs),
                    ),
                )
            )
            self.notes.note(f"{ind!r}: binary relationship-type {rel_name}")
            self._emit(
                "relationship",
                rel_name,
                relation=ind.lhs_relation,
                ric=(ind,),
                arity=2,
            )

        eer.validate()
        return eer

    @staticmethod
    def _reaches(eer: EERSchema, start: str, goal: str) -> bool:
        """Is *goal* reachable from *start* along existing is-a links?"""
        frontier = [start]
        seen = set()
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(eer.supertypes(node))
        return False

    @staticmethod
    def _dedupe_parts(covering: Sequence[InclusionDependency]) -> List[Set[str]]:
        parts: List[Set[str]] = []
        for ind in covering:
            s = set(ind.lhs_attrs)
            if s not in parts:
                parts.append(s)
        return parts


def translate(
    schema: DatabaseSchema, ric: Sequence[InclusionDependency]
) -> EERSchema:
    """One-shot convenience wrapper around :class:`Translate`."""
    return Translate(schema).run(ric)
