"""The expert user, as a typed protocol.

The paper's method is interactive: "an expert user has to validate the
presumptions on the elicited dependencies".  Every point where the
algorithms defer to a human is modelled as one method of :class:`Expert`:

====================================  =======================================
Algorithm step                        Expert method
====================================  =======================================
IND-Discovery, non-empty intersection  :meth:`Expert.decide_nei`
RHS-Discovery (ii), enforce an FD      :meth:`Expert.enforce_fd`
RHS-Discovery (iii), validate an FD    :meth:`Expert.validate_fd`
RHS-Discovery (iv), hidden object      :meth:`Expert.conceptualize_hidden_object`
Restruct, naming a hidden object       :meth:`Expert.name_hidden_object`
Restruct, naming an FD-split relation  :meth:`Expert.name_fd_relation`
====================================  =======================================

Implementations: :class:`AutoExpert` (deterministic policy, no human),
:class:`ScriptedExpert` (answers keyed by stable question strings — used
to replay the paper's choices exactly), :class:`RecordingExpert` (wrapper
that counts and logs every interaction), :class:`InteractiveExpert`
(stdin prompts, for actual use).  Workload code adds an OracleExpert that
answers from synthetic ground truth
(:mod:`repro.workloads.oracle`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro.dependencies.fd import FunctionalDependency
from repro.programs.equijoin import EquiJoin
from repro.relational.attribute import AttributeRef
from repro.util.naming import merge_name, unique_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.provenance import ProvenanceLedger


# ----------------------------------------------------------------------
# decision value objects
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NEIContext:
    """What the expert sees when IND-Discovery finds a non-empty intersection.

    ``n_left``/``n_right`` are the distinct counts of the two sides of the
    equi-join, ``n_common`` the count of shared values — the three numbers
    the algorithm computed.  ``overlap`` is ``n_common / min(n_left,
    n_right)``, the paper's informal "amount of data implied in this
    intersection in comparison with these two sets of values".
    """

    join: EquiJoin
    n_left: int
    n_right: int
    n_common: int

    @property
    def overlap(self) -> float:
        smaller = min(self.n_left, self.n_right)
        if smaller == 0:
            return 0.0
        return self.n_common / smaller

    def question_key(self) -> str:
        return f"nei:{self.join!r}"


@dataclass(frozen=True)
class ConceptualizeIntersection:
    """Case (iv): create a new relation holding the shared identifiers."""

    name: str


@dataclass(frozen=True)
class ForceInclusion:
    """Cases (v)/(vi): assert an inclusion despite the dirty extension.

    ``direction`` is ``"left_in_right"`` for ``left ≪ right`` (case (vi),
    with the join's canonical left side as LHS) or ``"right_in_left"``
    for the converse (case (v)).
    """

    direction: str

    def __post_init__(self) -> None:
        if self.direction not in ("left_in_right", "right_in_left"):
            raise ValueError(f"bad direction {self.direction!r}")


@dataclass(frozen=True)
class IgnoreIntersection:
    """Case (vii): give the interrelation dependency up."""


NEIDecision = Union[ConceptualizeIntersection, ForceInclusion, IgnoreIntersection]


@dataclass(frozen=True)
class FDContext:
    """What the expert sees when asked to enforce a failed FD test."""

    fd: FunctionalDependency
    satisfaction_ratio: float
    witnesses: Tuple[str, ...] = ()

    def question_key(self) -> str:
        return f"enforce:{self.fd!r}"


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------
class Expert:
    """Base expert: the paper's most cautious user.

    Defaults: never conceptualize an intersection, never force an
    inclusion, never enforce a failed FD, validate every FD the data
    supports, never conceptualize an empty-RHS hidden object, accept the
    proposed default names.  Subclasses override what they care about.
    """

    # -- IND-Discovery --------------------------------------------------
    def decide_nei(self, context: NEIContext) -> NEIDecision:
        """Answer the non-empty-intersection question (cases iv-vii)."""
        return IgnoreIntersection()

    # -- RHS-Discovery ---------------------------------------------------
    def enforce_fd(self, context: FDContext) -> bool:
        """Step (ii): assert ``A -> b`` although the extension violates it."""
        return False

    def validate_fd(self, fd: FunctionalDependency) -> bool:
        """Step (iii): confirm an extension-supported FD is meaningful."""
        return True

    def conceptualize_hidden_object(self, ref: AttributeRef) -> bool:
        """Step (iv): conceptualize an identifier with an empty RHS."""
        return False

    # -- naming -----------------------------------------------------------
    def name_intersection(self, context: NEIContext, taken: Tuple[str, ...]) -> str:
        """Default name for a conceptualized intersection relation."""
        return unique_name(
            merge_name(context.join.left_relation, context.join.right_relation),
            taken,
        )

    def name_hidden_object(self, ref: AttributeRef, taken: Tuple[str, ...]) -> str:
        """Name for the relation materializing hidden object *ref*."""
        default = "-".join(ref.attributes.names).capitalize() + "-Object"
        return unique_name(default, taken)

    def name_fd_relation(
        self, fd: FunctionalDependency, taken: Tuple[str, ...]
    ) -> str:
        """Name for the relation split off along *fd*."""
        default = fd.relation + "-" + "-".join(sorted(fd.lhs))
        return unique_name(default, taken)


class AutoExpert(Expert):
    """A deterministic, threshold-driven policy — runs with no human.

    When a non-empty intersection covers at least *force_threshold* of the
    smaller side, the smaller side is presumed included in the larger (the
    extension is presumed dirty); below *conceptualize_threshold* nothing
    is elicited; in between, the intersection is conceptualized when
    *conceptualize* is set.  Hidden objects with an empty RHS are
    conceptualized when *conceptualize_hidden* is set.
    """

    def __init__(
        self,
        force_threshold: float = 0.95,
        conceptualize: bool = False,
        conceptualize_threshold: float = 0.5,
        conceptualize_hidden: bool = False,
        validate: bool = True,
    ) -> None:
        self.force_threshold = force_threshold
        self.conceptualize = conceptualize
        self.conceptualize_threshold = conceptualize_threshold
        self.conceptualize_hidden = conceptualize_hidden
        self.validate = validate

    def decide_nei(self, context: NEIContext) -> NEIDecision:
        if context.overlap >= self.force_threshold:
            if context.n_left <= context.n_right:
                return ForceInclusion("left_in_right")
            return ForceInclusion("right_in_left")
        if self.conceptualize and context.overlap >= self.conceptualize_threshold:
            return ConceptualizeIntersection(self.name_intersection(context, ()))
        return IgnoreIntersection()

    def validate_fd(self, fd: FunctionalDependency) -> bool:
        return self.validate

    def conceptualize_hidden_object(self, ref: AttributeRef) -> bool:
        return self.conceptualize_hidden


class ScriptedExpert(Expert):
    """Answers read from a dictionary of question keys — exact replays.

    Keys (all produced by ``question_key`` methods or the naming hooks):

    - ``"nei:<join repr>"`` -> an :data:`NEIDecision`
    - ``"enforce:<fd repr>"`` -> bool
    - ``"validate:<fd repr>"`` -> bool
    - ``"hidden:<ref repr>"`` -> bool
    - ``"name_hidden:<ref repr>"`` -> str
    - ``"name_fd:<fd repr>"`` -> str

    Unanswered questions fall through to *fallback* (default: the cautious
    base :class:`Expert`).
    """

    def __init__(
        self,
        answers: Dict[str, object],
        fallback: Optional[Expert] = None,
    ) -> None:
        self.answers = dict(answers)
        self.fallback = fallback or Expert()
        self.unmatched: List[str] = []

    def _lookup(self, key: str):
        if key in self.answers:
            return self.answers[key]
        self.unmatched.append(key)
        return None

    def decide_nei(self, context: NEIContext) -> NEIDecision:
        answer = self._lookup(context.question_key())
        if answer is None:
            return self.fallback.decide_nei(context)
        return answer  # type: ignore[return-value]

    def enforce_fd(self, context: FDContext) -> bool:
        answer = self._lookup(context.question_key())
        if answer is None:
            return self.fallback.enforce_fd(context)
        return bool(answer)

    def validate_fd(self, fd: FunctionalDependency) -> bool:
        answer = self._lookup(f"validate:{fd!r}")
        if answer is None:
            return self.fallback.validate_fd(fd)
        return bool(answer)

    def conceptualize_hidden_object(self, ref: AttributeRef) -> bool:
        answer = self._lookup(f"hidden:{ref!r}")
        if answer is None:
            return self.fallback.conceptualize_hidden_object(ref)
        return bool(answer)

    def name_intersection(self, context: NEIContext, taken: Tuple[str, ...]) -> str:
        answer = self._lookup(f"name_intersection:{context.join!r}")
        if answer is None:
            return self.fallback.name_intersection(context, taken)
        return str(answer)

    def name_hidden_object(self, ref: AttributeRef, taken: Tuple[str, ...]) -> str:
        answer = self._lookup(f"name_hidden:{ref!r}")
        if answer is None:
            return self.fallback.name_hidden_object(ref, taken)
        return str(answer)

    def name_fd_relation(self, fd: FunctionalDependency, taken: Tuple[str, ...]) -> str:
        answer = self._lookup(f"name_fd:{fd!r}")
        if answer is None:
            return self.fallback.name_fd_relation(fd, taken)
        return str(answer)


@dataclass
class Interaction:
    """One logged expert interaction."""

    kind: str
    question: str
    answer: str
    value: object = None        # the actual answer object, for replay


class RecordingExpert(Expert):
    """Wrapper that logs and counts every question asked of *inner*.

    The S4 benchmark reports these counts as the method's interactive
    cost; :meth:`to_script` turns a recorded session (e.g. an
    interactive one) into a :class:`ScriptedExpert` answer dictionary so
    the run can be replayed exactly.  Naming calls are logged but not
    counted as *decisions*.

    With a :class:`~repro.obs.provenance.ProvenanceLedger` attached,
    every interaction additionally becomes a ``decision`` node of the
    lineage DAG, so the phases can link the artifacts an answer
    justified to the exact prompt/answer pair (via
    ``ledger.last_decision()``).
    """

    def __init__(
        self, inner: Expert, ledger: Optional["ProvenanceLedger"] = None
    ) -> None:
        self.inner = inner
        self.log: List[Interaction] = []
        self.ledger = ledger

    @property
    def decision_count(self) -> int:
        return sum(1 for i in self.log if i.kind != "naming")

    def to_script(self) -> Dict[str, object]:
        """The recorded answers, keyed for :class:`ScriptedExpert`.

        A later answer to the same question overwrites an earlier one
        (the replay keeps the final decision).
        """
        return {i.question: i.value for i in self.log}

    def _record(self, kind: str, question: str, answer: object):
        self.log.append(Interaction(kind, question, repr(answer), answer))
        if self.ledger is not None:
            self.ledger.decision(kind, question, answer)
        return answer

    def decide_nei(self, context: NEIContext) -> NEIDecision:
        return self._record(
            "nei", context.question_key(), self.inner.decide_nei(context)
        )

    def enforce_fd(self, context: FDContext) -> bool:
        return self._record(
            "enforce", context.question_key(), self.inner.enforce_fd(context)
        )

    def validate_fd(self, fd: FunctionalDependency) -> bool:
        return self._record("validate", f"validate:{fd!r}", self.inner.validate_fd(fd))

    def conceptualize_hidden_object(self, ref: AttributeRef) -> bool:
        return self._record(
            "hidden", f"hidden:{ref!r}", self.inner.conceptualize_hidden_object(ref)
        )

    def name_intersection(self, context: NEIContext, taken: Tuple[str, ...]) -> str:
        return self._record(
            "naming",
            f"name_intersection:{context.join!r}",
            self.inner.name_intersection(context, taken),
        )

    def name_hidden_object(self, ref: AttributeRef, taken: Tuple[str, ...]) -> str:
        return self._record(
            "naming", f"name_hidden:{ref!r}", self.inner.name_hidden_object(ref, taken)
        )

    def name_fd_relation(self, fd: FunctionalDependency, taken: Tuple[str, ...]) -> str:
        return self._record(
            "naming", f"name_fd:{fd!r}", self.inner.name_fd_relation(fd, taken)
        )


class InteractiveExpert(Expert):
    """Prompt a human on stdin — the paper's actual setting.

    *input_fn*/*print_fn* are injectable for testing.
    """

    def __init__(
        self,
        input_fn: Callable[[str], str] = input,
        print_fn: Callable[[str], None] = print,
    ) -> None:
        self._input = input_fn
        self._print = print_fn

    def _ask_yes_no(self, prompt: str) -> bool:
        while True:
            answer = self._input(f"{prompt} [y/n] ").strip().lower()
            if answer in ("y", "yes"):
                return True
            if answer in ("n", "no"):
                return False
            self._print("please answer y or n")

    def decide_nei(self, context: NEIContext) -> NEIDecision:
        j = context.join
        self._print(
            f"Non-empty intersection for {j!r}: "
            f"|left|={context.n_left}, |right|={context.n_right}, "
            f"|common|={context.n_common} (overlap {context.overlap:.0%})"
        )
        while True:
            choice = self._input(
                "  (c)onceptualize new relation / force (l)eft<<right / "
                "force (r)ight<<left / (i)gnore? "
            ).strip().lower()
            if choice == "c":
                name = self._input("  name for the new relation: ").strip()
                if name:
                    return ConceptualizeIntersection(name)
            elif choice == "l":
                return ForceInclusion("left_in_right")
            elif choice == "r":
                return ForceInclusion("right_in_left")
            elif choice == "i":
                return IgnoreIntersection()

    def enforce_fd(self, context: FDContext) -> bool:
        self._print(
            f"{context.fd!r} fails on the extension "
            f"(clean groups: {context.satisfaction_ratio:.0%})"
        )
        for w in context.witnesses:
            self._print(f"  counterexample: {w}")
        return self._ask_yes_no("enforce the dependency anyway?")

    def validate_fd(self, fd: FunctionalDependency) -> bool:
        return self._ask_yes_no(f"{fd!r} holds in the data; is it meaningful?")

    def conceptualize_hidden_object(self, ref: AttributeRef) -> bool:
        return self._ask_yes_no(f"conceptualize {ref!r} as a hidden object?")

    def name_hidden_object(self, ref: AttributeRef, taken: Tuple[str, ...]) -> str:
        name = self._input(f"name for the object identified by {ref!r}: ").strip()
        return name or super().name_hidden_object(ref, taken)

    def name_fd_relation(self, fd: FunctionalDependency, taken: Tuple[str, ...]) -> str:
        name = self._input(f"name for the relation split off by {fd!r}: ").strip()
        return name or super().name_fd_relation(fd, taken)
