"""LHS-Discovery (§6.2.1): candidate identifiers of hidden objects.

Scans the elicited inclusion dependencies for *non-key* attribute sets —
the attributes practitioners navigate with although no relation
conceptualizes them.  Two cases per dependency ``R_i[A_i] ≪ R_j[A_j]``:

- ``R_i`` is a relation of ``S`` (a conceptualized intersection — by
  construction it can only appear on the left): when the right-hand side
  ``R_j.A_j`` is not a key, it joins the hidden-object set ``H`` — the
  expert already chose to conceptualize a subset of its values;
- otherwise each non-key side joins the candidate set ``LHS``.

``LHS`` and ``H`` are kept disjoint: an attribute set promoted to ``H``
leaves ``LHS`` (it is already conceptualized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.dependencies.ind import InclusionDependency
from repro.relational.attribute import AttributeRef
from repro.relational.schema import DatabaseSchema

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.provenance import ProvenanceLedger


@dataclass
class LHSDiscoveryResult:
    """The sets ``LHS`` (candidate identifiers) and ``H`` (hidden objects)."""

    lhs: List[AttributeRef] = field(default_factory=list)
    hidden: List[AttributeRef] = field(default_factory=list)

    def add_lhs(self, ref: AttributeRef) -> None:
        if ref not in self.lhs and ref not in self.hidden:
            self.lhs.append(ref)
            self.lhs.sort(key=lambda r: r.sort_key())

    def add_hidden(self, ref: AttributeRef) -> None:
        if ref in self.lhs:
            self.lhs.remove(ref)
        if ref not in self.hidden:
            self.hidden.append(ref)
            self.hidden.sort(key=lambda r: r.sort_key())

    def __repr__(self) -> str:
        return f"LHSDiscoveryResult(LHS={self.lhs}, H={self.hidden})"


class LHSDiscovery:
    """Runs LHS-Discovery over a schema ``R ⊔ S`` and an IND set."""

    def __init__(
        self,
        schema: DatabaseSchema,
        s_names: Iterable[str],
        ledger: Optional["ProvenanceLedger"] = None,
    ) -> None:
        self.schema = schema
        self.s_names = set(s_names)
        self.ledger = ledger

    def run(self, inds: Sequence[InclusionDependency]) -> LHSDiscoveryResult:
        result = LHSDiscoveryResult()
        for ind in sorted(inds, key=lambda i: i.sort_key()):
            self._process(ind, result)
        return result

    # ------------------------------------------------------------------
    def _is_key(self, relation: str, attrs: Sequence[str]) -> bool:
        if relation not in self.schema:
            return False
        return self.schema.relation(relation).is_key(attrs)

    def _process(self, ind: InclusionDependency, result: LHSDiscoveryResult) -> None:
        s_involved = (
            ind.lhs_relation in self.s_names or ind.rhs_relation in self.s_names
        )
        if s_involved:
            # (i) conceptualized intersection: a non-key right-hand side is
            # a hidden object (its values are already partly conceptualized)
            if ind.rhs_relation not in self.s_names and not self._is_key(
                ind.rhs_relation, ind.rhs_attrs
            ):
                ref = AttributeRef(ind.rhs_relation, ind.rhs_attrs)
                result.add_hidden(ref)
                self._emit(ref, ind, member="H")
            return
        # (ii)/(iii) plain dependency: every non-key side is a candidate
        if not self._is_key(ind.lhs_relation, ind.lhs_attrs):
            ref = AttributeRef(ind.lhs_relation, ind.lhs_attrs)
            result.add_lhs(ref)
            self._emit(ref, ind, member="LHS")
        if not self._is_key(ind.rhs_relation, ind.rhs_attrs):
            ref = AttributeRef(ind.rhs_relation, ind.rhs_attrs)
            result.add_lhs(ref)
            self._emit(ref, ind, member="LHS")

    def _emit(
        self, ref: AttributeRef, ind: InclusionDependency, member: str
    ) -> None:
        """Record one candidate identifier and the IND it was seen in."""
        if self.ledger is None:
            return
        cand_id = self.ledger.node("candidate", repr(ref))
        node = self.ledger.nodes[cand_id]
        # H is sticky: a promoted candidate never demotes back to LHS
        if node.attrs.get("set") != "H":
            node.attrs["set"] = member
        ind_id = self.ledger.node("ind", repr(ind))
        self.ledger.link(ind_id, cand_id, "navigation")


def discover_lhs(
    schema: DatabaseSchema,
    s_names: Iterable[str],
    inds: Sequence[InclusionDependency],
) -> LHSDiscoveryResult:
    """One-shot convenience wrapper around :class:`LHSDiscovery`."""
    return LHSDiscovery(schema, s_names).run(inds)
