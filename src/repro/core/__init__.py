"""The paper's method: the five algorithms and the expert-user protocol.

- :mod:`repro.core.expert` — the interactive decision points, typed;
- :mod:`repro.core.ind_discovery` — IND-Discovery (§6.1);
- :mod:`repro.core.lhs_discovery` — LHS-Discovery (§6.2.1);
- :mod:`repro.core.rhs_discovery` — RHS-Discovery (§6.2.2);
- :mod:`repro.core.restruct` — Restruct (§7);
- :mod:`repro.core.translate` — Translate (§7, the EER mapping);
- :mod:`repro.core.pipeline` — the end-to-end DBRE pipeline.
"""

from repro.core.expert import (
    Expert,
    AutoExpert,
    ScriptedExpert,
    RecordingExpert,
    InteractiveExpert,
    NEIContext,
    NEIDecision,
    ConceptualizeIntersection,
    ForceInclusion,
    IgnoreIntersection,
)
from repro.core.ind_discovery import INDDiscovery, INDDiscoveryResult
from repro.core.lhs_discovery import LHSDiscovery, LHSDiscoveryResult
from repro.core.rhs_discovery import RHSDiscovery, RHSDiscoveryResult
from repro.core.restruct import Restruct, RestructResult
from repro.core.translate import Translate
from repro.core.pipeline import DBREPipeline, PipelineResult
from repro.core.report import SessionReport, session_report

__all__ = [
    "SessionReport",
    "session_report",
    "Expert",
    "AutoExpert",
    "ScriptedExpert",
    "RecordingExpert",
    "InteractiveExpert",
    "NEIContext",
    "NEIDecision",
    "ConceptualizeIntersection",
    "ForceInclusion",
    "IgnoreIntersection",
    "INDDiscovery",
    "INDDiscoveryResult",
    "LHSDiscovery",
    "LHSDiscoveryResult",
    "RHSDiscovery",
    "RHSDiscoveryResult",
    "Restruct",
    "RestructResult",
    "Translate",
    "DBREPipeline",
    "PipelineResult",
]
