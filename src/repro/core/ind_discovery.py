"""IND-Discovery (§6.1): from equi-joins to inclusion dependencies.

For each equi-join ``R_k[A_k] ⋈ R_l[A_l]`` of ``Q``, the algorithm
computes the three counts

    ``N_k = ||r_k[A_k]||``, ``N_l = ||r_l[A_l]||``,
    ``N_kl = ||r_k[A_k] ⋈ r_l[A_l]||``

and classifies the pair:

- ``N_kl = 0`` — empty intersection, a data-integrity smell; nothing is
  elicited (case i);
- ``N_kl = N_k`` and/or ``N_kl = N_l`` — one side's values are contained
  in the other's; the inclusion dependency (or both, when the sides are
  equal) is elicited (cases ii/iii);
- otherwise — a *non-empty intersection* (NEI); the expert user decides:
  conceptualize the intersection as a new relation of ``S`` (case iv),
  force a direction despite the dirty extension (cases v/vi), or ignore
  it (case vii).

A conceptualized intersection becomes a real relation in the database,
keyed by its attributes and populated with the shared values, plus the
two inclusion dependencies ``R_p[A_p] ≪ R_k[A_k]`` and
``R_p[A_p] ≪ R_l[A_l]``.

When an :class:`~repro.engine.executor.BatchExecutor` is supplied, the
three counts of **every** join are prefetched as one declarative probe
batch before the classification loop runs.  This is safe because the
only mutation the loop performs — conceptualizing an intersection —
creates a *fresh* relation (its name is uniquified), so no later join
of ``Q`` can observe it; the counts, the classification cases and the
order of expert questions are exactly those of the serial walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.expert import (
    ConceptualizeIntersection,
    Expert,
    ForceInclusion,
    IgnoreIntersection,
    NEIContext,
)
from repro.dependencies.ind import InclusionDependency
from repro.exceptions import ProcessError
from repro.programs.equijoin import EquiJoin
from repro.relational.algebra import natural_intersection
from repro.relational.attribute import Attribute
from repro.relational.database import Database
from repro.relational.schema import RelationSchema
from repro.util.naming import unique_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import BatchExecutor
    from repro.obs.provenance import ProvenanceLedger


@dataclass(frozen=True)
class JoinOutcome:
    """How one equi-join of ``Q`` was classified."""

    join: EquiJoin
    n_left: int
    n_right: int
    n_common: int
    case: str                 # "empty" | "inclusion" | "nei"
    decision: str = ""        # for NEIs: "conceptualize" | "force" | "ignore"
    elicited: Tuple[InclusionDependency, ...] = ()


@dataclass
class INDDiscoveryResult:
    """The output sets of IND-Discovery: ``IND`` and ``S``."""

    inds: List[InclusionDependency] = field(default_factory=list)
    new_relations: List[RelationSchema] = field(default_factory=list)
    outcomes: List[JoinOutcome] = field(default_factory=list)

    @property
    def s_names(self) -> List[str]:
        return [r.name for r in self.new_relations]

    def add_ind(self, ind: InclusionDependency) -> None:
        """`⊔`: union with duplicate suppression, deterministic order."""
        if ind not in self.inds:
            self.inds.append(ind)
            self.inds.sort(key=lambda i: i.sort_key())

    def __repr__(self) -> str:
        return (
            f"INDDiscoveryResult({len(self.inds)} INDs, "
            f"S={self.s_names})"
        )


class INDDiscovery:
    """Runs the IND-Discovery algorithm against one database."""

    def __init__(
        self,
        database: Database,
        expert: Optional[Expert] = None,
        engine: Optional["BatchExecutor"] = None,
        ledger: Optional["ProvenanceLedger"] = None,
    ) -> None:
        self.database = database
        self.expert = expert or Expert()
        self.engine = engine
        self.ledger = ledger

    def run(self, equijoins: Sequence[EquiJoin]) -> INDDiscoveryResult:
        """Process every element of ``Q`` in deterministic order."""
        result = INDDiscoveryResult()
        joins = sorted(set(equijoins), key=lambda j: j.sort_key())
        counts = self._prefetch(joins)
        for index, join in enumerate(joins, start=1):
            self._process(join, result, counts.get(join) if counts else None)
            self.database.tracer.progress(
                "equijoin classified", current=index, total=len(joins),
            )
        return result

    # ------------------------------------------------------------------
    def _prefetch(
        self, joins: Sequence[EquiJoin]
    ) -> Optional[Dict[EquiJoin, Tuple[int, int, int]]]:
        """Batch the ``(N_k, N_l, N_kl)`` counts of every live join."""
        if self.engine is None:
            return None
        from repro.engine.probes import Probe

        probes: List[Probe] = []
        live: List[EquiJoin] = []
        for join in joins:
            (k_rel, k_attrs), (l_rel, l_attrs) = join.sides()
            if (k_rel, k_attrs) == (l_rel, l_attrs):
                continue  # reflexive: classified without extension access
            probes.append(Probe.distinct(k_rel, k_attrs))
            probes.append(Probe.distinct(l_rel, l_attrs))
            probes.append(Probe.join(k_rel, k_attrs, l_rel, l_attrs))
            live.append(join)
        values = self.engine.run(probes)
        return {
            join: (values[3 * i], values[3 * i + 1], values[3 * i + 2])
            for i, join in enumerate(live)
        }

    def _process(
        self,
        join: EquiJoin,
        result: INDDiscoveryResult,
        counts: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        (k_rel, k_attrs), (l_rel, l_attrs) = join.sides()
        if (k_rel, k_attrs) == (l_rel, l_attrs):
            # a reflexive join (same relation, same attributes) can only
            # yield the trivial R[A] ≪ R[A]; it carries no interrelation
            # information, so it is classified and dropped without
            # touching the extension
            outcome = JoinOutcome(join, 0, 0, 0, case="reflexive")
            result.outcomes.append(outcome)
            self._emit(outcome)
            return
        if counts is not None:
            n_k, n_l, n_kl = counts
        else:
            n_k = self.database.count_distinct(k_rel, k_attrs)
            n_l = self.database.count_distinct(l_rel, l_attrs)
            n_kl = self.database.join_count(k_rel, k_attrs, l_rel, l_attrs)

        if n_kl == 0:
            # (i) possible data-integrity problem; nothing elicited
            outcome = JoinOutcome(join, n_k, n_l, n_kl, case="empty")
            result.outcomes.append(outcome)
            self._emit(outcome)
            return

        if n_kl == n_k or n_kl == n_l:
            elicited: List[InclusionDependency] = []
            if n_kl == n_k and n_k <= n_l:                       # (ii)
                ind = InclusionDependency(k_rel, k_attrs, l_rel, l_attrs)
                result.add_ind(ind)
                elicited.append(ind)
            if n_kl == n_l and n_l <= n_k:                       # (iii)
                ind = InclusionDependency(l_rel, l_attrs, k_rel, k_attrs)
                result.add_ind(ind)
                elicited.append(ind)
            outcome = JoinOutcome(
                join, n_k, n_l, n_kl, case="inclusion",
                elicited=tuple(elicited),
            )
            result.outcomes.append(outcome)
            self._emit(outcome)
            return

        # non-empty intersection distinct from both value sets
        context = NEIContext(join, n_k, n_l, n_kl)
        decision = self.expert.decide_nei(context)
        decision_id = (
            self.ledger.last_decision() if self.ledger is not None else None
        )

        if isinstance(decision, ConceptualizeIntersection):     # (iv)
            new_rel, inds = self._conceptualize(join, decision.name)
            result.new_relations.append(new_rel)
            for ind in inds:
                result.add_ind(ind)
            outcome = JoinOutcome(
                join, n_k, n_l, n_kl, case="nei",
                decision="conceptualize", elicited=tuple(inds),
            )
            result.outcomes.append(outcome)
            self._emit(outcome, decision_id, new_relation=new_rel)
            return

        if isinstance(decision, ForceInclusion):                # (v)/(vi)
            if decision.direction == "left_in_right":
                ind = InclusionDependency(k_rel, k_attrs, l_rel, l_attrs)
            else:
                ind = InclusionDependency(l_rel, l_attrs, k_rel, k_attrs)
            result.add_ind(ind)
            outcome = JoinOutcome(
                join, n_k, n_l, n_kl, case="nei",
                decision="force", elicited=(ind,),
            )
            result.outcomes.append(outcome)
            self._emit(outcome, decision_id)
            return

        if isinstance(decision, IgnoreIntersection):            # (vii)
            outcome = JoinOutcome(
                join, n_k, n_l, n_kl, case="nei", decision="ignore"
            )
            result.outcomes.append(outcome)
            self._emit(outcome, decision_id)
            return

        raise ProcessError(f"unknown NEI decision {decision!r}")

    # ------------------------------------------------------------------
    # provenance emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        outcome: JoinOutcome,
        decision_id: Optional[str] = None,
        new_relation: Optional[RelationSchema] = None,
    ) -> None:
        """Record one join's classification in the lineage DAG.

        Pure bookkeeping over counts the algorithm already computed —
        the ledger issues no extension query of its own; the count
        evidence is resolved against the tracer's event stream by call
        signature (identical in serial and batched mode).
        """
        if self.ledger is None:
            return
        join = outcome.join
        join_id = self.ledger.node("equijoin", repr(join))
        attrs = {"case": outcome.case}
        if outcome.case != "reflexive":
            attrs.update(
                n_left=outcome.n_left,
                n_right=outcome.n_right,
                n_common=outcome.n_common,
            )
        if outcome.decision:
            attrs["decision"] = outcome.decision
        cls_id = self.ledger.node("classification", repr(join), **attrs)
        self.ledger.link(join_id, cls_id, "classified")
        if outcome.case != "reflexive":
            (k_rel, k_attrs), (l_rel, l_attrs) = join.sides()
            self.ledger.attach_evidence(cls_id, "count_distinct", (k_rel,), (k_attrs,))
            self.ledger.attach_evidence(cls_id, "count_distinct", (l_rel,), (l_attrs,))
            self.ledger.attach_evidence(
                cls_id, "join_count", (k_rel, l_rel), (k_attrs, l_attrs)
            )
        if decision_id is not None:
            self.ledger.link(decision_id, cls_id, "decided")
        for ind in outcome.elicited:
            ind_id = self.ledger.node("ind", repr(ind))
            self.ledger.link(cls_id, ind_id, "elicited")
        if new_relation is not None:
            rel_id = self.ledger.node(
                "relation",
                new_relation.name,
                origin="intersection",
                source=repr(join),
            )
            self.ledger.link(cls_id, rel_id, "conceptualized")

    # ------------------------------------------------------------------
    def _conceptualize(
        self, join: EquiJoin, name: str
    ) -> Tuple[RelationSchema, List[InclusionDependency]]:
        """Create ``R_p(A_p)``, keyed and populated with the intersection."""
        (k_rel, k_attrs), (l_rel, l_attrs) = join.sides()
        name = unique_name(name, self.database.schema.relation_names)

        # attribute names: reuse the shared names when both sides agree,
        # otherwise take the left side's names (documented in DESIGN.md)
        attr_names = [
            ka if ka == la else ka for ka, la in zip(k_attrs, l_attrs)
        ]
        left_schema = self.database.schema.relation(k_rel)
        attrs = [
            Attribute(an, left_schema.attribute(ka).dtype, nullable=False)
            for an, ka in zip(attr_names, k_attrs)
        ]
        new_rel = RelationSchema(name, attrs)
        new_rel.declare_unique(attr_names)
        table = self.database.create_relation(new_rel)

        shared = natural_intersection(
            self.database.table(k_rel), k_attrs,
            self.database.table(l_rel), l_attrs,
        )
        for values in sorted(shared, key=repr):
            table.insert(list(values))

        inds = [
            InclusionDependency(name, attr_names, k_rel, k_attrs),
            InclusionDependency(name, attr_names, l_rel, l_attrs),
        ]
        return new_rel, inds


def discover_inds(
    database: Database,
    equijoins: Sequence[EquiJoin],
    expert: Optional[Expert] = None,
    engine: Optional["BatchExecutor"] = None,
) -> INDDiscoveryResult:
    """One-shot convenience wrapper around :class:`INDDiscovery`."""
    return INDDiscovery(database, expert, engine=engine).run(equijoins)
