"""CSV import/export of extensions.

The CSV dialect is simple: header row of attribute names, empty string
means NULL for nullable attributes, values are parsed back through each
attribute's domain (ints and reals recover their types).
"""

from __future__ import annotations

import csv
import os
from typing import List

from repro.exceptions import DataError
from repro.relational.database import Database
from repro.relational.domain import BOOLEAN, INTEGER, NULL, REAL, is_null
from repro.relational.schema import RelationSchema
from repro.relational.table import Table


def dump_table_csv(table: Table, path: str) -> None:
    """Write *table* to *path* (header + one row per tuple)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.attribute_names)
        for row in table:
            writer.writerow(
                ["" if is_null(v) else v for v in row.values]
            )


def _parse_value(text: str, dtype) -> object:
    if text == "":
        return NULL
    if dtype == INTEGER:
        return int(text)
    if dtype == REAL:
        return float(text)
    if dtype == BOOLEAN:
        if text in ("True", "true", "1"):
            return True
        if text in ("False", "false", "0"):
            return False
        raise DataError(f"not a boolean: {text!r}")
    return text


def load_table_csv(schema: RelationSchema, path: str) -> Table:
    """Read a table for *schema* from *path*; header must match."""
    table = Table(schema)
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return table
        if tuple(header) != schema.attribute_names:
            raise DataError(
                f"CSV header {header} does not match schema "
                f"{list(schema.attribute_names)}"
            )
        dtypes = [schema.attribute(a).dtype for a in header]
        for line in reader:
            if len(line) != len(header):
                raise DataError(f"row arity mismatch in {path}: {line}")
            table.insert([
                _parse_value(text, dtype) for text, dtype in zip(line, dtypes)
            ])
    return table


def dump_database_csv(database: Database, directory: str) -> List[str]:
    """One CSV per relation under *directory*; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for table in database.tables():
        path = os.path.join(directory, f"{table.name}.csv")
        dump_table_csv(table, path)
        paths.append(path)
    return paths


def load_database_csv(database: Database, directory: str) -> None:
    """Fill *database* (schemas already declared) from ``<name>.csv`` files.

    Relations without a file stay empty; extra files are ignored.
    """
    for relation in database.schema:
        path = os.path.join(directory, f"{relation.name}.csv")
        if not os.path.exists(path):
            continue
        loaded = load_table_csv(relation, path)
        database.table(relation.name).replace_rows(
            [row.values for row in loaded]
        )
