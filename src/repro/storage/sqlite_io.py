"""SQLite files as a persistence format for whole databases.

Unlike the backend's working tables (kept free of constraints so dirty
legacy extensions remain loadable), a ``.db`` written here is a *data
dictionary carrier*: every declared ``unique`` becomes a ``PRIMARY
KEY``/``UNIQUE`` clause and every non-nullable attribute a ``NOT NULL``,
so :func:`repro.backends.open_sqlite` recovers the paper's ``K`` and
``N`` sets from SQLite's own catalog with nothing hand-declared.  The
extension must satisfy its declarations to round-trip — SQLite enforces
what it declares.
"""

from __future__ import annotations

import os
import sqlite3
from typing import List

from repro.exceptions import DataError
from repro.relational.database import Database
from repro.relational.domain import is_null
from repro.relational.schema import RelationSchema
from repro.backends.sqlite import _SQL_TYPES, quote_identifier


def declared_table_sql(relation: RelationSchema) -> str:
    """``CREATE TABLE`` DDL carrying the relation's full dictionary entry."""
    primary = relation.primary_key()
    parts: List[str] = []
    for attr in relation.attributes:
        column = f"{quote_identifier(attr.name)} {_SQL_TYPES[attr.dtype.name]}"
        if not attr.nullable:
            column += " NOT NULL"
        parts.append(column)
    for unique in relation.uniques:
        cols = ", ".join(quote_identifier(a) for a in unique.attributes)
        keyword = "PRIMARY KEY" if unique.attributes == primary else "UNIQUE"
        parts.append(f"{keyword} ({cols})")
    return (
        f"CREATE TABLE {quote_identifier(relation.name)} ({', '.join(parts)})"
    )


def save_sqlite(database: Database, path: str) -> None:
    """Write *database* — schema, constraints and extension — to *path*.

    The file is recreated from scratch; open it again with
    :func:`repro.backends.open_sqlite` to reverse-engineer it with
    ``K``/``N`` taken from the data dictionary.
    """
    if os.path.exists(path):
        os.remove(path)
    conn = sqlite3.connect(path)
    try:
        with conn:
            for relation in database.schema:
                conn.execute(declared_table_sql(relation))
                marks = ", ".join("?" for _ in relation.attributes)
                conn.executemany(
                    f"INSERT INTO {quote_identifier(relation.name)} "
                    f"VALUES ({marks})",
                    (
                        [None if is_null(v) else v for v in values]
                        for values in database.backend.rows(relation.name)
                    ),
                )
    except sqlite3.IntegrityError as exc:
        conn.close()
        if os.path.exists(path):  # do not leave a half-written file
            os.remove(path)
        raise DataError(
            f"extension violates its declared constraints: {exc}"
        ) from exc
    finally:
        conn.close()
