"""JSON documents for schemas, extensions, dependency sets and EER schemas.

Formats are versioned (``"format": "repro/<kind>@1"``) and intentionally
explicit — they are audit artifacts of a reverse-engineering session,
meant to be read by humans as much as reloaded by the library.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Sequence

from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.eer.model import EERSchema, EntityType, Participation, RelationshipType
from repro.exceptions import DataError
from repro.relational.attribute import Attribute
from repro.relational.database import Database
from repro.relational.domain import NULL, is_null, type_named
from repro.relational.schema import DatabaseSchema, RelationSchema


# ----------------------------------------------------------------------
# relational schema
# ----------------------------------------------------------------------
def schema_to_dict(schema: DatabaseSchema) -> Dict[str, Any]:
    """Serialize a relational schema (relations, types, uniques)."""
    return {
        "format": "repro/schema@1",
        "relations": [
            {
                "name": r.name,
                "attributes": [
                    {
                        "name": a.name,
                        "type": a.dtype.name,
                        "nullable": a.nullable,
                    }
                    for a in r.attributes
                ],
                "unique": [list(u.attributes) for u in r.uniques],
            }
            for r in schema
        ],
    }


def schema_from_dict(document: Dict[str, Any]) -> DatabaseSchema:
    """Rebuild a relational schema from its JSON document."""
    if document.get("format") != "repro/schema@1":
        raise DataError(f"not a schema document: {document.get('format')!r}")
    schema = DatabaseSchema()
    for rel in document["relations"]:
        attrs = [
            Attribute(a["name"], type_named(a["type"]), a.get("nullable", True))
            for a in rel["attributes"]
        ]
        relation = RelationSchema(rel["name"], attrs)
        for unique in rel.get("unique", []):
            relation.declare_unique(tuple(unique))
        schema.add(relation)
    return schema


# ----------------------------------------------------------------------
# whole database (schema + extension)
# ----------------------------------------------------------------------
def database_to_dict(database: Database) -> Dict[str, Any]:
    """Serialize a whole database: schema plus every extension."""
    return {
        "format": "repro/database@1",
        "schema": schema_to_dict(database.schema),
        "tables": {
            table.name: [
                [None if is_null(v) else v for v in row.values]
                for row in table
            ]
            for table in database.tables()
        },
    }


def database_from_dict(document: Dict[str, Any]) -> Database:
    """Rebuild a populated database from its JSON document."""
    if document.get("format") != "repro/database@1":
        raise DataError(f"not a database document: {document.get('format')!r}")
    schema = schema_from_dict(document["schema"])
    database = Database(schema)
    for name, rows in document["tables"].items():
        database.insert_many(
            name, ([NULL if v is None else v for v in row] for row in rows)
        )
    return database


# ----------------------------------------------------------------------
# dependencies
# ----------------------------------------------------------------------
def dependencies_to_dict(
    fds: Sequence[FunctionalDependency],
    inds: Sequence[InclusionDependency],
) -> Dict[str, Any]:
    """Serialize elicited dependency sets (FDs and INDs)."""
    return {
        "format": "repro/dependencies@1",
        "functional": [
            {
                "relation": fd.relation,
                "lhs": list(fd.lhs),
                "rhs": list(fd.rhs),
            }
            for fd in fds
        ],
        "inclusion": [
            {
                "lhs_relation": ind.lhs_relation,
                "lhs": list(ind.lhs_attrs),
                "rhs_relation": ind.rhs_relation,
                "rhs": list(ind.rhs_attrs),
            }
            for ind in inds
        ],
    }


def dependencies_from_dict(document: Dict[str, Any]):
    """Rebuild ``(fds, inds)`` from a dependencies document."""
    if document.get("format") != "repro/dependencies@1":
        raise DataError(
            f"not a dependencies document: {document.get('format')!r}"
        )
    fds = [
        FunctionalDependency(d["relation"], tuple(d["lhs"]), tuple(d["rhs"]))
        for d in document["functional"]
    ]
    inds = [
        InclusionDependency(
            d["lhs_relation"], tuple(d["lhs"]), d["rhs_relation"], tuple(d["rhs"])
        )
        for d in document["inclusion"]
    ]
    return fds, inds


# ----------------------------------------------------------------------
# EER schema
# ----------------------------------------------------------------------
def eer_to_dict(schema: EERSchema) -> Dict[str, Any]:
    """Serialize an EER schema (entities, relationships, is-a)."""
    return {
        "format": "repro/eer@1",
        "entities": [
            {
                "name": e.name,
                "attributes": list(e.attributes),
                "key": list(e.key),
                "weak": e.weak,
                "owners": list(e.owners),
                "discriminator": list(e.discriminator),
            }
            for e in schema.entities
        ],
        "relationships": [
            {
                "name": r.name,
                "attributes": list(r.attributes),
                "participants": [
                    {
                        "entity": p.entity,
                        "cardinality": p.cardinality,
                        "role": p.role,
                        "via": list(p.via),
                    }
                    for p in r.participants
                ],
            }
            for r in schema.relationships
        ],
        "isa": [{"sub": l.sub, "sup": l.sup} for l in schema.isa_links],
    }


def eer_from_dict(document: Dict[str, Any]) -> EERSchema:
    """Rebuild an EER schema from its JSON document."""
    if document.get("format") != "repro/eer@1":
        raise DataError(f"not an EER document: {document.get('format')!r}")
    schema = EERSchema()
    for e in document["entities"]:
        schema.add_entity(
            EntityType(
                e["name"],
                tuple(e.get("attributes", ())),
                tuple(e.get("key", ())),
                e.get("weak", False),
                tuple(e.get("owners", ())),
                tuple(e.get("discriminator", ())),
            )
        )
    for r in document["relationships"]:
        schema.add_relationship(
            RelationshipType(
                r["name"],
                tuple(
                    Participation(
                        p["entity"],
                        p.get("cardinality", "N"),
                        p.get("role", ""),
                        tuple(p.get("via", ())),
                    )
                    for p in r["participants"]
                ),
                tuple(r.get("attributes", ())),
            )
        )
    for link in document["isa"]:
        schema.add_isa(link["sub"], link["sup"])
    return schema


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
def save_json(document: Dict[str, Any], path: str) -> None:
    """Write *document* to *path* as stable, human-diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Dict[str, Any]:
    """Read a JSON document from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# the streamed (JSONL) audit artifacts — traces, provenance — share one
# line-delimited carrier; it lives in repro.util.jsonl because both the
# storage layer and repro.obs (below the relational core) need it
from repro.util.jsonl import load_jsonl, save_jsonl  # noqa: E402,F401
