"""The buffer pool: a bounded set of in-memory page frames.

All page traffic of the paged backend goes through one
:class:`BufferPool`.  The pool holds at most ``capacity`` frames, keyed
by ``(relation, page_id)``; a :meth:`~BufferPool.fetch` that finds its
frame resident is a **hit**, otherwise the pool calls its reader to pull
the page off disk (**miss**), evicting the least-recently-used unpinned
frame first when full (**eviction**), writing it back through the
writer if dirty (**write-back**).

Fetching pins the frame; callers must :meth:`~BufferPool.unpin` when
done (``dirty=True`` after mutating the page image).  A pinned frame is
never evicted, so the scan loops of the backend pin exactly one page at
a time — that, plus the capacity bound, is the whole out-of-core
argument: peak resident data is ``capacity × page_size`` bytes no
matter how large the extension.

:class:`PoolStats` counts hits, misses, evictions, and write-backs;
the backend snapshots it into the ``PrimitiveEvent`` telemetry stream
so ``repro profile`` and ``repro trace diff`` can attribute a
regression to pool thrash.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.exceptions import StorageError
from repro.storage.paged.page import Page

__all__ = ["BufferPool", "PoolStats"]

#: (relation name, page id)
FrameKey = Tuple[str, int]


@dataclass
class PoolStats:
    """Cumulative buffer-pool counters (monotonic; never reset)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    write_backs: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches served from memory (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "pool_hits": self.hits,
            "pool_misses": self.misses,
            "pool_evictions": self.evictions,
            "pool_write_backs": self.write_backs,
        }


class _Frame:
    """One resident page plus its bookkeeping."""

    __slots__ = ("page", "pins", "dirty")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.pins = 0
        self.dirty = False


class BufferPool:
    """Fixed-capacity page cache with LRU eviction and pin discipline."""

    def __init__(
        self,
        capacity: int,
        reader: Callable[[str, int], Page],
        writer: Callable[[str, Page], None],
    ) -> None:
        if capacity < 1:
            raise StorageError(
                f"buffer pool needs at least one frame, got {capacity}"
            )
        self.capacity = capacity
        self._reader = reader
        self._writer = writer
        #: LRU order: least recently used first, most recent last
        self._frames: "OrderedDict[FrameKey, _Frame]" = OrderedDict()
        self.stats = PoolStats()

    def __len__(self) -> int:
        return len(self._frames)

    def resident_keys(self) -> List[FrameKey]:
        """The resident frames in LRU order (tests and diagnostics)."""
        return list(self._frames)

    # ------------------------------------------------------------------
    # fetch / unpin
    # ------------------------------------------------------------------
    def fetch(self, relation: str, page_id: int) -> Page:
        """The page, resident and pinned; always pair with ``unpin``."""
        key = (relation, page_id)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(key)
        else:
            self.stats.misses += 1
            if len(self._frames) >= self.capacity:
                self._evict_one()
            frame = _Frame(self._reader(relation, page_id))
            self._frames[key] = frame
        frame.pins += 1
        return frame.page

    def unpin(self, relation: str, page_id: int, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` marks the image as modified."""
        key = (relation, page_id)
        frame = self._frames.get(key)
        if frame is None or frame.pins <= 0:
            raise StorageError(
                f"unpin of {relation} page {page_id} without a "
                f"matching fetch"
            )
        frame.pins -= 1
        if dirty:
            frame.dirty = True

    def _evict_one(self) -> None:
        """Drop the least-recently-used unpinned frame (write back first)."""
        for key, frame in self._frames.items():
            if frame.pins == 0:
                if frame.dirty:
                    self._writer(key[0], frame.page)
                    self.stats.write_backs += 1
                del self._frames[key]
                self.stats.evictions += 1
                return
        raise StorageError(
            f"buffer pool exhausted: all {self.capacity} frames are "
            f"pinned; raise --pool-pages"
        )

    # ------------------------------------------------------------------
    # flush / invalidate
    # ------------------------------------------------------------------
    def flush_all(self) -> None:
        """Write every dirty frame back; frames stay resident."""
        for key, frame in self._frames.items():
            if frame.dirty:
                self._writer(key[0], frame.page)
                frame.dirty = False
                self.stats.write_backs += 1

    def invalidate(self, relation: str) -> None:
        """Forget every frame of *relation* without writing back.

        Used when the relation's file is dropped or swapped out from
        under the pool — the frames describe pages that no longer
        exist, so write-back would be wrong, not just wasteful.
        """
        stale = [key for key in self._frames if key[0] == relation]
        for key in stale:
            del self._frames[key]

    def __repr__(self) -> str:
        return (
            f"BufferPool({len(self._frames)}/{self.capacity} frames, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"evictions={self.stats.evictions})"
        )
