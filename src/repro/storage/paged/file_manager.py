"""Page files and the per-relation file manager.

One relation's extension lives in one **page file**: a header page
followed by fixed-size pages (:class:`~repro.storage.paged.page.Page`).
The header page (page 0) carries the file's self-description:

```
offset 0   4s  magic        — b"RPG1"
offset 4   u16 format       — layout version (currently 1)
offset 6   u32 page_size    — every page of this file, header included
offset 10  u32 page_count   — pages allocated so far (header included)
offset 14  u32 free_head    — head of the free-list chain (0 = empty)
offset 18  u32 first_data   — first data page of the relation (0 = empty)
offset 22  u32 last_data    — the append target (0 = empty)
offset 26  u64 row_count    — stored records, kept current on sync
```

Data pages form a singly linked chain through their ``next_page``
header field; scans walk the chain in order, which preserves insertion
order.  Freed pages (a relation rewrite recycles its whole old chain)
are pushed on a **free-list**: each free page stores the id of the next
free page in its first four bytes, and ``allocate`` pops the list
before growing the file.

Every structural failure — a missing file, a short read, a bad magic —
raises :class:`~repro.exceptions.StorageError` with a one-line message
naming the file and the byte offset, never a bare traceback.

The :class:`FileManager` owns the directory of page files (one per
relation, file names percent-encoded so any relation name is safe) and
aggregates physical I/O counters (``pages_read`` / ``pages_written``)
for the buffer-pool telemetry.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, Iterator, List

from repro.exceptions import StorageError
from repro.storage.paged.page import MIN_PAGE_SIZE, Page

__all__ = ["DEFAULT_PAGE_SIZE", "PageFile", "FileManager", "relation_filename"]

#: a common OS page size; small enough that modest pools stay modest
DEFAULT_PAGE_SIZE = 4096

_MAGIC = b"RPG1"
_FORMAT_VERSION = 1
_HEADER = struct.Struct(">4sHIIIIIQ")
_FREE_LINK = struct.Struct(">I")

#: characters that pass through the relation-name encoding unescaped
_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_")


def relation_filename(name: str) -> str:
    """A filesystem-safe, collision-free file name for one relation."""
    encoded = "".join(
        c if c in _SAFE else "%{:02X}".format(ord(c)) for c in name
    )
    return encoded + ".pages"


class PageFile:
    """One relation's pages: header, data chain, free-list."""

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE,
                 create: bool = False) -> None:
        self.path = path
        if create:
            if page_size < MIN_PAGE_SIZE:
                raise StorageError(
                    f"page size {page_size} is below the minimum "
                    f"{MIN_PAGE_SIZE}"
                )
            if page_size > 65536:
                raise StorageError(
                    f"page size {page_size} exceeds 65536 "
                    f"(slot offsets are 16-bit)"
                )
            self.page_size = page_size
            self.page_count = 1
            self.free_head = 0
            self.first_data = 0
            self.last_data = 0
            self.row_count = 0
            self._handle = open(path, "w+b")
            self._handle.write(bytes(page_size))
            self.sync_header()
        else:
            if not os.path.exists(path):
                raise StorageError(f"no such page file: {path}")
            self._handle = open(path, "r+b")
            raw = self._handle.read(_HEADER.size)
            if len(raw) < _HEADER.size:
                raise StorageError(
                    f"truncated page file {path}: {_HEADER.size}-byte "
                    f"header at offset 0, got {len(raw)} byte(s)"
                )
            magic, version, size, count, free, first, last, rows = \
                _HEADER.unpack(raw)
            if magic != _MAGIC:
                raise StorageError(
                    f"not a paged relation file: {path} "
                    f"(bad magic {magic!r} at offset 0)"
                )
            if version != _FORMAT_VERSION:
                raise StorageError(
                    f"unsupported page-file format {version} in {path} "
                    f"(this build reads format {_FORMAT_VERSION})"
                )
            self.page_size = size
            self.page_count = count
            self.free_head = free
            self.first_data = first
            self.last_data = last
            self.row_count = rows
            actual = os.path.getsize(path)
            expected = count * size
            if actual < expected:
                raise StorageError(
                    f"truncated page file {path}: expected {expected} "
                    f"bytes ({count} pages of {size}), got {actual}"
                )

    # ------------------------------------------------------------------
    # raw page I/O
    # ------------------------------------------------------------------
    def read_page(self, page_id: int) -> Page:
        """Read one page image off disk (no pool involved)."""
        if not 1 <= page_id < self.page_count:
            raise StorageError(
                f"{self.path}: no page {page_id} "
                f"(file has {self.page_count} pages)"
            )
        offset = page_id * self.page_size
        self._handle.seek(offset)
        raw = self._handle.read(self.page_size)
        if len(raw) != self.page_size:
            raise StorageError(
                f"truncated page file {self.path}: expected "
                f"{self.page_size} bytes at offset {offset}, got {len(raw)}"
            )
        return Page(page_id, bytearray(raw), self.page_size)

    def write_page(self, page: Page) -> None:
        """Write one page image back to disk."""
        self._handle.seek(page.page_id * self.page_size)
        self._handle.write(page.data)

    def sync_header(self) -> None:
        """Persist the header fields onto page 0."""
        self._handle.seek(0)
        self._handle.write(
            _HEADER.pack(
                _MAGIC, _FORMAT_VERSION, self.page_size, self.page_count,
                self.free_head, self.first_data, self.last_data,
                self.row_count,
            )
        )

    # ------------------------------------------------------------------
    # allocation and the free-list
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """A usable page id: the free-list head, or a fresh page."""
        if self.free_head:
            page_id = self.free_head
            page = self.read_page(page_id)
            (self.free_head,) = _FREE_LINK.unpack_from(page.data, 0)
            return page_id
        page_id = self.page_count
        self.page_count += 1
        self._handle.seek(page_id * self.page_size)
        self._handle.write(bytes(self.page_size))
        return page_id

    def free(self, page_id: int) -> None:
        """Push *page_id* onto the free-list for later reuse."""
        page = Page(page_id, bytearray(self.page_size), self.page_size)
        _FREE_LINK.pack_into(page.data, 0, self.free_head)
        self.write_page(page)
        self.free_head = page_id

    def free_page_ids(self) -> List[int]:
        """The free-list, head first (diagnostics and tests)."""
        out: List[int] = []
        page_id = self.free_head
        while page_id:
            out.append(page_id)
            page = self.read_page(page_id)
            (page_id,) = _FREE_LINK.unpack_from(page.data, 0)
        return out

    def data_page_ids(self) -> Iterator[int]:
        """The data chain, in scan order."""
        page_id = self.first_data
        seen = 0
        while page_id:
            yield page_id
            page = self.read_page(page_id)
            page_id = page.next_page
            seen += 1
            if seen > self.page_count:
                raise StorageError(
                    f"{self.path}: data-page chain is cyclic "
                    f"(visited {seen} pages of {self.page_count})"
                )

    def close(self) -> None:
        """Persist the header and release the file handle."""
        if not self._handle.closed:
            self.sync_header()
            self._handle.close()

    def __repr__(self) -> str:
        return (
            f"PageFile({self.path!r}, pages={self.page_count}, "
            f"rows={self.row_count})"
        )


class FileManager:
    """The directory of page files — one per relation — plus I/O counters."""

    def __init__(self, directory: str,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.directory = directory
        self.page_size = page_size
        self._files: Dict[str, PageFile] = {}
        #: physical page reads/writes across every file (telemetry)
        self.pages_read = 0
        self.pages_written = 0
        os.makedirs(directory, exist_ok=True)

    def path_for(self, relation: str) -> str:
        return os.path.join(self.directory, relation_filename(relation))

    def exists(self, relation: str) -> bool:
        return relation in self._files or os.path.exists(self.path_for(relation))

    def open(self, relation: str, create: bool = False) -> PageFile:
        """The relation's page file, opened (or created) once."""
        file = self._files.get(relation)
        if file is None:
            path = self.path_for(relation)
            if create and not os.path.exists(path):
                file = PageFile(path, self.page_size, create=True)
            else:
                file = PageFile(path, self.page_size)
            self._files[relation] = file
        return file

    def drop(self, relation: str) -> None:
        """Close and delete the relation's page file."""
        file = self._files.pop(relation, None)
        if file is not None:
            file.close()
        path = self.path_for(relation)
        if os.path.exists(path):
            os.remove(path)

    def rename(self, source: str, target: str) -> None:
        """Atomically swap *source*'s file in as *target* (Restruct)."""
        file = self._files.pop(source, None)
        if file is not None:
            file.close()
        old = self._files.pop(target, None)
        if old is not None:
            old.close()
        os.replace(self.path_for(source), self.path_for(target))
        self._files[target] = PageFile(self.path_for(target), self.page_size)

    def read_page(self, relation: str, page_id: int) -> Page:
        """One counted physical page read."""
        self.pages_read += 1
        return self.open(relation).read_page(page_id)

    def write_page(self, relation: str, page: Page) -> None:
        """One counted physical page write."""
        self.pages_written += 1
        self.open(relation).write_page(page)

    def files(self) -> Dict[str, PageFile]:
        """The open page files, by relation name."""
        return dict(self._files)

    def close(self) -> None:
        """Close every open page file (headers synced)."""
        for file in self._files.values():
            file.close()
        self._files.clear()

    def __repr__(self) -> str:
        return (
            f"FileManager({self.directory!r}, files={len(self._files)}, "
            f"read={self.pages_read}, written={self.pages_written})"
        )
