"""The binary row codec of the paged storage engine.

A stored record is the concatenation of one self-describing value
encoding per attribute, in schema order.  Each value starts with a
one-byte type tag, so decoding needs no schema and a record is exactly
reproducible — the property the differential harness leans on: a value
written through the codec and read back compares equal (by ``==`` *and*
by type) to what :class:`~repro.relational.table.Row` coercion produced
at insert time.

| tag | payload | domain value |
|-----|---------|--------------|
| ``N`` | —                       | NULL |
| ``i`` | 8-byte signed big-endian | ``int`` within ±2^63 |
| ``I`` | u32 length + ASCII decimal | ``int`` beyond 64 bits |
| ``r`` | 8-byte IEEE-754 double   | ``float`` |
| ``f`` / ``t`` | —               | ``False`` / ``True`` |
| ``s`` | u32 length + UTF-8 bytes | ``str`` (TEXT and DATE domains) |

Booleans are tagged before integers (``bool`` is an ``int`` subclass in
Python); REAL-domain columns may legitimately hold ``int`` values (the
domain's ``coerce`` keeps them), and the codec preserves that — an
``int`` never silently becomes a ``float`` across a round trip.
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence, Tuple

from repro.exceptions import StorageError
from repro.relational.domain import NULL, is_null

__all__ = ["encode_row", "decode_row", "encode_value", "decode_value"]

_TAG_NULL = b"N"
_TAG_INT = b"i"
_TAG_BIGINT = b"I"
_TAG_REAL = b"r"
_TAG_FALSE = b"f"
_TAG_TRUE = b"t"
_TAG_TEXT = b"s"

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


def encode_value(value: Any) -> bytes:
    """One domain value as its tagged binary form."""
    if is_null(value):
        return _TAG_NULL
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, bool):  # pragma: no cover - covered above
        return _TAG_TRUE if value else _TAG_FALSE
    if isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            return _TAG_INT + _I64.pack(value)
        digits = str(value).encode("ascii")
        return _TAG_BIGINT + _U32.pack(len(digits)) + digits
    if isinstance(value, float):
        return _TAG_REAL + _F64.pack(value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return _TAG_TEXT + _U32.pack(len(payload)) + payload
    raise StorageError(
        f"cannot encode {type(value).__name__} value {value!r}: "
        f"not a paged-storage domain value"
    )


def decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    """Decode one value at *offset*; returns ``(value, next offset)``."""
    try:
        tag = data[offset:offset + 1]
        if tag == _TAG_NULL:
            return NULL, offset + 1
        if tag == _TAG_TRUE:
            return True, offset + 1
        if tag == _TAG_FALSE:
            return False, offset + 1
        if tag == _TAG_INT:
            (value,) = _I64.unpack_from(data, offset + 1)
            return value, offset + 9
        if tag == _TAG_REAL:
            (value,) = _F64.unpack_from(data, offset + 1)
            return value, offset + 9
        if tag in (_TAG_TEXT, _TAG_BIGINT):
            (length,) = _U32.unpack_from(data, offset + 1)
            start = offset + 5
            payload = data[start:start + length]
            if len(payload) != length:
                raise StorageError(
                    f"truncated record: {length}-byte payload at offset "
                    f"{start}, got {len(payload)}"
                )
            if tag == _TAG_BIGINT:
                return int(payload.decode("ascii")), start + length
            return payload.decode("utf-8"), start + length
    except struct.error as exc:
        raise StorageError(
            f"truncated record at offset {offset}: {exc}"
        ) from None
    raise StorageError(
        f"unknown value tag {tag!r} at offset {offset}: corrupt record"
    )


def encode_row(values: Sequence[Any]) -> bytes:
    """A whole tuple as one record payload (values in schema order)."""
    return b"".join(encode_value(v) for v in values)


def decode_row(data: bytes, arity: int) -> Tuple[Any, ...]:
    """Decode a record payload back into its *arity* values."""
    out: List[Any] = []
    offset = 0
    for _ in range(arity):
        value, offset = decode_value(data, offset)
        out.append(value)
    if offset != len(data):
        raise StorageError(
            f"corrupt record: {len(data) - offset} trailing byte(s) after "
            f"{arity} value(s)"
        )
    return tuple(out)
