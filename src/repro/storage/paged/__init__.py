"""The out-of-core paged storage engine.

Extensions far larger than RAM cannot live in Python lists or a single
hydrated SQLite mirror; this package stores them in fixed-size page
files and reads them back through a bounded buffer pool, so every scan
the method's counting primitives issue touches at most ``pool pages``
pages of memory at a time:

- :mod:`repro.storage.paged.codec` — the binary row codec: one
  self-describing, type-tagged encoding per domain value (int / real /
  boolean / string / NULL), round-trip exact;
- :mod:`repro.storage.paged.page` — the fixed-size slotted page: a
  small header (next-page link, slot count, free-space offset), records
  growing from the front, and a slot directory growing from the back;
- :mod:`repro.storage.paged.file_manager` — :class:`PageFile` (one
  relation's pages in one file: header page, a linked chain of data
  pages, and a free-list of recycled pages) and :class:`FileManager`
  (a directory of page files, one per relation, with read/write
  counters);
- :mod:`repro.storage.paged.buffer` — :class:`BufferPool`: a fixed
  number of in-memory frames with LRU eviction, pin/unpin discipline,
  dirty-page write-back, and hit/miss/eviction statistics.

:class:`repro.backends.paged.PagedBackend` drives all four as the third
:class:`~repro.backends.base.ExtensionBackend`.  Every byte-level
failure (missing file, short read, bad magic) raises
:class:`~repro.exceptions.StorageError` with a one-line diagnostic
naming the file and offset.  See ``docs/BACKENDS.md``.
"""

from repro.storage.paged.codec import decode_row, encode_row
from repro.storage.paged.page import PAGE_HEADER_SIZE, Page
from repro.storage.paged.buffer import BufferPool, PoolStats
from repro.storage.paged.file_manager import (
    DEFAULT_PAGE_SIZE,
    FileManager,
    PageFile,
)

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "FileManager",
    "PAGE_HEADER_SIZE",
    "Page",
    "PageFile",
    "PoolStats",
    "decode_row",
    "encode_row",
]
