"""The fixed-size slotted page.

Every page of a :class:`~repro.storage.paged.file_manager.PageFile` has
the same layout:

```
offset 0   u32  next_page   — id of the next data page in the chain (0 = end)
offset 4   u16  slot_count  — number of records stored
offset 6   u16  free_offset — where the next record's bytes will land
offset 8   ...  record bytes, growing towards the end
...
end        slot directory, growing towards the front:
           one (u16 offset, u16 length) pair per record, slot 0 last
```

Records are opaque byte strings (the row codec's output); the page
neither decodes nor orders them.  Pages are append-only — the backend
rewrites a relation's whole chain for deletes, recycling the old pages
through the file's free-list — which keeps the on-disk invariants easy
to state and to check: slots never move, offsets only grow.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.exceptions import StorageError

__all__ = ["PAGE_HEADER_SIZE", "MIN_PAGE_SIZE", "Page", "PageFullError"]

#: next_page (u32) + slot_count (u16) + free_offset (u16)
PAGE_HEADER_SIZE = 8
#: one (offset, length) pair per record
_SLOT_SIZE = 4
#: room for the header, one slot, and a non-trivial record
MIN_PAGE_SIZE = 64

_HEADER = struct.Struct(">IHH")
_SLOT = struct.Struct(">HH")


class PageFullError(StorageError):
    """A record does not fit in the page's remaining free space."""


class Page:
    """One fixed-size slotted page, wrapped around a mutable buffer."""

    __slots__ = ("page_id", "data", "page_size")

    def __init__(self, page_id: int, data: bytearray, page_size: int) -> None:
        if len(data) != page_size:
            raise StorageError(
                f"page {page_id}: buffer is {len(data)} bytes, "
                f"expected {page_size}"
            )
        self.page_id = page_id
        self.data = data
        self.page_size = page_size

    @classmethod
    def empty(cls, page_id: int, page_size: int) -> "Page":
        """A fresh page with no records and no successor."""
        page = cls(page_id, bytearray(page_size), page_size)
        _HEADER.pack_into(page.data, 0, 0, 0, PAGE_HEADER_SIZE)
        return page

    # ------------------------------------------------------------------
    # header fields
    # ------------------------------------------------------------------
    @property
    def next_page(self) -> int:
        """Id of the next data page in the relation's chain (0 = end)."""
        return _HEADER.unpack_from(self.data, 0)[0]

    @next_page.setter
    def next_page(self, page_id: int) -> None:
        slots, free = _HEADER.unpack_from(self.data, 0)[1:]
        _HEADER.pack_into(self.data, 0, page_id, slots, free)

    @property
    def slot_count(self) -> int:
        """Number of records stored in this page."""
        return _HEADER.unpack_from(self.data, 0)[1]

    @property
    def free_offset(self) -> int:
        """Where the next record's bytes would be written."""
        return _HEADER.unpack_from(self.data, 0)[2]

    @property
    def free_space(self) -> int:
        """Bytes available for one more record *and* its slot entry."""
        directory_start = self.page_size - self.slot_count * _SLOT_SIZE
        return max(0, directory_start - self.free_offset - _SLOT_SIZE)

    def has_room(self, length: int) -> bool:
        """Would a *length*-byte record fit?"""
        return length <= self.free_space

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------
    def append(self, record: bytes) -> int:
        """Store *record*; returns its slot index.

        Raises :class:`PageFullError` when the record (plus its slot
        directory entry) does not fit — the caller allocates a new page.
        A record longer than any empty page can hold is a hard error:
        no amount of chaining would ever make it fit.
        """
        if not self.has_room(len(record)):
            if len(record) > self.page_size - PAGE_HEADER_SIZE - _SLOT_SIZE:
                raise StorageError(
                    f"record of {len(record)} bytes cannot fit a "
                    f"{self.page_size}-byte page; raise the page size"
                )
            raise PageFullError(
                f"page {self.page_id}: {len(record)}-byte record does not "
                f"fit ({self.free_space} bytes free)"
            )
        next_page, slots, free = _HEADER.unpack_from(self.data, 0)
        self.data[free:free + len(record)] = record
        slot_offset = self.page_size - (slots + 1) * _SLOT_SIZE
        _SLOT.pack_into(self.data, slot_offset, free, len(record))
        _HEADER.pack_into(self.data, 0, next_page, slots + 1, free + len(record))
        return slots

    def record(self, slot: int) -> bytes:
        """The record stored in *slot*."""
        if not 0 <= slot < self.slot_count:
            raise StorageError(
                f"page {self.page_id}: no slot {slot} "
                f"({self.slot_count} record(s))"
            )
        slot_offset = self.page_size - (slot + 1) * _SLOT_SIZE
        offset, length = _SLOT.unpack_from(self.data, slot_offset)
        if offset + length > self.page_size:
            raise StorageError(
                f"page {self.page_id}: slot {slot} points past the page "
                f"(offset {offset}, length {length})"
            )
        return bytes(self.data[offset:offset + length])

    def records(self) -> Iterator[bytes]:
        """All records, in slot (insertion) order."""
        for slot in range(self.slot_count):
            yield self.record(slot)

    def __len__(self) -> int:
        return self.slot_count

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, records={self.slot_count}, "
            f"free={self.free_space}B)"
        )
