"""Persisting expert decisions: interactive sessions become replayable.

A reverse-engineering project runs over weeks; the expert's answers are
project knowledge and must survive the session.  A recorded script
(:meth:`RecordingExpert.to_script`) serializes to a JSON document and
loads back into a :class:`~repro.core.expert.ScriptedExpert` — the CLI
exposes this as ``run --save-decisions`` / ``--replay-decisions``.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.expert import (
    ConceptualizeIntersection,
    ForceInclusion,
    IgnoreIntersection,
)
from repro.exceptions import DataError

_FORMAT = "repro/decisions@1"


def script_to_dict(script: Dict[str, object]) -> Dict[str, Any]:
    """Serialize a ScriptedExpert answer dictionary."""
    answers = []
    for question, value in script.items():
        if isinstance(value, ConceptualizeIntersection):
            encoded: Dict[str, Any] = {
                "type": "conceptualize", "name": value.name,
            }
        elif isinstance(value, ForceInclusion):
            encoded = {"type": "force", "direction": value.direction}
        elif isinstance(value, IgnoreIntersection):
            encoded = {"type": "ignore"}
        elif isinstance(value, bool):
            encoded = {"type": "bool", "value": value}
        elif isinstance(value, str):
            encoded = {"type": "text", "value": value}
        else:
            raise DataError(
                f"cannot serialize expert answer {value!r} "
                f"for question {question!r}"
            )
        answers.append({"question": question, "answer": encoded})
    return {"format": _FORMAT, "answers": answers}


def script_from_dict(document: Dict[str, Any]) -> Dict[str, object]:
    """Deserialize a decisions document back into an answer dictionary."""
    if document.get("format") != _FORMAT:
        raise DataError(
            f"not a decisions document: {document.get('format')!r}"
        )
    script: Dict[str, object] = {}
    for entry in document["answers"]:
        encoded = entry["answer"]
        kind = encoded.get("type")
        if kind == "conceptualize":
            value: object = ConceptualizeIntersection(encoded["name"])
        elif kind == "force":
            value = ForceInclusion(encoded["direction"])
        elif kind == "ignore":
            value = IgnoreIntersection()
        elif kind == "bool":
            value = bool(encoded["value"])
        elif kind == "text":
            value = str(encoded["value"])
        else:
            raise DataError(f"unknown decision type {kind!r}")
        script[entry["question"]] = value
    return script
