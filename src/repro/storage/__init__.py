"""Persistence: CSV, JSON and SQLite round-trips for whole sessions.

Legacy reverse-engineering work is iterative; these modules let a run's
inputs and elicited artifacts round-trip to disk so a session can be
resumed or audited.  :func:`save_sqlite` / :func:`open_sqlite` use a
``.db`` file as the carrier, with declared constraints stored in — and
recovered from — SQLite's own data dictionary.
"""

from repro.backends.introspect import open_sqlite
from repro.storage.csv_io import load_table_csv, dump_table_csv, load_database_csv, dump_database_csv
from repro.storage.sqlite_io import declared_table_sql, save_sqlite
from repro.storage.decisions import script_from_dict, script_to_dict
from repro.storage.ddl import (
    create_table_sql,
    inserts_to_sql,
    migration_script,
    schema_to_sql,
)
from repro.storage.serialize import (
    schema_to_dict,
    schema_from_dict,
    database_to_dict,
    database_from_dict,
    dependencies_to_dict,
    dependencies_from_dict,
    eer_to_dict,
    eer_from_dict,
    save_json,
    load_json,
    save_jsonl,
    load_jsonl,
)

__all__ = [
    "declared_table_sql",
    "open_sqlite",
    "save_sqlite",
    "script_from_dict",
    "script_to_dict",
    "create_table_sql",
    "inserts_to_sql",
    "migration_script",
    "schema_to_sql",
    "load_table_csv",
    "dump_table_csv",
    "load_database_csv",
    "dump_database_csv",
    "schema_to_dict",
    "schema_from_dict",
    "database_to_dict",
    "database_from_dict",
    "dependencies_to_dict",
    "dependencies_from_dict",
    "eer_to_dict",
    "eer_from_dict",
    "save_json",
    "load_json",
    "save_jsonl",
    "load_jsonl",
]
