"""Forward engineering: emit a schema (and its data) back as SQL.

The end product of a reverse-engineering project is usually a
*migration*: the recovered 3NF schema must be created somewhere and the
legacy data moved into it.  This module renders a
:class:`~repro.relational.schema.DatabaseSchema` as ``CREATE TABLE``
statements — including the referential integrity constraints the method
elicited, as standard ``FOREIGN KEY`` clauses — and a database's
extension as ``INSERT`` statements.  The emitted script round-trips
through the library's own SQL executor (asserted by tests), minus the
``FOREIGN KEY`` clauses which the engine does not enforce (they are
emitted for the target DBMS).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dependencies.ind import InclusionDependency
from repro.relational.database import Database
from repro.relational.domain import is_null
from repro.relational.schema import DatabaseSchema, RelationSchema

_TYPE_NAMES = {
    "INTEGER": "INTEGER",
    "REAL": "NUMERIC",
    "TEXT": "VARCHAR(255)",
    "DATE": "DATE",
    "BOOLEAN": "BOOLEAN",
}


def _quote_name(name: str) -> str:
    """Quote identifiers that need it (the paper's hyphenated names do)."""
    if name.replace("_", "").isalnum() and not name[0].isdigit():
        return name
    return '"' + name.replace('"', '""') + '"'


def _literal(value: object) -> str:
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def create_table_sql(
    relation: RelationSchema,
    foreign_keys: Sequence[InclusionDependency] = (),
) -> str:
    """One ``CREATE TABLE`` statement for *relation*.

    *foreign_keys* are the RIC elements whose left-hand side lives in
    this relation; each becomes a ``FOREIGN KEY ... REFERENCES`` clause.
    """
    lines: List[str] = []
    primary = relation.primary_key()
    primary_names = set(primary.names) if primary is not None else set()
    for attr in relation.attributes:
        parts = [f"    {_quote_name(attr.name)} {_TYPE_NAMES[attr.dtype.name]}"]
        if not attr.nullable and attr.name not in primary_names:
            parts.append("NOT NULL")
        lines.append(" ".join(parts))
    if primary is not None:
        cols = ", ".join(_quote_name(a) for a in primary.names)
        lines.append(f"    PRIMARY KEY ({cols})")
    for unique in relation.uniques:
        if primary is not None and unique.attributes == primary:
            continue
        cols = ", ".join(_quote_name(a) for a in unique.attributes)
        lines.append(f"    UNIQUE ({cols})")
    for ind in foreign_keys:
        if ind.lhs_relation != relation.name:
            continue
        local = ", ".join(_quote_name(a) for a in ind.lhs_attrs)
        remote = ", ".join(_quote_name(a) for a in ind.rhs_attrs)
        lines.append(
            f"    FOREIGN KEY ({local}) REFERENCES "
            f"{_quote_name(ind.rhs_relation)} ({remote})"
        )
    body = ",\n".join(lines)
    return f"CREATE TABLE {_quote_name(relation.name)} (\n{body}\n);"


def schema_to_sql(
    schema: DatabaseSchema,
    ric: Sequence[InclusionDependency] = (),
) -> str:
    """The full DDL script, referenced relations first.

    Relations are ordered so every ``REFERENCES`` target is created
    before its referrer (cycles fall back to name order — the emitted
    constraints are then forward references, acceptable to DBMSs with
    deferred checking).
    """
    names = schema.relation_names
    dependencies = {name: set() for name in names}
    for ind in ric:
        if ind.lhs_relation in dependencies and ind.rhs_relation in dependencies:
            if ind.lhs_relation != ind.rhs_relation:
                dependencies[ind.lhs_relation].add(ind.rhs_relation)

    ordered: List[str] = []
    remaining = set(names)
    while remaining:
        ready = sorted(
            n for n in remaining if dependencies[n] <= set(ordered)
        )
        if not ready:            # cycle: emit the rest in name order
            ready = sorted(remaining)
        for name in ready:
            ordered.append(name)
            remaining.discard(name)

    statements = [
        create_table_sql(schema.relation(name), ric) for name in ordered
    ]
    return "\n\n".join(statements) + "\n"


def inserts_to_sql(database: Database, batch_size: int = 50) -> str:
    """INSERT statements for every row of every table."""
    statements: List[str] = []
    for table in database.tables():
        rows = [
            "(" + ", ".join(_literal(v) for v in row.values) + ")"
            for row in table
        ]
        for start in range(0, len(rows), batch_size):
            chunk = rows[start : start + batch_size]
            statements.append(
                f"INSERT INTO {_quote_name(table.name)} VALUES\n    "
                + ",\n    ".join(chunk)
                + ";"
            )
    return "\n\n".join(statements) + ("\n" if statements else "")


def migration_script(
    database: Database,
    ric: Sequence[InclusionDependency] = (),
    include_data: bool = True,
) -> str:
    """DDL (+ optionally data) for a whole database — the migration
    artifact of a reverse-engineering project."""
    script = schema_to_sql(database.schema, ric)
    if include_data:
        data = inserts_to_sql(database)
        if data:
            script = script + "\n" + data
    return script
