"""The extension-backend protocol.

§2 of the paper phrases every question the method asks the extension as
a query an SQL DBMS answers natively: ``select count distinct X from R``
(``||r[X]||``), equi-join cardinalities, FD satisfaction and inclusion
tests.  :class:`ExtensionBackend` abstracts *where* those questions are
answered — the in-memory engine that ships with the reproduction
(:class:`~repro.backends.memory.MemoryBackend`) or a live DBMS that
executes them as pushed-down SQL
(:class:`~repro.backends.sqlite.SQLiteBackend`).

The :class:`~repro.relational.database.Database` owns the schema ``R``,
the dependency set ``Δ`` and the :class:`QueryCounter`; the backend owns
the extension ``E``.  Every backend must implement

- the four instrumented primitives — ``count_distinct``, ``join_count``,
  ``fd_holds``, ``inclusion_holds`` — with identical semantics (NULLs
  skipped by distinct counts and joins, NULL treated as one marked value
  on FD right-hand sides);
- row access — ``table`` (a live :class:`~repro.relational.table.Table`
  view), ``insert``/``insert_many`` and ``rows``/``row_count`` scans;
- relation lifecycle — ``create_relation``, ``drop_relation``,
  ``replace_relation`` — each of which must invalidate any derived
  caches for the touched relation;
- the observability hook — a ``kind`` label and ``probe``, which
  reports (without side effects on the answer) whether a primitive call
  would be served from the backend's own cache and how many stored rows
  a cold evaluation would scan.  The
  :class:`~repro.obs.instrument.InstrumentedBackend` wrapper calls it
  before each primitive so exported traces carry cache hit/miss and
  rows-touched figures; the backends themselves never see the tracer.

Two further members are **optional** — the
:class:`~repro.engine.executor.BatchExecutor` sniffs for them and falls
back to serial primitive calls when they are absent, so third-party
backends that only implement the required surface keep working:

- ``execute_batch(probes)`` (see :class:`BatchCapableBackend`) answers
  a sequence of :class:`~repro.engine.probes.Probe` requests in one
  pass — :class:`~repro.backends.sqlite.SQLiteBackend` compiles a chunk
  into a single grouped statement of scalar subqueries;
- ``parallel_safe`` (class attribute, default falsy) declares that the
  four primitives may be called from concurrent worker threads —
  :class:`~repro.backends.memory.MemoryBackend` sets it because its
  primitives are pure in-process reads.

The contract is executable: ``tests/backends/test_contract.py`` runs the
same assertions over every registered backend, including the batch hook
and its serial fallback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Protocol, Sequence, Tuple, Union, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.probes import Probe
    from repro.relational.schema import DatabaseSchema, RelationSchema
    from repro.relational.table import Table

RowValues = Union[Sequence[Any], Mapping[str, Any]]


@runtime_checkable
class ExtensionBackend(Protocol):
    """Where the extension ``E`` lives and how it is queried.

    Implementations are interchangeable: the reverse-engineering method
    never touches tuples except through this interface, so pointing the
    pipeline at another storage engine is a constructor argument, not a
    refactor.
    """

    #: short label stamped on every exported trace event ("memory", ...)
    kind: str

    # -- lifecycle -----------------------------------------------------
    def attach(self, schema: "DatabaseSchema") -> None:
        """Bind to *schema*, creating storage for any missing relation.

        Called once by :class:`~repro.relational.database.Database` at
        construction.  Relations that already exist in the underlying
        store (e.g. a pre-populated ``.db`` file) are left untouched.
        """

    def spawn(self) -> "ExtensionBackend":
        """A fresh, empty sibling backend of the same kind.

        Used by :meth:`Database.copy` so a pipeline run against a SQLite
        extension restructures a SQLite extension, not an in-memory one.
        """

    def close(self) -> None:
        """Release any underlying resources (connections, caches)."""

    # -- relation lifecycle --------------------------------------------
    def create_relation(self, relation: "RelationSchema") -> "Table":
        """Create empty storage for *relation*; return its table view."""

    def drop_relation(self, name: str) -> None:
        """Drop the relation's storage and every cache entry about it."""

    def replace_relation(self, relation: "RelationSchema") -> "Table":
        """Swap in a modified schema, projecting the stored extension."""

    # -- row access ----------------------------------------------------
    def table(self, name: str) -> "Table":
        """The live :class:`Table` view of one relation's extension."""

    def insert(self, relation: str, values: RowValues) -> None:
        """Append one typed tuple (positional or by attribute name)."""

    def insert_many(self, relation: str, rows: Iterable[RowValues]) -> None:
        """Bulk append; semantically a loop over :meth:`insert`."""

    def rows(self, relation: str) -> Iterator[Tuple[Any, ...]]:
        """Scan the extension in insertion order as value tuples."""

    def row_count(self, relation: str) -> int:
        """``|r|`` — the extension's cardinality (duplicates counted)."""

    # -- the paper's instrumented query primitives ---------------------
    def count_distinct(self, relation: str, attrs: Sequence[str]) -> int:
        """``||r[X]||`` — select count distinct X from R (NULLs skipped)."""

    def join_count(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> int:
        """``||r_k[A_k] ⋈ r_l[A_l]||`` — distinct matching combinations."""

    def fd_holds(
        self, relation: str, lhs: Sequence[str], rhs: Sequence[str]
    ) -> bool:
        """Does ``lhs -> rhs`` hold in the stored extension?"""

    def inclusion_holds(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> bool:
        """Does ``R_left[A] ≪ R_right[B]`` hold in the stored extension?"""

    # -- observability hook --------------------------------------------
    def probe(
        self,
        primitive: str,
        relations: Tuple[str, ...],
        attributes: Tuple[Tuple[str, ...], ...],
    ) -> Tuple[bool, int]:
        """``(cache hit?, rows touched)`` for an imminent primitive call.

        *primitive* is one of the four primitive method names;
        *relations*/*attributes* mirror the call's arguments (for
        ``fd_holds`` one relation with the ``(lhs, rhs)`` tuples).  The
        probe must not change what the primitive will answer.  ``rows
        touched`` is the number of stored rows a cold evaluation scans,
        and 0 when the answer will come from a cache.
        """


@runtime_checkable
class BatchCapableBackend(ExtensionBackend, Protocol):
    """The optional batch hook of the counting-primitive engine.

    A backend that can answer many probes in one pass — a grouped SQL
    statement, a vectorized scan — implements :meth:`execute_batch` on
    top of the base contract.  The hook is discovered structurally
    (``callable(getattr(backend, "execute_batch", None))``); backends
    that omit it are driven probe-by-probe through the four primitives.
    """

    def execute_batch(self, probes: Sequence["Probe"]) -> "Sequence[Any]":
        """Answer every probe; results align with *probes* by position.

        Each result must be **identical** to what the corresponding
        serial primitive call would return (``int`` for counting
        probes, ``bool`` for ``fd_holds``/``inclusion_holds``), and any
        result memoization must honor the same invalidation rules as
        the serial path — the differential suite asserts both.
        """
