"""The SQLite extension backend: the paper's primitives as pushed-down SQL.

The method was designed to interrogate a *live DBMS* — ``||r[X]||`` is
literally ``select count distinct X from R`` (§2).  This backend restores
that reading: extensions live in a SQLite database (a file or
``:memory:``) and each instrumented primitive compiles to one SQL
statement executed by the engine:

- ``count_distinct`` →
  ``SELECT COUNT(*) FROM (SELECT DISTINCT X FROM R WHERE X IS NOT NULL)``;
- ``join_count`` → the cardinality of
  ``SELECT A_k FROM R_k ... INTERSECT SELECT A_l FROM R_l ...``;
- ``fd_holds`` → ``GROUP BY lhs HAVING COUNT(DISTINCT rhs') > 1`` probed
  with ``EXISTS`` (``rhs'`` is a ``QUOTE(...)`` encoding that keeps NULL
  as one marked value, matching the engine's FD convention);
- ``inclusion_holds`` → emptiness of ``lhs-projection EXCEPT
  rhs-projection``.

Compiled statements are cached per relation and invalidated on any
schema mutation; query *results* are additionally memoized under a
per-relation version counter that every write bumps, mirroring the
in-memory backend's distinct-value cache.  Row-level access hydrates a
lazy, write-through :class:`Table` mirror so code that walks or mutates
tuples (the SQL executor, Restruct's projections, violation displays)
keeps working unchanged — the four counting primitives never touch the
mirror and scale with the engine, not with Python.

Storage note: backend-created tables declare column types but *no*
``UNIQUE``/``NOT NULL`` constraints — the reproduction must be able to
hold the corrupted extensions the paper reasons about.  Declared
constraints live in the :class:`RelationSchema` (and, for ``.db`` files
written by :func:`repro.storage.sqlite_io.save_sqlite`, in SQLite's own
data dictionary, where :func:`repro.backends.introspect.open_sqlite`
reads them back).
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import UnknownRelationError
from repro.relational.domain import BOOLEAN, is_null, NULL
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.table import Row, Table, order_values
from repro.backends.base import RowValues

#: repro domain name → SQLite declared column type
_SQL_TYPES = {
    "INTEGER": "INTEGER",
    "REAL": "REAL",
    "TEXT": "TEXT",
    "DATE": "DATE",
    "BOOLEAN": "BOOLEAN",
}

#: separator for multi-column FD images built from QUOTE() fragments;
#: the ASCII unit separator cannot collide with QUOTE output
_SEP = "char(31)"


def quote_identifier(name: str) -> str:
    """Quote *name* for SQLite (paper names carry hyphens: ``zip-code``)."""
    return '"' + name.replace('"', '""') + '"'


class _SQLiteTable(Table):
    """A hydrated mirror of one SQLite relation; mutations write through.

    Holding the rows in an ordinary :class:`Table` keeps every existing
    row-level consumer working; overriding the three mutators keeps the
    SQLite store authoritative.  ``_backend`` is None while hydrating
    (and after the relation is dropped or replaced), which turns the
    overrides back into plain in-memory operations.
    """

    def __init__(self, schema: RelationSchema) -> None:
        self._backend: Optional["SQLiteBackend"] = None
        super().__init__(schema)

    def insert(self, values: RowValues) -> Row:
        row = super().insert(values)
        if self._backend is not None:
            self._backend._write_row(self.name, row.values)
        return row

    def replace_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        super().replace_rows(rows)
        if self._backend is not None:
            self._backend._rewrite(self.name, [r.values for r in self])

    def delete_where(self, predicate) -> int:
        removed = super().delete_where(predicate)
        if removed and self._backend is not None:
            self._backend._rewrite(self.name, [r.values for r in self])
        return removed


class SQLiteBackend:
    """Extension storage and query pushdown on a SQLite connection."""

    kind = "sqlite"

    def __init__(
        self,
        path: str = ":memory:",
        connection: Optional[sqlite3.Connection] = None,
    ) -> None:
        if connection is not None:
            self._conn = connection
            self._owns_connection = False
        else:
            self._conn = sqlite3.connect(path, isolation_level=None)
            self._owns_connection = True
        self._schema: DatabaseSchema = DatabaseSchema()
        #: per-relation write counter; every mutation bumps it, and it
        #: never resets — a dropped-and-recreated relation continues the
        #: count, so memoized results can never alias across lifetimes
        self._versions: Dict[str, int] = {}
        #: compiled SQL text per (primitive, relations, attrs)
        self._statements: Dict[tuple, str] = {}
        #: memoized primitive results, guarded by the version counters
        #: of every relation the statement reads
        self._results: Dict[tuple, tuple] = {}
        #: lazily hydrated write-through mirrors for row-level access
        self._mirrors: Dict[str, _SQLiteTable] = {}
        #: version-guarded COUNT(*) memo, so the observability probe
        #: does not issue one extra engine query per primitive call
        self._rowcounts: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, schema: DatabaseSchema) -> None:
        """Bind to *schema*; create any table the store does not hold yet."""
        self._schema = schema
        existing = {
            name
            for (name,) in self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        for relation in schema:
            if relation.name not in existing:
                self._conn.execute(self._create_table_sql(relation))
            self._versions.setdefault(relation.name, 0)
        self._commit()

    def spawn(self) -> "SQLiteBackend":
        """A fresh backend on a private in-memory SQLite database."""
        return SQLiteBackend()

    def close(self) -> None:
        """Drop caches and close the connection if this backend owns it."""
        self._mirrors.clear()
        self._statements.clear()
        self._results.clear()
        self._rowcounts.clear()
        if self._owns_connection:
            self._conn.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying SQLite connection (read-only introspection)."""
        return self._conn

    # ------------------------------------------------------------------
    # relation lifecycle
    # ------------------------------------------------------------------
    def create_relation(self, relation: RelationSchema) -> Table:
        """CREATE TABLE and return the (empty) write-through mirror."""
        self._invalidate(relation.name)
        self._conn.execute(self._create_table_sql(relation))
        self._bump(relation.name)
        self._commit()
        return self.table(relation.name)

    def drop_relation(self, name: str) -> None:
        """DROP TABLE and purge every cache entry about the relation."""
        self._require(name)
        self._invalidate(name)
        self._conn.execute(f"DROP TABLE {quote_identifier(name)}")
        self._bump(name)
        self._commit()

    def replace_relation(self, relation: RelationSchema) -> Table:
        """Project the stored extension onto a modified schema, in SQL.

        ``CREATE tmp AS projection; DROP old; RENAME tmp`` — duplicates
        are kept, matching :meth:`Table.with_schema`.
        """
        self._require(relation.name)
        self._invalidate(relation.name)
        name = quote_identifier(relation.name)
        tmp = quote_identifier("__repro_restruct__")
        cols = ", ".join(quote_identifier(a) for a in relation.attribute_names)
        self._conn.execute(f"DROP TABLE IF EXISTS {tmp}")
        self._conn.execute(
            self._create_table_sql(relation, table_name="__repro_restruct__")
        )
        self._conn.execute(f"INSERT INTO {tmp} SELECT {cols} FROM {name}")
        self._conn.execute(f"DROP TABLE {name}")
        self._conn.execute(f"ALTER TABLE {tmp} RENAME TO {name}")
        self._bump(relation.name)
        self._commit()
        return self.table(relation.name)

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        """The write-through mirror of one relation (hydrated lazily)."""
        mirror = self._mirrors.get(name)
        if mirror is None:
            relation = self._require(name)
            mirror = _SQLiteTable(relation)
            for raw in self._scan(relation):
                mirror.insert(raw)
            mirror._backend = self
            self._mirrors[name] = mirror
        return mirror

    def insert(self, relation: str, values: RowValues) -> None:
        """Append one tuple; typing is validated before the engine sees it."""
        mirror = self._mirrors.get(relation)
        if mirror is not None:
            mirror.insert(values)
            return
        rel = self._require(relation)
        row = Row(rel, order_values(rel, values))
        self._write_row(relation, row.values)

    def insert_many(self, relation: str, rows: Iterable[RowValues]) -> None:
        """Bulk append through one ``executemany``."""
        mirror = self._mirrors.get(relation)
        if mirror is not None:
            mirror.insert_many(rows)
            return
        rel = self._require(relation)
        payload = [
            self._to_sql(Row(rel, order_values(rel, r)).values) for r in rows
        ]
        if not payload:
            return
        marks = ", ".join("?" for _ in rel.attributes)
        self._conn.executemany(
            f"INSERT INTO {quote_identifier(relation)} VALUES ({marks})",
            payload,
        )
        self._bump(relation)
        self._commit()

    def rows(self, relation: str) -> Iterator[Tuple[Any, ...]]:
        """Scan the stored extension in insertion (rowid) order."""
        mirror = self._mirrors.get(relation)
        if mirror is not None:
            for row in mirror:
                yield row.values
            return
        rel = self._require(relation)
        for values in self._scan(rel):
            yield tuple(values)

    def row_count(self, relation: str) -> int:
        """``SELECT COUNT(*)`` (served from the mirror when hydrated)."""
        mirror = self._mirrors.get(relation)
        if mirror is not None:
            return len(mirror)
        self._require(relation)
        sql = f"SELECT COUNT(*) FROM {quote_identifier(relation)}"
        return int(self._conn.execute(sql).fetchone()[0])

    # ------------------------------------------------------------------
    # the paper's query primitives, pushed down
    # ------------------------------------------------------------------
    def count_distinct(self, relation: str, attrs: Sequence[str]) -> int:
        """``SELECT COUNT(*) FROM (SELECT DISTINCT X ... WHERE X NOT NULL)``."""
        attrs = tuple(attrs)
        key = ("count_distinct", relation, attrs)
        return int(self._memoized(key, (relation,), self._count_distinct_sql))

    def join_count(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> int:
        """``||r_k[A_k] ⋈ r_l[A_l]||`` via INTERSECT of the projections."""
        key = ("join_count", left, tuple(left_attrs), right, tuple(right_attrs))
        return int(self._memoized(key, (left, right), self._join_count_sql))

    def fd_holds(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
        """``GROUP BY lhs HAVING COUNT(DISTINCT rhs') > 1`` finds violations."""
        key = ("fd_holds", relation, tuple(lhs), tuple(rhs))
        return bool(self._memoized(key, (relation,), self._fd_sql))

    def inclusion_holds(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> bool:
        """``lhs-projection EXCEPT rhs-projection`` must be empty."""
        key = (
            "inclusion_holds", left, tuple(left_attrs), right, tuple(right_attrs),
        )
        return bool(self._memoized(key, (left, right), self._inclusion_sql))

    # ------------------------------------------------------------------
    # observability hook
    # ------------------------------------------------------------------
    def probe(
        self,
        primitive: str,
        relations: Tuple[str, ...],
        attributes: Tuple[Tuple[str, ...], ...],
    ) -> Tuple[bool, int]:
        """``(cache hit?, rows touched)`` for an imminent primitive call.

        Reconstructs the primitive's memo key and checks the result
        cache under the current version token — the same test
        :meth:`_memoized` is about to make.  A miss reaches the engine
        and scans every involved relation once.
        """
        key = self._probe_key(primitive, relations, attributes)
        token = tuple(self._versions.get(r, 0) for r in relations)
        hit = self._results.get(key)
        if hit is not None and hit[0] == token:
            return True, 0
        return False, sum(self._cached_row_count(r) for r in relations)

    @staticmethod
    def _probe_key(
        primitive: str,
        relations: Tuple[str, ...],
        attributes: Tuple[Tuple[str, ...], ...],
    ) -> tuple:
        """The memo/statement-cache key of one primitive call."""
        if primitive == "count_distinct":
            return (primitive, relations[0], attributes[0])
        if primitive == "fd_holds":
            return (primitive, relations[0], attributes[0], attributes[1])
        # join_count / inclusion_holds
        return (
            primitive, relations[0], attributes[0],
            relations[1], attributes[1],
        )

    # ------------------------------------------------------------------
    # the batch hook (repro.engine)
    # ------------------------------------------------------------------
    def execute_batch(self, probes) -> List[Any]:
        """Answer many probes in **one** grouped statement.

        Each uncached probe compiles to the same scalar expression the
        serial path would run (``(SELECT COUNT(*) ...)``,
        ``(SELECT NOT EXISTS(...))``); the batch is one
        ``SELECT expr_1, expr_2, ...`` round trip, so a chunk of N
        probes costs one engine call instead of N.  Statement text and
        results share the serial caches — a probe the memo already
        answers never re-enters the statement, and batch results serve
        later serial calls (and vice versa) under the same
        version-token invalidation.  Callers chunk: SQLite allows at
        most 2000 result columns per statement.
        """
        builders = {
            "count_distinct": self._count_distinct_sql,
            "join_count": self._join_count_sql,
            "fd_holds": self._fd_sql,
            "inclusion_holds": self._inclusion_sql,
        }
        out: List[Any] = [None] * len(probes)
        pending: List[tuple] = []
        for index, probe in enumerate(probes):
            key = self._probe_key(probe.primitive, probe.relations, probe.attributes)
            token = tuple(self._versions.get(r, 0) for r in probe.relations)
            hit = self._results.get(key)
            if hit is not None and hit[0] == token:
                out[index] = hit[1]
            else:
                pending.append((index, key, token, probe.primitive))
        if pending:
            exprs = []
            for _, key, _, primitive in pending:
                sql = self._statements.get(key)
                if sql is None:
                    sql = builders[primitive](key)
                    self._statements[key] = sql
                exprs.append(f"({sql})")
            row = self._conn.execute("SELECT " + ", ".join(exprs)).fetchone()
            for (index, key, token, _), value in zip(pending, row):
                self._results[key] = (token, value)
                out[index] = value
        return [
            bool(v) if p.primitive in ("fd_holds", "inclusion_holds") else int(v)
            for p, v in zip(probes, out)
        ]

    def _cached_row_count(self, relation: str) -> int:
        """``COUNT(*)`` memoized under the relation's version counter."""
        version = self._versions.get(relation, 0)
        hit = self._rowcounts.get(relation)
        if hit is not None and hit[0] == version:
            return hit[1]
        count = self.row_count(relation)
        self._rowcounts[relation] = (version, count)
        return count

    # ------------------------------------------------------------------
    # statement compilation
    # ------------------------------------------------------------------
    def _projection(
        self, relation: str, attrs: Sequence[str], distinct: bool = False
    ) -> str:
        """``SELECT a, b FROM r WHERE a IS NOT NULL AND b IS NOT NULL``."""
        rel = self._require(relation)
        for a in attrs:
            rel.position(a)  # raises UnknownAttributeError
        head = "SELECT DISTINCT" if distinct else "SELECT"
        cols = ", ".join(quote_identifier(a) for a in attrs)
        not_null = " AND ".join(
            f"{quote_identifier(a)} IS NOT NULL" for a in attrs
        )
        return (
            f"{head} {cols} FROM {quote_identifier(relation)} WHERE {not_null}"
        )

    def _count_distinct_sql(self, key: tuple) -> str:
        _, relation, attrs = key
        inner = self._projection(relation, attrs, distinct=True)
        return f"SELECT COUNT(*) FROM ({inner})"

    def _join_count_sql(self, key: tuple) -> str:
        _, left, left_attrs, right, right_attrs = key
        return (
            "SELECT COUNT(*) FROM ("
            + self._projection(left, left_attrs)
            + " INTERSECT "
            + self._projection(right, right_attrs)
            + ")"
        )

    def _fd_sql(self, key: tuple) -> str:
        _, relation, lhs, rhs = key
        rel = self._require(relation)
        for a in (*lhs, *rhs):
            rel.position(a)
        lhs_cols = ", ".join(quote_identifier(a) for a in lhs)
        lhs_not_null = " AND ".join(
            f"{quote_identifier(a)} IS NOT NULL" for a in lhs
        )
        # QUOTE() keeps a NULL image as the one marked value 'NULL', so
        # wholly-missing optional attributes agree with each other —
        # exactly the functional_maps() convention of the memory engine
        image = f" || {_SEP} || ".join(
            f"QUOTE({quote_identifier(a)})" for a in rhs
        )
        return (
            "SELECT NOT EXISTS("
            f"SELECT 1 FROM {quote_identifier(relation)} "
            f"WHERE {lhs_not_null} GROUP BY {lhs_cols} "
            f"HAVING COUNT(DISTINCT {image}) > 1)"
        )

    def _inclusion_sql(self, key: tuple) -> str:
        _, left, left_attrs, right, right_attrs = key
        return (
            "SELECT NOT EXISTS(SELECT 1 FROM ("
            + self._projection(left, left_attrs)
            + " EXCEPT "
            + self._projection(right, right_attrs)
            + "))"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _memoized(self, key: tuple, relations: Tuple[str, ...], build) -> Any:
        """Execute the statement for *key*, reusing text and result caches."""
        token = tuple(self._versions.get(r, 0) for r in relations)
        hit = self._results.get(key)
        if hit is not None and hit[0] == token:
            return hit[1]
        sql = self._statements.get(key)
        if sql is None:
            sql = build(key)
            self._statements[key] = sql
        value = self._conn.execute(sql).fetchone()[0]
        self._results[key] = (token, value)
        return value

    def _require(self, name: str) -> RelationSchema:
        """The schema of *name*, or UnknownRelationError."""
        if name not in self._schema:
            raise UnknownRelationError(name)
        return self._schema.relation(name)

    def _create_table_sql(
        self, relation: RelationSchema, table_name: Optional[str] = None
    ) -> str:
        cols = ", ".join(
            f"{quote_identifier(a.name)} {_SQL_TYPES[a.dtype.name]}"
            for a in relation.attributes
        )
        return (
            f"CREATE TABLE {quote_identifier(table_name or relation.name)} "
            f"({cols})"
        )

    def _scan(self, relation: RelationSchema) -> Iterator[List[Any]]:
        """Raw rows of one relation, decoded into repro domain values."""
        cols = ", ".join(quote_identifier(a) for a in relation.attribute_names)
        name = quote_identifier(relation.name)
        try:
            cursor = self._conn.execute(
                f"SELECT {cols} FROM {name} ORDER BY rowid"
            )
        except sqlite3.OperationalError:  # WITHOUT ROWID tables
            cursor = self._conn.execute(f"SELECT {cols} FROM {name}")
        for raw in cursor:
            yield self._from_sql(relation, raw)

    def _to_sql(self, values: Sequence[Any]) -> List[Any]:
        return [None if is_null(v) else v for v in values]

    def _from_sql(self, relation: RelationSchema, raw: Sequence[Any]) -> List[Any]:
        out: List[Any] = []
        for attr, value in zip(relation.attributes, raw):
            if value is None:
                out.append(NULL)
            elif attr.dtype == BOOLEAN:
                out.append(bool(value))
            else:
                out.append(value)
        return out

    def _write_row(self, relation: str, values: Sequence[Any]) -> None:
        marks = ", ".join("?" for _ in values)
        self._conn.execute(
            f"INSERT INTO {quote_identifier(relation)} VALUES ({marks})",
            self._to_sql(values),
        )
        self._bump(relation)
        self._commit()

    def _rewrite(self, relation: str, rows: Sequence[Sequence[Any]]) -> None:
        """Replace the whole stored extension (UPDATE/DELETE write-through)."""
        name = quote_identifier(relation)
        self._conn.execute(f"DELETE FROM {name}")
        if rows:
            marks = ", ".join("?" for _ in rows[0])
            self._conn.executemany(
                f"INSERT INTO {name} VALUES ({marks})",
                [self._to_sql(r) for r in rows],
            )
        self._bump(relation)
        self._commit()

    def _bump(self, relation: str) -> None:
        self._versions[relation] = self._versions.get(relation, 0) + 1

    def _invalidate(self, relation: str) -> None:
        """Detach the mirror and purge statement/result caches (DDL)."""
        mirror = self._mirrors.pop(relation, None)
        if mirror is not None:
            mirror._backend = None
        self._rowcounts.pop(relation, None)
        for cache in (self._statements, self._results):
            stale = [k for k in cache if relation in k]
            for k in stale:
                del cache[k]

    def _commit(self) -> None:
        if not self._owns_connection:
            self._conn.commit()
