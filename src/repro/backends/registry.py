"""The backend registry: name → factory, shared by every entry point.

The CLI's ``--backend`` choices, the contract suite's parametrization,
and the differential harness all discover backends here instead of
hard-coding the list, so a new :class:`~repro.backends.base.
ExtensionBackend` becomes reachable everywhere with one
:func:`register_backend` call.

A factory is any zero-or-keyword-argument callable returning a fresh
backend; construction options (``pool_pages=8``) pass through
:func:`create_backend` as keyword arguments.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.exceptions import ReproError

__all__ = [
    "backend_factory",
    "backend_names",
    "create_backend",
    "register_backend",
]

_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_backend(name: str, factory: Callable[..., Any]) -> None:
    """Make *factory* available everywhere under *name*.

    Re-registering a name replaces its factory (tests swap in doubles);
    names are case-sensitive and should match the backend's ``kind``.
    """
    _REGISTRY[name] = factory


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name, in registration order."""
    return tuple(_REGISTRY)


def backend_factory(name: str) -> Callable[..., Any]:
    """The factory registered under *name*, or a one-line error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ReproError(
            f"unknown backend: {name!r} (registered backends: {known})"
        ) from None


def create_backend(name: str, **options: Any) -> Any:
    """A fresh backend instance of *name*, built with *options*."""
    return backend_factory(name)(**options)
