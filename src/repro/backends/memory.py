"""The in-memory extension backend.

Adapts the existing :class:`~repro.relational.table.Table` machinery to
the :class:`~repro.backends.base.ExtensionBackend` protocol.  This is
the seed engine of the reproduction: extensions are Python lists of
typed rows, primitives are answered by :mod:`repro.relational.algebra`,
and repeated ``||r[X]||`` probes are served from a distinct-value cache
guarded by each table's ``(generation, version)`` pair — the generation
guard is what makes a dropped-and-recreated relation (which can reach
the very same version as its predecessor) unable to alias a stale cache
entry.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Sequence, Tuple

from repro.exceptions import UnknownRelationError
from repro.relational import algebra
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.table import Table
from repro.backends.base import RowValues


class MemoryBackend:
    """Extension storage backed by in-process :class:`Table` objects."""

    kind = "memory"

    #: the four primitives are pure reads over in-process lists, so the
    #: batch executor may drive them from concurrent worker threads; the
    #: distinct cache tolerates racing writers (same key, same value —
    #: the worst case is one redundant scan, never a wrong answer)
    parallel_safe = True

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        # distinct-value cache, keyed by (relation, attrs) and guarded by
        # the table's (generation, version) — the engine's answer to the
        # many repeated ||r[X]|| probes the method issues.  The database
        # layer still counts every *logical* query; the cache only avoids
        # repeated physical scans.
        self._distinct_cache: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, schema: DatabaseSchema) -> None:
        """Create an empty table for every relation not yet stored."""
        for relation in schema:
            if relation.name not in self._tables:
                self._tables[relation.name] = Table(relation)

    def spawn(self) -> "MemoryBackend":
        """A fresh, empty in-memory backend."""
        return MemoryBackend()

    def close(self) -> None:
        """Drop all tables and caches."""
        self._tables.clear()
        self._distinct_cache.clear()

    # ------------------------------------------------------------------
    # relation lifecycle
    # ------------------------------------------------------------------
    def create_relation(self, relation: RelationSchema) -> Table:
        """Create empty storage for *relation*; return its table."""
        self._invalidate(relation.name)
        table = Table(relation)
        self._tables[relation.name] = table
        return table

    def drop_relation(self, name: str) -> None:
        """Drop the table and every cache entry about it."""
        self.table(name)  # raises UnknownRelationError
        self._invalidate(name)
        del self._tables[name]

    def replace_relation(self, relation: RelationSchema) -> Table:
        """Swap a relation's schema, projecting its extension (Restruct)."""
        self._invalidate(relation.name)
        old = self.table(relation.name)
        table = old.with_schema(relation)
        self._tables[relation.name] = table
        return table

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        """The live table holding one relation's extension."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def insert(self, relation: str, values: RowValues) -> None:
        """Append one typed tuple to the relation's table."""
        self.table(relation).insert(values)

    def insert_many(self, relation: str, rows: Iterable[RowValues]) -> None:
        """Append many tuples to the relation's table."""
        self.table(relation).insert_many(rows)

    def rows(self, relation: str) -> Iterator[Tuple[Any, ...]]:
        """Scan the extension in insertion order."""
        for row in self.table(relation):
            yield row.values

    def row_count(self, relation: str) -> int:
        """``|r|`` for one relation."""
        return len(self.table(relation))

    # ------------------------------------------------------------------
    # the paper's query primitives
    # ------------------------------------------------------------------
    def _distinct(self, relation: str, attrs: Sequence[str]) -> frozenset:
        """Cached distinct non-NULL projections (generation+version guarded)."""
        table = self.table(relation)
        key = (relation, tuple(attrs))
        token = (table.generation, table.version)
        cached = self._distinct_cache.get(key)
        if cached is not None and cached[0] == token:
            return cached[1]
        values = frozenset(algebra.distinct_values(table, tuple(attrs)))
        self._distinct_cache[key] = (token, values)
        return values

    def count_distinct(self, relation: str, attrs: Sequence[str]) -> int:
        """``||r[X]||`` via the cached distinct set."""
        return len(self._distinct(relation, attrs))

    def join_count(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> int:
        """``||r_k[A_k] ⋈ r_l[A_l]||`` as a distinct-set intersection."""
        return len(
            self._distinct(left, left_attrs) & self._distinct(right, right_attrs)
        )

    def fd_holds(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
        """Single-pass partition check over the stored rows."""
        return algebra.functional_maps(self.table(relation), lhs, rhs)

    def inclusion_holds(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> bool:
        """Distinct-set containment test."""
        return self._distinct(left, left_attrs) <= self._distinct(
            right, right_attrs
        )

    # ------------------------------------------------------------------
    # observability hook
    # ------------------------------------------------------------------
    def probe(
        self,
        primitive: str,
        relations: Tuple[str, ...],
        attributes: Tuple[Tuple[str, ...], ...],
    ) -> Tuple[bool, int]:
        """``(cache hit?, rows touched)`` for an imminent primitive call.

        ``fd_holds`` is never cached (it is a single-pass partition
        check); the other three are hits exactly when every projection
        they need is in the distinct-value cache.  A cold side costs one
        scan of its table.
        """
        if primitive == "fd_holds":
            return False, self.row_count(relations[0])
        rows = 0
        for relation, attrs in zip(relations, attributes):
            if not self._distinct_cached(relation, attrs):
                rows += self.row_count(relation)
        return rows == 0, rows

    def _distinct_cached(self, relation: str, attrs: Sequence[str]) -> bool:
        """Is the distinct set for (relation, attrs) cached and fresh?"""
        table = self.table(relation)
        cached = self._distinct_cache.get((relation, tuple(attrs)))
        return cached is not None and cached[0] == (table.generation, table.version)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _invalidate(self, relation: str) -> None:
        """Purge cache entries for one relation (any schema mutation)."""
        stale = [k for k in self._distinct_cache if k[0] == relation]
        for k in stale:
            del self._distinct_cache[k]
