"""The paged extension backend: out-of-core primitives on page files.

The third :class:`~repro.backends.base.ExtensionBackend`.  Extensions
live in native page files (:mod:`repro.storage.paged`) — one file per
relation, fixed-size slotted pages in a linked chain — and every page
the four counting primitives touch moves through one bounded
:class:`~repro.storage.paged.buffer.BufferPool`.  A scan pins exactly
one page at a time, so an extension of any size is analyzed with at
most ``pool_pages × page_size`` bytes of resident page data: the pool
is the knob, not the data.

The primitive algebra mirrors the in-memory backend exactly — distinct
non-NULL projections for ``count_distinct`` / ``join_count`` /
``inclusion_holds`` (cached per ``(relation, attrs)`` under a
never-reset per-relation version counter), and a single-pass witness
partition for ``fd_holds`` with the same NULL conventions
(NULL-bearing LHS tuples skipped; NULL on the RHS one marked value) —
so discovery results are bit-identical across backends, which the
differential harness enforces.

Row-level access hydrates a lazy write-through :class:`Table` mirror
(the same escape hatch as the SQLite backend): code that walks or
mutates tuples keeps working unchanged, while the page file stays
authoritative and the primitives never touch the mirror.

:meth:`PagedBackend.telemetry` exposes the pool and file counters
(hits, misses, evictions, write-backs, pages read/written); the
observability layer snapshots it around every primitive call and
attaches the deltas to the ``PrimitiveEvent`` stream, so ``repro
profile`` and ``repro trace diff`` can attribute a regression to pool
thrash.
"""

from __future__ import annotations

import shutil
import tempfile
import weakref
from typing import Any, Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.exceptions import StorageError, UnknownRelationError
from repro.relational.domain import is_null
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.table import Row, Table, order_values
from repro.backends.base import RowValues
from repro.storage.paged.buffer import BufferPool
from repro.storage.paged.codec import decode_row, encode_row
from repro.storage.paged.file_manager import DEFAULT_PAGE_SIZE, FileManager
from repro.storage.paged.page import Page, PageFullError

__all__ = ["PagedBackend"]

DEFAULT_POOL_PAGES = 64


class _PagedTable(Table):
    """A hydrated mirror of one paged relation; mutations write through.

    Same shape as the SQLite backend's mirror: ``_backend`` is None
    while hydrating (and after the relation is dropped or replaced),
    which turns the overrides back into plain in-memory operations.
    """

    def __init__(self, schema: RelationSchema) -> None:
        self._backend: Optional["PagedBackend"] = None
        super().__init__(schema)

    def insert(self, values: RowValues) -> Row:
        row = super().insert(values)
        if self._backend is not None:
            self._backend._append_values(self.name, row.values)
        return row

    def replace_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        super().replace_rows(rows)
        if self._backend is not None:
            self._backend._rewrite(self.name, [r.values for r in self])

    def delete_where(self, predicate) -> int:
        removed = super().delete_where(predicate)
        if removed and self._backend is not None:
            self._backend._rewrite(self.name, [r.values for r in self])
        return removed


class PagedBackend:
    """Extension storage in page files behind a bounded buffer pool."""

    kind = "paged"

    def __init__(
        self,
        directory: Optional[str] = None,
        pool_pages: int = DEFAULT_POOL_PAGES,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-paged-")
            self._owns_directory = True
            # belt and braces: reclaim the scratch directory even if the
            # caller forgets close()
            self._cleanup = weakref.finalize(
                self, shutil.rmtree, directory, ignore_errors=True
            )
        else:
            self._owns_directory = False
            self._cleanup = None
        self.directory = directory
        self._files = FileManager(directory, page_size)
        self._pool = BufferPool(
            pool_pages, self._files.read_page, self._files.write_page
        )
        self._schema: DatabaseSchema = DatabaseSchema()
        #: schema each relation's records were *written* under — decoding
        #: must not depend on the live DatabaseSchema, which the Database
        #: mutates before replace_relation() runs
        self._stored: Dict[str, RelationSchema] = {}
        #: per-relation write counter; every mutation bumps it, and it
        #: never resets, so cached results cannot alias across lifetimes
        self._versions: Dict[str, int] = {}
        #: distinct-value cache, keyed (relation, attrs), version-guarded
        self._distinct_cache: Dict[tuple, tuple] = {}
        #: lazily hydrated write-through mirrors for row-level access
        self._mirrors: Dict[str, _PagedTable] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, schema: DatabaseSchema) -> None:
        """Bind to *schema*; create any page file not on disk yet."""
        self._schema = schema
        for relation in schema:
            self._files.open(relation.name, create=True)
            self._stored.setdefault(relation.name, relation)
            self._versions.setdefault(relation.name, 0)

    def spawn(self) -> "PagedBackend":
        """A fresh paged backend on its own scratch directory."""
        return PagedBackend(
            pool_pages=self._pool.capacity, page_size=self._files.page_size
        )

    def close(self) -> None:
        """Flush the pool, sync headers, release files (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._mirrors.clear()
        self._distinct_cache.clear()
        self._pool.flush_all()
        self._files.close()
        if self._owns_directory and self._cleanup is not None:
            self._cleanup()

    # ------------------------------------------------------------------
    # relation lifecycle
    # ------------------------------------------------------------------
    def create_relation(self, relation: RelationSchema) -> Table:
        """A fresh page file for *relation*; returns its (empty) mirror."""
        self._invalidate(relation.name)
        self._pool.invalidate(relation.name)
        self._files.drop(relation.name)
        self._files.open(relation.name, create=True)
        self._stored[relation.name] = relation
        self._bump(relation.name)
        return self.table(relation.name)

    def drop_relation(self, name: str) -> None:
        """Delete the page file and purge every cache entry about it."""
        self._require(name)
        self._invalidate(name)
        self._pool.invalidate(name)
        self._files.drop(name)
        self._stored.pop(name, None)
        self._bump(name)

    def replace_relation(self, relation: RelationSchema) -> Table:
        """Project the stored extension onto a modified schema (Restruct).

        Decodes under the schema the records were written with, projects
        each tuple onto the new attribute list (duplicates kept,
        matching :meth:`Table.with_schema`), and rewrites the chain.
        """
        name = relation.name
        old = self._stored.get(name)
        if old is None:
            raise UnknownRelationError(name)
        positions = [old.position(a) for a in relation.attribute_names]
        projected = [
            tuple(values[p] for p in positions)
            for values in self._scan(name, old)
        ]
        self._invalidate(name)
        self._stored[name] = relation
        self._rewrite(name, projected)
        return self.table(name)

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        """The write-through mirror of one relation (hydrated lazily).

        The mirror holds the whole extension in memory — it is the
        row-level escape hatch, not the analysis path; the counting
        primitives stream pages and never hydrate it.
        """
        mirror = self._mirrors.get(name)
        if mirror is None:
            relation = self._stored_schema(name)
            mirror = _PagedTable(relation)
            for values in self._scan(name, relation):
                mirror.insert(values)
            mirror._backend = self
            self._mirrors[name] = mirror
        return mirror

    def insert(self, relation: str, values: RowValues) -> None:
        """Append one tuple; typing is validated before encoding."""
        mirror = self._mirrors.get(relation)
        if mirror is not None:
            mirror.insert(values)
            return
        rel = self._stored_schema(relation)
        row = Row(rel, order_values(rel, values))
        self._append_values(relation, row.values)

    def insert_many(self, relation: str, rows: Iterable[RowValues]) -> None:
        """Bulk append (one version bump for the whole batch)."""
        mirror = self._mirrors.get(relation)
        if mirror is not None:
            mirror.insert_many(rows)
            return
        rel = self._stored_schema(relation)
        wrote = False
        for values in rows:
            row = Row(rel, order_values(rel, values))
            self._append_encoded(relation, encode_row(row.values))
            wrote = True
        if wrote:
            self._bump(relation)
            self._files.open(relation).sync_header()

    def rows(self, relation: str) -> Iterator[Tuple[Any, ...]]:
        """Scan the stored extension in insertion (chain) order."""
        mirror = self._mirrors.get(relation)
        if mirror is not None:
            for row in mirror:
                yield row.values
            return
        for values in self._scan(relation, self._stored_schema(relation)):
            yield values

    def row_count(self, relation: str) -> int:
        """``|r|`` from the page-file header (no scan)."""
        mirror = self._mirrors.get(relation)
        if mirror is not None:
            return len(mirror)
        self._require(relation)
        return self._files.open(relation).row_count

    # ------------------------------------------------------------------
    # the paper's query primitives, over streaming page scans
    # ------------------------------------------------------------------
    def count_distinct(self, relation: str, attrs: Sequence[str]) -> int:
        """``||r[X]||`` via the cached distinct set."""
        return len(self._distinct(relation, attrs))

    def join_count(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> int:
        """``||r_k[A_k] ⋈ r_l[A_l]||`` as a distinct-set intersection."""
        return len(
            self._distinct(left, left_attrs) & self._distinct(right, right_attrs)
        )

    def fd_holds(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
        """Single-pass witness partition over the streamed pages.

        Same conventions as :func:`repro.relational.algebra.functional_maps`:
        NULL-bearing LHS tuples are skipped; NULL on the RHS is one
        marked value, so two NULLs agree.
        """
        rel = self._stored_schema(relation)
        lhs_pos = [rel.position(a) for a in lhs]
        rhs_pos = [rel.position(a) for a in rhs]
        witness: dict = {}
        for values in self._scan(relation, rel):
            key = tuple(values[p] for p in lhs_pos)
            if any(is_null(v) for v in key):
                continue
            image = tuple(values[p] for p in rhs_pos)
            if key in witness:
                if witness[key] != image:
                    return False
            else:
                witness[key] = image
        return True

    def inclusion_holds(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> bool:
        """Distinct-set containment test."""
        return self._distinct(left, left_attrs) <= self._distinct(
            right, right_attrs
        )

    # ------------------------------------------------------------------
    # observability hooks
    # ------------------------------------------------------------------
    def probe(
        self,
        primitive: str,
        relations: Tuple[str, ...],
        attributes: Tuple[Tuple[str, ...], ...],
    ) -> Tuple[bool, int]:
        """``(cache hit?, rows touched)`` for an imminent primitive call.

        Same shape as the in-memory backend: ``fd_holds`` always scans;
        the other three are hits exactly when every projection they
        need is in the distinct-value cache, and a cold side costs one
        streamed scan of its chain.
        """
        if primitive == "fd_holds":
            return False, self.row_count(relations[0])
        rows = 0
        for relation, attrs in zip(relations, attributes):
            if not self._distinct_cached(relation, attrs):
                rows += self.row_count(relation)
        return rows == 0, rows

    def telemetry(self) -> Dict[str, int]:
        """Monotonic storage counters for the ``PrimitiveEvent`` stream."""
        counters = self._pool.stats.as_dict()
        counters["pages_read"] = self._files.pages_read
        counters["pages_written"] = self._files.pages_written
        return counters

    @property
    def pool(self) -> BufferPool:
        """The buffer pool (read-only introspection: stats, residency)."""
        return self._pool

    @property
    def files(self) -> FileManager:
        """The file manager (read-only introspection: paths, counters)."""
        return self._files

    # ------------------------------------------------------------------
    # internals: scanning
    # ------------------------------------------------------------------
    def _scan(
        self, relation: str, rel: RelationSchema
    ) -> Iterator[Tuple[Any, ...]]:
        """Stream decoded tuples, pinning one page at a time."""
        arity = len(rel.attributes)
        file = self._files.open(relation)
        page_id = file.first_data
        hops = 0
        while page_id:
            page = self._pool.fetch(relation, page_id)
            try:
                decoded = [decode_row(r, arity) for r in page.records()]
                next_id = page.next_page
            finally:
                self._pool.unpin(relation, page_id)
            for values in decoded:
                yield values
            page_id = next_id
            hops += 1
            if hops > file.page_count:
                raise StorageError(
                    f"{file.path}: data-page chain is cyclic "
                    f"(visited {hops} pages of {file.page_count})"
                )

    def _distinct(self, relation: str, attrs: Sequence[str]) -> frozenset:
        """Cached distinct non-NULL projections (version-guarded)."""
        rel = self._stored_schema(relation)
        key = (relation, tuple(attrs))
        token = self._versions.get(relation, 0)
        cached = self._distinct_cache.get(key)
        if cached is not None and cached[0] == token:
            return cached[1]
        positions = [rel.position(a) for a in attrs]
        out = set()
        for values in self._scan(relation, rel):
            projection = tuple(values[p] for p in positions)
            if any(is_null(v) for v in projection):
                continue
            out.add(projection)
        result = frozenset(out)
        self._distinct_cache[key] = (token, result)
        return result

    def _distinct_cached(self, relation: str, attrs: Sequence[str]) -> bool:
        """Is the distinct set for (relation, attrs) cached and fresh?"""
        cached = self._distinct_cache.get((relation, tuple(attrs)))
        return cached is not None and cached[0] == self._versions.get(relation, 0)

    # ------------------------------------------------------------------
    # internals: writing
    # ------------------------------------------------------------------
    def _append_values(self, relation: str, values: Sequence[Any]) -> None:
        """Write-through append of one already-validated tuple."""
        self._append_encoded(relation, encode_row(values))
        self._bump(relation)
        self._files.open(relation).sync_header()

    def _append_encoded(self, relation: str, record: bytes) -> None:
        """Append one encoded record to the relation's chain tail."""
        file = self._files.open(relation)
        if file.last_data == 0:
            page_id = self._fresh_page(relation, file)
            file.first_data = file.last_data = page_id
        page_id = file.last_data
        page = self._pool.fetch(relation, page_id)
        dirty = False
        try:
            page.append(record)
            dirty = True
        except PageFullError:
            pass
        finally:
            self._pool.unpin(relation, page_id, dirty=dirty)
        if not dirty:
            new_id = self._fresh_page(relation, file)
            tail = self._pool.fetch(relation, page_id)
            try:
                tail.next_page = new_id
            finally:
                self._pool.unpin(relation, page_id, dirty=True)
            file.last_data = new_id
            page = self._pool.fetch(relation, new_id)
            try:
                page.append(record)
            finally:
                self._pool.unpin(relation, new_id, dirty=True)
        file.row_count += 1

    def _fresh_page(self, relation: str, file) -> int:
        """Allocate and zero-initialize one page, bypassing no counters."""
        page_id = file.allocate()
        self._files.write_page(relation, Page.empty(page_id, file.page_size))
        return page_id

    def _rewrite(self, relation: str, rows: Sequence[Sequence[Any]]) -> None:
        """Replace the whole stored extension (write-through / Restruct)."""
        self._pool.invalidate(relation)
        file = self._files.open(relation)
        for page_id in list(file.data_page_ids()):
            file.free(page_id)
        file.first_data = file.last_data = 0
        file.row_count = 0
        for values in rows:
            self._append_encoded(relation, encode_row(values))
        self._bump(relation)
        file.sync_header()

    # ------------------------------------------------------------------
    # internals: bookkeeping
    # ------------------------------------------------------------------
    def _require(self, name: str) -> RelationSchema:
        """The live schema of *name*, or UnknownRelationError."""
        if name not in self._schema:
            raise UnknownRelationError(name)
        return self._schema.relation(name)

    def _stored_schema(self, name: str) -> RelationSchema:
        """The schema the stored records decode under."""
        rel = self._stored.get(name)
        if rel is None:
            self._require(name)
            rel = self._schema.relation(name)
            self._stored[name] = rel
            self._files.open(name, create=True)
        return rel

    def _bump(self, relation: str) -> None:
        self._versions[relation] = self._versions.get(relation, 0) + 1

    def _invalidate(self, relation: str) -> None:
        """Detach the mirror and purge caches (any schema mutation)."""
        mirror = self._mirrors.pop(relation, None)
        if mirror is not None:
            mirror._backend = None
        stale = [k for k in self._distinct_cache if k[0] == relation]
        for k in stale:
            del self._distinct_cache[k]

    def __repr__(self) -> str:
        return (
            f"PagedBackend({self.directory!r}, "
            f"pool={self._pool.capacity}x{self._files.page_size}B)"
        )
