"""Data-dictionary introspection for SQLite databases.

§4 of the paper stresses that the input sets ``K`` (keys) and ``N``
(not-null attributes) "can be extracted from the data dictionary" of the
legacy DBMS without asking anyone.  For SQLite, that dictionary is the
``sqlite_master`` table and the ``PRAGMA table_info`` / ``index_list`` /
``index_info`` statements; this module reads them and rebuilds the
:class:`~repro.relational.schema.DatabaseSchema` — declared uniques,
not-null markers and column domains included — so an existing ``.db``
file can be reverse-engineered directly:

    >>> db = open_sqlite("legacy.db")
    >>> db.schema.key_set()       # K, straight from the dictionary
    >>> db.schema.not_null_set()  # N

Declared SQLite column types are mapped onto the engine's five domains
through SQLite's own affinity rules (``INT*`` → INTEGER, ``CHAR/CLOB/
TEXT`` → TEXT, ``REAL/FLOA/DOUB/NUM/DEC`` → REAL) with ``BOOL`` and
``DATE`` recognized before the numeric fallbacks.
"""

from __future__ import annotations

import os
import sqlite3
from typing import List, Optional, Tuple

from repro.exceptions import DataError
from repro.relational.attribute import Attribute
from repro.relational.database import Database
from repro.relational.domain import BOOLEAN, DATE, DataType, INTEGER, REAL, TEXT
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.backends.sqlite import SQLiteBackend, quote_identifier


def dtype_from_declared(declared: Optional[str]) -> DataType:
    """Map a declared SQLite column type onto a repro domain.

    Follows SQLite's type-affinity rules, with BOOL and DATE/TIME
    recognized first so round-tripped schemas keep their domains.
    """
    text = (declared or "").upper()
    if "BOOL" in text:
        return BOOLEAN
    if "DATE" in text or "TIME" in text:
        return DATE
    if "INT" in text:
        return INTEGER
    if any(tag in text for tag in ("CHAR", "CLOB", "TEXT")):
        return TEXT
    if any(tag in text for tag in ("REAL", "FLOA", "DOUB", "NUM", "DEC")):
        return REAL
    return TEXT


def _unique_index_columns(
    conn: sqlite3.Connection, table: str
) -> List[Tuple[str, ...]]:
    """Column tuples of every declared UNIQUE index on *table*."""
    uniques: List[Tuple[str, ...]] = []
    for row in conn.execute(f"PRAGMA index_list({quote_identifier(table)})"):
        # (seq, name, unique, origin, partial); origin 'pk' is the
        # primary key (already read from table_info), partial indexes
        # are filters, not declarations
        _, index_name, is_unique, origin, partial = row[:5]
        if not is_unique or origin == "pk" or partial:
            continue
        columns = [
            col
            for _, _, col in conn.execute(
                f"PRAGMA index_info({quote_identifier(index_name)})"
            )
            if col is not None  # expression index members have no column
        ]
        if columns:
            uniques.append(tuple(columns))
    return uniques


def introspect_schema(conn: sqlite3.Connection) -> DatabaseSchema:
    """Rebuild the declared schema — K and N included — from a connection."""
    schema = DatabaseSchema()
    tables = [
        name
        for (name,) in conn.execute(
            "SELECT name FROM sqlite_master "
            "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' "
            "ORDER BY name"
        )
    ]
    for table in tables:
        attributes: List[Attribute] = []
        pk_columns: List[Tuple[int, str]] = []
        for row in conn.execute(f"PRAGMA table_info({quote_identifier(table)})"):
            _, name, declared, not_null, _, pk = row[:6]
            attributes.append(
                Attribute(
                    name, dtype_from_declared(declared), nullable=not not_null
                )
            )
            if pk:
                pk_columns.append((pk, name))
        relation = RelationSchema(table, attributes)
        if pk_columns:
            relation.declare_unique(
                tuple(name for _, name in sorted(pk_columns))
            )
        for columns in _unique_index_columns(conn, table):
            relation.declare_unique(columns)
        schema.add(relation)
    return schema


def open_sqlite(source) -> Database:
    """Open a SQLite database as a fully backed :class:`Database`.

    *source* is a filesystem path (or an existing
    :class:`sqlite3.Connection`); the declared schema is introspected
    from the data dictionary and every extension query is pushed down to
    the engine.  The paper's ``K``/``N`` inputs therefore come from the
    DBMS itself — nothing is hand-declared:

        db = open_sqlite("legacy.db")
        result = DBREPipeline(db, expert).run(corpus=corpus)
    """
    if isinstance(source, sqlite3.Connection):
        backend = SQLiteBackend(connection=source)
    else:
        path = str(source)
        # sqlite3.connect would silently create a missing file — a
        # typo'd path must be an error, not an empty legacy system
        if path != ":memory:" and not os.path.exists(path):
            raise DataError(f"no such database file: {path}")
        backend = SQLiteBackend(path=path)
    try:
        schema = introspect_schema(backend.connection)
    except sqlite3.DatabaseError as exc:
        backend.close()
        raise DataError(f"not a SQLite database: {source} ({exc})") from exc
    return Database(schema, backend=backend)
