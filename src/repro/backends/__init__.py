"""Pluggable extension backends: where the database extension ``E`` lives.

The reverse-engineering method only ever talks to the extension through
four counting/checking primitives plus row scans and inserts
(:class:`~repro.backends.base.ExtensionBackend`).  Three
implementations ship with the reproduction:

- :class:`~repro.backends.memory.MemoryBackend` — the original
  in-process engine (typed :class:`Table` rows, algebra-module
  primitives, distinct-value caching);
- :class:`~repro.backends.sqlite.SQLiteBackend` — pushes every
  primitive down to SQLite as SQL, with per-relation statement caching
  and version-guarded result invalidation; also implements the optional
  ``execute_batch`` hook (:class:`~repro.backends.base.
  BatchCapableBackend`), answering a whole probe chunk from
  :mod:`repro.engine` in one grouped statement;
- :class:`~repro.backends.paged.PagedBackend` — the out-of-core
  engine: native page files behind a bounded LRU buffer pool
  (:mod:`repro.storage.paged`), streaming every primitive so
  extensions larger than the pool are analyzed with bounded memory.

Backends register themselves in :mod:`repro.backends.registry`
(name → factory); the CLI's ``--backend`` choices, the contract suite,
and the differential harness discover them there
(:func:`backend_names` / :func:`create_backend`).

:func:`~repro.backends.introspect.open_sqlite` opens an existing ``.db``
file, reading the paper's ``K``/``N`` input sets straight from SQLite's
data dictionary (``PRAGMA table_info`` / ``index_list``).

See ``docs/BACKENDS.md`` for the protocol, the pushdown SQL, the page
file format, and the dictionary mapping.
"""

from repro.backends.base import BatchCapableBackend, ExtensionBackend
from repro.backends.memory import MemoryBackend
from repro.backends.paged import PagedBackend
from repro.backends.registry import (
    backend_factory,
    backend_names,
    create_backend,
    register_backend,
)
from repro.backends.sqlite import SQLiteBackend
from repro.backends.introspect import (
    dtype_from_declared,
    introspect_schema,
    open_sqlite,
)

register_backend("memory", MemoryBackend)
register_backend("sqlite", SQLiteBackend)
register_backend("paged", PagedBackend)

__all__ = [
    "BatchCapableBackend",
    "ExtensionBackend",
    "MemoryBackend",
    "PagedBackend",
    "SQLiteBackend",
    "backend_factory",
    "backend_names",
    "create_backend",
    "dtype_from_declared",
    "introspect_schema",
    "open_sqlite",
    "register_backend",
]
