"""Evaluation: scoring recovered semantics against ground truth.

- :mod:`repro.evaluation.metrics` — precision / recall / F1 over FD and
  IND sets, with implication-aware matching (a recovered dependency that
  is *implied by* the truth is not a false positive);
- :mod:`repro.evaluation.schema_match` — did the restructured schema
  recover the original normalized relations?
- :mod:`repro.evaluation.counters` — interaction / query-cost accounting.
"""

from repro.evaluation.metrics import (
    PrecisionRecall,
    score_fds,
    score_inds,
    score_refs,
)
from repro.evaluation.schema_match import SchemaRecovery, score_schema_recovery
from repro.evaluation.counters import (
    CostReport,
    batching_summary,
    cost_report,
    cost_report_from_trace,
)

__all__ = [
    "PrecisionRecall",
    "score_fds",
    "score_inds",
    "score_refs",
    "SchemaRecovery",
    "score_schema_recovery",
    "CostReport",
    "batching_summary",
    "cost_report",
    "cost_report_from_trace",
]
