"""Did the restructured schema recover the original normalized design?

A synthetic scenario knows the 3NF schema the legacy system *was*
designed from.  After the pipeline runs, each original relation should
correspond to some relation of the restructured schema with the same
attribute *payload* (names were invented by the expert, so matching is
by attribute sets — which are unambiguous here thanks to the generator's
global attribute prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema
from repro.workloads.denormalizer import GroundTruth


@dataclass
class SchemaRecovery:
    """Per-original-relation recovery verdicts."""

    recovered: Dict[str, str] = field(default_factory=dict)     # original -> found
    partial: Dict[str, Tuple[str, float]] = field(default_factory=dict)
    missing: List[str] = field(default_factory=list)

    @property
    def recovery_rate(self) -> float:
        total = len(self.recovered) + len(self.partial) + len(self.missing)
        if total == 0:
            return 1.0
        return len(self.recovered) / total

    def __repr__(self) -> str:
        return (
            f"SchemaRecovery({len(self.recovered)} exact, "
            f"{len(self.partial)} partial, {len(self.missing)} missing; "
            f"rate={self.recovery_rate:.2f})"
        )


def _attr_key_set(schema: DatabaseSchema, name: str) -> frozenset:
    return frozenset(schema.relation(name).attribute_names)


def score_schema_recovery(
    truth: GroundTruth, restructured: Database
) -> SchemaRecovery:
    """Match each *original* (pre-denormalization) relation to the output.

    Matching is by attribute-set overlap: exact set equality counts as
    recovered; the best Jaccard overlap above 0.5 counts as partial.  A
    merged parent is sought by its payload plus its key-equivalent: the
    restructured relation that Restruct split off carries the anchoring
    foreign key as its key, so its attribute set is
    ``{fk} ∪ payload`` — that is what we look for.
    """
    result = SchemaRecovery()
    out_schema = restructured.schema
    out_sets = {name: _attr_key_set(out_schema, name) for name in out_schema.relation_names}

    normalized = truth.normalized.schema
    merges_by_parent = {m.parent: m for m in truth.merges}

    for original in normalized.relation_names:
        merge = merges_by_parent.get(original)
        if merge is None:
            target = frozenset(normalized.relation(original).attribute_names)
        else:
            # the split relation is keyed by the anchoring fk
            target = frozenset((merge.fk_attr,) + merge.payload)

        exact = [name for name, attrs in out_sets.items() if attrs == target]
        if exact:
            result.recovered[original] = exact[0]
            continue
        best_name: Optional[str] = None
        best_score = 0.0
        for name, attrs in out_sets.items():
            union = len(attrs | target)
            score = len(attrs & target) / union if union else 0.0
            if score > best_score:
                best_name, best_score = name, score
        if best_name is not None and best_score >= 0.5:
            result.partial[original] = (best_name, round(best_score, 3))
        else:
            result.missing.append(original)
    return result
