"""Precision / recall over dependency sets.

Plain set comparison is too strict for dependencies: recovering
``emp -> skill`` and ``emp -> proj`` as one FD ``emp -> skill, proj`` is
a perfect result, and an IND implied by the truth via transitivity is
not a false positive.  The scorers therefore match *atoms*: FDs are
compared after splitting right-hand sides, INDs with optional
closure-aware credit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Set

from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.dependencies.ind_inference import transitive_closure_inds
from repro.relational.attribute import AttributeRef


@dataclass(frozen=True)
class PrecisionRecall:
    """The usual trio, with the raw counts kept for reporting."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __repr__(self) -> str:
        return (
            f"P={self.precision:.2f} R={self.recall:.2f} F1={self.f1:.2f} "
            f"(tp={self.true_positives}, fp={self.false_positives}, "
            f"fn={self.false_negatives})"
        )


def _score_sets(recovered: Set, truth: Set) -> PrecisionRecall:
    tp = len(recovered & truth)
    return PrecisionRecall(
        true_positives=tp,
        false_positives=len(recovered) - tp,
        false_negatives=len(truth) - tp,
    )


def score_fds(
    recovered: Sequence[FunctionalDependency],
    truth: Sequence[FunctionalDependency],
) -> PrecisionRecall:
    """Atom-level comparison: each ``lhs -> single-attribute`` counts once."""
    def atoms(fds: Sequence[FunctionalDependency]) -> Set:
        out: Set = set()
        for fd in fds:
            for part in fd.split_rhs():
                out.add((part.relation, part.lhs, tuple(part.rhs)[0]))
        return out

    return _score_sets(atoms(recovered), atoms(truth))


def score_inds(
    recovered: Sequence[InclusionDependency],
    truth: Sequence[InclusionDependency],
    closure_credit: bool = True,
) -> PrecisionRecall:
    """IND comparison; with *closure_credit*, a recovered dependency in
    the transitive closure of the truth counts as correct."""
    recovered_set = set(recovered)
    truth_set = set(truth)
    if closure_credit:
        credited = set(transitive_closure_inds(truth))
        tp = len(recovered_set & (truth_set | credited))
    else:
        tp = len(recovered_set & truth_set)
    return PrecisionRecall(
        true_positives=tp,
        false_positives=len(recovered_set) - tp,
        false_negatives=len(truth_set - recovered_set),
    )


def score_refs(
    recovered: Sequence[AttributeRef], truth: Sequence[AttributeRef]
) -> PrecisionRecall:
    """Plain set comparison for hidden-object identifier sets."""
    return _score_sets(set(recovered), set(truth))
