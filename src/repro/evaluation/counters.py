"""Cost accounting: extension queries and expert interactions.

The paper's efficiency argument is qualitative ("the equi-join analysis
focuses on relevant attributes enforcing the efficiency of the
elicitation"); these counters make it quantitative for the S-series
benchmarks.

Since the observability layer landed, the counts are *views over the
tracer's event stream*: a :class:`~repro.relational.database.Database`
carries a ``TracedQueryCounter`` whose figures are computed from the
recorded :class:`~repro.obs.tracer.PrimitiveEvent` records, and
:func:`cost_report_from_trace` assembles the same :class:`CostReport`
straight from a tracer.  There is no second bookkeeping to drift: a
``CostReport`` total always equals the number of events in the stream
it was derived from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.expert import RecordingExpert
from repro.engine.executor import EngineStats
from repro.obs.tracer import Tracer
from repro.relational.database import QueryCounter


@dataclass(frozen=True)
class CostReport:
    """One run's costs, broken down by kind."""

    count_distinct_queries: int
    join_count_queries: int
    fd_checks: int
    inclusion_checks: int
    expert_decisions: int
    expert_by_kind: Dict[str, int]

    @property
    def total_queries(self) -> int:
        """All extension queries, across the four primitives."""
        return (
            self.count_distinct_queries
            + self.join_count_queries
            + self.fd_checks
            + self.inclusion_checks
        )

    def __repr__(self) -> str:
        return (
            f"CostReport(queries={self.total_queries}, "
            f"decisions={self.expert_decisions})"
        )


def _expert_costs(expert: Optional[RecordingExpert]):
    by_kind: Dict[str, int] = {}
    decisions = 0
    if expert is not None:
        for interaction in expert.log:
            by_kind[interaction.kind] = by_kind.get(interaction.kind, 0) + 1
        decisions = expert.decision_count
    return decisions, by_kind


def cost_report(
    counter: QueryCounter, expert: Optional[RecordingExpert] = None
) -> CostReport:
    """Assemble a :class:`CostReport` from the pipeline's instruments."""
    decisions, by_kind = _expert_costs(expert)
    return CostReport(
        count_distinct_queries=counter.count_distinct,
        join_count_queries=counter.join_count,
        fd_checks=counter.fd_checks,
        inclusion_checks=counter.inclusion_checks,
        expert_decisions=decisions,
        expert_by_kind=by_kind,
    )


def batching_summary(stats: EngineStats) -> Dict[str, float]:
    """Flat figures describing what the batched engine saved.

    ``logical_probes`` is what the serial pipeline would have issued (and
    what the trace still records, one event per logical probe), so
    ``call_reduction`` — logical probes per physical backend call — is
    directly comparable to the serial run's ``CostReport.total_queries``.
    """
    calls = stats.backend_calls
    return {
        "logical_probes": stats.logical_probes,
        "unique_probes": stats.unique_probes,
        "deduped_probes": stats.deduped_probes,
        "groups": stats.groups,
        "backend_calls": calls,
        "batched_calls": stats.batched_calls,
        "parallel_groups": stats.parallel_groups,
        "call_reduction": (stats.logical_probes / calls) if calls else 0.0,
    }


def cost_report_from_trace(
    tracer: Tracer, expert: Optional[RecordingExpert] = None
) -> CostReport:
    """A :class:`CostReport` summed directly from the event stream."""
    counts = {
        "count_distinct": 0,
        "join_count": 0,
        "fd_holds": 0,
        "inclusion_holds": 0,
    }
    for event in tracer.events:
        if event.primitive in counts:
            counts[event.primitive] += 1
    decisions, by_kind = _expert_costs(expert)
    return CostReport(
        count_distinct_queries=counts["count_distinct"],
        join_count_queries=counts["join_count"],
        fd_checks=counts["fd_holds"],
        inclusion_checks=counts["inclusion_holds"],
        expert_decisions=decisions,
        expert_by_kind=by_kind,
    )
