"""Cost accounting: extension queries and expert interactions.

The paper's efficiency argument is qualitative ("the equi-join analysis
focuses on relevant attributes enforcing the efficiency of the
elicitation"); these counters make it quantitative for the S-series
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.expert import RecordingExpert
from repro.core.pipeline import PipelineResult
from repro.relational.database import QueryCounter


@dataclass(frozen=True)
class CostReport:
    """One run's costs, broken down by kind."""

    count_distinct_queries: int
    join_count_queries: int
    fd_checks: int
    inclusion_checks: int
    expert_decisions: int
    expert_by_kind: Dict[str, int]

    @property
    def total_queries(self) -> int:
        return (
            self.count_distinct_queries
            + self.join_count_queries
            + self.fd_checks
            + self.inclusion_checks
        )

    def __repr__(self) -> str:
        return (
            f"CostReport(queries={self.total_queries}, "
            f"decisions={self.expert_decisions})"
        )


def cost_report(
    counter: QueryCounter, expert: Optional[RecordingExpert] = None
) -> CostReport:
    """Assemble a :class:`CostReport` from the pipeline's instruments."""
    by_kind: Dict[str, int] = {}
    decisions = 0
    if expert is not None:
        for interaction in expert.log:
            by_kind[interaction.kind] = by_kind.get(interaction.kind, 0) + 1
        decisions = expert.decision_count
    return CostReport(
        count_distinct_queries=counter.count_distinct,
        join_count_queries=counter.join_count,
        fd_checks=counter.fd_checks,
        inclusion_checks=counter.inclusion_checks,
        expert_decisions=decisions,
        expert_by_kind=by_kind,
    )
