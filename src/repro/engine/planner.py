"""The counting-primitive query planner.

Discovery phases issue thousands of probes, many of them redundant: every
equi-join of ``Q`` re-asks ``||r[X]||`` for sides it shares with other
joins, and RHS-Discovery fans one relation's extension into dozens of FD
checks.  The planner turns a flat probe list into a :class:`QueryPlan`:

1. **dedupe** — structurally identical probes collapse into one backend
   evaluation (first-occurrence order is kept, so execution and event
   emission stay deterministic);
2. **group** — unique probes that read the same relation footprint are
   placed in one :class:`ProbeGroup`, the unit a backend can answer in a
   single pass (one grouped SQL statement, one worker task).

Planning is pure: no extension access, no side effects, same plan for
the same probe list every time.  The :class:`~repro.engine.executor.
BatchExecutor` consumes the plan and restores per-request results, so
callers never observe the dedupe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.engine.probes import Probe

__all__ = ["ProbeGroup", "QueryPlan", "plan_probes"]


@dataclass(frozen=True)
class ProbeGroup:
    """Unique probes sharing one relation footprint: one backend pass."""

    footprint: Tuple[str, ...]
    probes: Tuple[Probe, ...]

    def __repr__(self) -> str:
        return f"ProbeGroup({'+'.join(self.footprint)}, {len(self.probes)} probes)"


@dataclass(frozen=True)
class QueryPlan:
    """The planner's output: what to evaluate, and how it maps back."""

    requests: Tuple[Probe, ...]   # as submitted, duplicates kept
    unique: Tuple[Probe, ...]     # first-occurrence order
    groups: Tuple[ProbeGroup, ...]  # unique probes, partitioned by footprint

    @property
    def duplicates(self) -> int:
        """Probes the dedupe pass saved from reaching the backend."""
        return len(self.requests) - len(self.unique)

    def __repr__(self) -> str:
        return (
            f"QueryPlan({len(self.requests)} requests, "
            f"{len(self.unique)} unique, {len(self.groups)} groups)"
        )


def plan_probes(probes: Sequence[Probe]) -> QueryPlan:
    """Dedupe and group *probes* into an executable :class:`QueryPlan`."""
    requests = tuple(probes)

    seen: Dict[tuple, Probe] = {}
    unique: List[Probe] = []
    for probe in requests:
        if probe.key not in seen:
            seen[probe.key] = probe
            unique.append(probe)

    grouped: Dict[Tuple[str, ...], List[Probe]] = {}
    order: List[Tuple[str, ...]] = []
    for probe in unique:
        footprint = probe.footprint
        if footprint not in grouped:
            grouped[footprint] = []
            order.append(footprint)
        grouped[footprint].append(probe)

    groups = tuple(
        ProbeGroup(footprint=f, probes=tuple(grouped[f])) for f in order
    )
    return QueryPlan(requests=requests, unique=tuple(unique), groups=groups)
