"""Declarative counting-primitive probes.

A :class:`Probe` names one of the paper's four extension questions —
``||r[X]||``, ``||r_k[A_k] ⋈ r_l[A_l]||``, FD satisfaction, inclusion —
without executing it.  Discovery phases build probes for every candidate
up front and hand them to the :class:`~repro.engine.executor.BatchExecutor`,
which answers them all at once; the probe is therefore the unit the
planner dedupes, groups and dispatches.

A probe is a pure value: frozen, hashable, and structurally comparable,
so two candidates that ask the same question produce *equal* probes and
the planner can collapse them into one backend evaluation.  The
``relations``/``attributes`` layout mirrors the observability hook and
:class:`~repro.obs.tracer.PrimitiveEvent`: one relation and one
attribute tuple for ``count_distinct``; two of each for ``join_count``
and ``inclusion_holds``; one relation with the ``(lhs, rhs)`` attribute
tuples for ``fd_holds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import ArityError

__all__ = ["PROBE_PRIMITIVES", "Probe"]

#: the four instrumented extension primitives a probe may name
PROBE_PRIMITIVES = ("count_distinct", "join_count", "fd_holds", "inclusion_holds")

#: how many relations each primitive reads
_RELATION_COUNTS = {
    "count_distinct": 1,
    "join_count": 2,
    "fd_holds": 1,
    "inclusion_holds": 2,
}


@dataclass(frozen=True)
class Probe:
    """One declarative counting-primitive request."""

    primitive: str
    relations: Tuple[str, ...]
    attributes: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", tuple(self.relations))
        object.__setattr__(
            self, "attributes", tuple(tuple(a) for a in self.attributes)
        )
        if self.primitive not in PROBE_PRIMITIVES:
            raise ValueError(f"unknown probe primitive {self.primitive!r}")
        expected = _RELATION_COUNTS[self.primitive]
        if len(self.relations) != expected:
            raise ValueError(
                f"{self.primitive} probe names {len(self.relations)} "
                f"relation(s), expected {expected}"
            )
        expected_attrs = 1 if self.primitive == "count_distinct" else 2
        if len(self.attributes) != expected_attrs:
            raise ValueError(
                f"{self.primitive} probe carries {len(self.attributes)} "
                f"attribute tuple(s), expected {expected_attrs}"
            )

    # ------------------------------------------------------------------
    # constructors (mirror the Database primitive signatures)
    # ------------------------------------------------------------------
    @classmethod
    def distinct(cls, relation: str, attrs: Sequence[str]) -> "Probe":
        """``||r[X]||`` — select count distinct X from R."""
        return cls("count_distinct", (relation,), (tuple(attrs),))

    @classmethod
    def join(
        cls,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> "Probe":
        """``||r_k[A_k] ⋈ r_l[A_l]||`` — distinct matching combinations."""
        if len(left_attrs) != len(right_attrs):
            raise ArityError(
                f"equi-join arity mismatch: {list(left_attrs)} vs "
                f"{list(right_attrs)}"
            )
        return cls(
            "join_count", (left, right), (tuple(left_attrs), tuple(right_attrs))
        )

    @classmethod
    def fd(cls, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> "Probe":
        """Does ``lhs -> rhs`` hold in the stored extension?"""
        return cls("fd_holds", (relation,), (tuple(lhs), tuple(rhs)))

    @classmethod
    def inclusion(
        cls,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> "Probe":
        """Does ``R_left[A] ≪ R_right[B]`` hold in the stored extension?"""
        if len(left_attrs) != len(right_attrs):
            raise ArityError(
                f"inclusion arity mismatch: {list(left_attrs)} vs "
                f"{list(right_attrs)}"
            )
        return cls(
            "inclusion_holds",
            (left, right),
            (tuple(left_attrs), tuple(right_attrs)),
        )

    # ------------------------------------------------------------------
    # planner views
    # ------------------------------------------------------------------
    @property
    def key(self) -> tuple:
        """Structural identity: equal keys mean equal answers."""
        return (self.primitive, self.relations, self.attributes)

    @property
    def footprint(self) -> Tuple[str, ...]:
        """The set of relations the probe reads, as a sorted tuple."""
        return tuple(sorted(set(self.relations)))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{r}[{','.join(a)}]" for r, a in zip(self.relations, self.attributes)
        )
        if self.primitive == "fd_holds":
            lhs, rhs = self.attributes
            parts = f"{self.relations[0]}: {','.join(lhs)} -> {','.join(rhs)}"
        return f"Probe({self.primitive} {parts})"
