"""The batch executor: answer a probe list as few backend passes as possible.

The executor is the runtime half of :mod:`repro.engine`: it takes the
flat probe list a discovery phase submitted, runs it through the
:mod:`~repro.engine.planner`, evaluates the unique probes with the
cheapest strategy the backend supports, and hands back one answer per
*submitted* probe, in submission order:

- **pushdown** — a backend that exposes the optional ``execute_batch``
  hook (:class:`~repro.backends.sqlite.SQLiteBackend`) answers a whole
  chunk of probes in one grouped statement; the executor walks the plan
  group by group so probes sharing a relation land in the same pass;
- **parallel** — a backend that declares itself ``parallel_safe``
  (:class:`~repro.backends.memory.MemoryBackend`: pure in-process reads)
  has its probe groups evaluated on ``concurrent.futures`` worker
  threads;
- **serial** — any other backend is driven one probe at a time, so
  third-party backends that only implement the four primitives keep
  working unchanged;
- **process** — an executor handed a
  :class:`~repro.service.pool.ProcessProbeExecutor` ships probe chunks
  to worker *processes*, each owning a private backend instance rebuilt
  from a payload snapshot; a pool that exhausts its bounded retries
  (crashes, hung batches) raises
  :class:`~repro.exceptions.WorkerPoolError` and the executor falls
  back to the serial path for that batch, so a broken pool degrades
  throughput, never correctness.

Whatever the strategy, observability is preserved **per logical probe**:
the executor records one :class:`~repro.obs.tracer.PrimitiveEvent` for
every submitted probe — deduped duplicates appear as zero-cost cache
hits — under an ``engine`` span nested in the calling phase, so
:class:`~repro.relational.database.TracedQueryCounter`, the metrics
exporters and the benchmark-regression gate see exactly the query
stream a serial run produces.  Events are emitted from the submitting
thread in submission order, never from workers, which keeps traces (and
therefore the differential tests) deterministic across worker counts.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

from repro.engine.planner import ProbeGroup, QueryPlan, plan_probes
from repro.engine.probes import Probe
from repro.exceptions import WorkerPoolError
from repro.obs.instrument import telemetry_delta

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.base import ExtensionBackend
    from repro.relational.database import Database
    from repro.service.pool import ProcessProbeExecutor

__all__ = ["EngineStats", "BatchExecutor", "dispatch_probe"]

#: probes per grouped ``execute_batch`` statement; well under SQLite's
#: default 2000-result-column limit while still amortizing round trips
DEFAULT_CHUNK_SIZE = 32

#: below this many unique probes a thread pool costs more than it saves
DEFAULT_MIN_PARALLEL = 8


@dataclass
class EngineStats:
    """Cumulative accounting of one executor's batches.

    ``logical_probes`` counts what the discovery phases asked;
    ``backend_calls`` counts what actually reached the backend — the gap
    is the dedupe and grouping the planner bought.  The S7 benchmark and
    the regression gate read these figures.
    """

    batches: int = 0
    logical_probes: int = 0
    unique_probes: int = 0
    groups: int = 0
    backend_calls: int = 0     # physical backend invocations of any kind
    batched_calls: int = 0     # grouped execute_batch statements issued
    parallel_groups: int = 0   # groups evaluated on worker threads
    process_chunks: int = 0    # chunks answered by worker processes
    pool_fallbacks: int = 0    # batches the pool failed and serial re-ran

    @property
    def deduped_probes(self) -> int:
        """Probes answered without their own backend evaluation."""
        return self.logical_probes - self.unique_probes

    def as_dict(self) -> Dict[str, int]:
        """A JSON-ready snapshot (used by benchmarks and span attributes)."""
        return {
            "batches": self.batches,
            "logical_probes": self.logical_probes,
            "unique_probes": self.unique_probes,
            "deduped_probes": self.deduped_probes,
            "groups": self.groups,
            "backend_calls": self.backend_calls,
            "batched_calls": self.batched_calls,
            "parallel_groups": self.parallel_groups,
            "process_chunks": self.process_chunks,
            "pool_fallbacks": self.pool_fallbacks,
        }

    def __repr__(self) -> str:
        return (
            f"EngineStats({self.logical_probes} logical -> "
            f"{self.unique_probes} unique -> {self.backend_calls} backend calls)"
        )


@dataclass
class _Evaluation:
    """One unique probe's measured evaluation."""

    value: Any = None
    start: float = 0.0
    duration: float = 0.0
    cache_hit: bool = False
    rows_touched: int = 0
    #: storage telemetry deltas (backends with a ``telemetry()`` hook)
    counters: Dict[str, int] = field(default_factory=dict)


class BatchExecutor:
    """Plans and executes probe batches against one database.

    The executor is bound to a :class:`~repro.relational.database.Database`
    and talks to its *raw* backend (not the instrumented wrapper): event
    recording is the executor's own job, one event per logical probe, so
    the query accounting a batched run produces is indistinguishable
    from a serial run's.
    """

    def __init__(
        self,
        database: "Database",
        max_workers: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        min_parallel: int = DEFAULT_MIN_PARALLEL,
        pool: "ProcessProbeExecutor" = None,
    ) -> None:
        self.database = database
        #: 0 = auto-size from the host; 1 = never spawn workers
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.chunk_size = max(1, chunk_size)
        self.min_parallel = min_parallel
        #: a process pool promotes the executor to the process strategy;
        #: the caller owns the pool's lifetime (the pipeline closes it)
        self.pool = pool
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # the public entry point
    # ------------------------------------------------------------------
    def run(self, probes: Sequence[Probe]) -> List[Any]:
        """Answer every probe; results align with *probes* by position."""
        plan = plan_probes(probes)
        if not plan.requests:
            return []
        backend = self.database.backend
        tracer = self.database.tracer

        with tracer.span("engine", kind="engine") as span:
            evaluations = self._execute(backend, plan)
            span.attributes["logical"] = len(plan.requests)
            span.attributes["unique"] = len(plan.unique)
            span.attributes["groups"] = len(plan.groups)

            kind = getattr(backend, "kind", type(backend).__name__)
            emitted: set = set()
            for probe in plan.requests:
                evaluation = evaluations[probe.key]
                first = probe.key not in emitted
                emitted.add(probe.key)
                tracer.record_event(
                    primitive=probe.primitive,
                    backend=kind,
                    relations=probe.relations,
                    attributes=probe.attributes,
                    # a deduped duplicate is a zero-cost cache hit: the
                    # answer was already computed inside this batch
                    start=evaluation.start if first else tracer.now(),
                    duration=evaluation.duration if first else 0.0,
                    cache_hit=evaluation.cache_hit if first else True,
                    rows_touched=evaluation.rows_touched if first else 0,
                    counters=evaluation.counters if first else None,
                )

        self.stats.batches += 1
        self.stats.logical_probes += len(plan.requests)
        self.stats.unique_probes += len(plan.unique)
        self.stats.groups += len(plan.groups)
        return [evaluations[p.key].value for p in plan.requests]

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def _execute(
        self, backend: "ExtensionBackend", plan: QueryPlan
    ) -> Dict[tuple, _Evaluation]:
        evaluations = {p.key: self._profiled(backend, p) for p in plan.unique}
        if self.pool is not None:
            try:
                self._execute_process(plan, evaluations)
                return evaluations
            except WorkerPoolError as exc:
                # the pool exhausted its retries: answer this batch on
                # the parent's own backend instead of losing the run
                self.stats.pool_fallbacks += 1
                self.database.tracer.pool_event(
                    "fallback", reason=str(exc), probes=len(plan.unique)
                )
        if callable(getattr(backend, "execute_batch", None)):
            self._execute_pushdown(backend, plan, evaluations)
        elif (
            getattr(backend, "parallel_safe", False)
            and self.max_workers > 1
            and len(plan.groups) > 1
            and len(plan.unique) >= self.min_parallel
        ):
            self._execute_parallel(backend, plan, evaluations)
        else:
            self._execute_serial(backend, plan, evaluations)
        return evaluations

    def _execute_pushdown(
        self,
        backend: "ExtensionBackend",
        plan: QueryPlan,
        evaluations: Dict[tuple, _Evaluation],
    ) -> None:
        """One grouped statement per chunk, walking the plan group-wise."""
        tracer = self.database.tracer
        ordered = [probe for group in plan.groups for probe in group.probes]
        chunks = list(_chunks(ordered, self.chunk_size))
        for index, chunk in enumerate(chunks, start=1):
            start = tracer.now()
            values = backend.execute_batch(chunk)
            duration = tracer.now() - start
            # the engine answered the chunk in one pass; attribute the
            # wall time evenly so per-primitive latencies stay additive
            share = duration / len(chunk)
            for probe, value in zip(chunk, values):
                evaluation = evaluations[probe.key]
                evaluation.value = value
                evaluation.start = start
                evaluation.duration = share
            self.stats.backend_calls += 1
            self.stats.batched_calls += 1
            tracer.progress(
                "pushdown chunk answered", current=index, total=len(chunks),
                probes=len(chunk),
            )

    def _execute_process(
        self, plan: QueryPlan, evaluations: Dict[tuple, _Evaluation]
    ) -> None:
        """Probe chunks on worker processes via the service pool.

        The workers answer against their own private backend copies and
        report value + timing + cache/telemetry figures per probe; the
        parent merges them keyed by probe, then emits events itself in
        submission order, so traces stay deterministic regardless of
        which worker answered when.
        """
        tracer = self.database.tracer
        ordered = [probe for group in plan.groups for probe in group.probes]
        chunks = list(_chunks(ordered, self.chunk_size))
        answered = self.pool.execute(chunks)
        for index, (chunk, records) in enumerate(zip(chunks, answered), start=1):
            start = tracer.now()
            for probe, record in zip(chunk, records):
                evaluation = evaluations[probe.key]
                evaluation.value = record["value"]
                evaluation.start = start
                evaluation.duration = record["duration"]
                evaluation.cache_hit = record["cache_hit"]
                evaluation.rows_touched = record["rows_touched"]
                evaluation.counters = record["counters"]
            self.stats.backend_calls += 1
            self.stats.process_chunks += 1
            tracer.progress(
                "process chunk merged", current=index, total=len(chunks),
                probes=len(chunk),
            )

    def _execute_parallel(
        self,
        backend: "ExtensionBackend",
        plan: QueryPlan,
        evaluations: Dict[tuple, _Evaluation],
    ) -> None:
        """Probe groups on worker threads; results keyed, order immaterial."""
        workers = min(self.max_workers, len(plan.groups))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(self._run_group, backend, group)
                for group in plan.groups
            ]
            for future in futures:
                for probe, value, start, duration, counters in future.result():
                    evaluation = evaluations[probe.key]
                    evaluation.value = value
                    evaluation.start = start
                    evaluation.duration = duration
                    evaluation.counters = counters
        self.stats.backend_calls += len(plan.unique)
        self.stats.parallel_groups += len(plan.groups)

    def _execute_serial(
        self,
        backend: "ExtensionBackend",
        plan: QueryPlan,
        evaluations: Dict[tuple, _Evaluation],
    ) -> None:
        """The universal fallback: one primitive call per unique probe."""
        for group in plan.groups:
            for probe, value, start, duration, counters in self._run_group(
                backend, group
            ):
                evaluation = evaluations[probe.key]
                evaluation.value = value
                evaluation.start = start
                evaluation.duration = duration
                evaluation.counters = counters
        self.stats.backend_calls += len(plan.unique)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_group(
        self, backend: "ExtensionBackend", group: ProbeGroup
    ) -> List[Tuple[Probe, Any, float, float, Dict[str, int]]]:
        """Evaluate one group serially, timing each probe."""
        tracer = self.database.tracer
        hook = getattr(backend, "telemetry", None)
        out = []
        for probe in group.probes:
            before = hook() if hook is not None else None
            start = tracer.now()
            value = dispatch_probe(backend, probe)
            duration = tracer.now() - start
            after = hook() if hook is not None else None
            out.append(
                (probe, value, start, duration,
                 telemetry_delta(before, after) or {})
            )
        return out

    def _profiled(self, backend: "ExtensionBackend", probe: Probe) -> _Evaluation:
        """Seed an evaluation with the backend's observability probe."""
        hook = getattr(backend, "probe", None)
        if hook is None:
            return _Evaluation()
        cache_hit, rows_touched = hook(
            probe.primitive, probe.relations, probe.attributes
        )
        return _Evaluation(cache_hit=cache_hit, rows_touched=rows_touched)


def dispatch_probe(backend: "ExtensionBackend", probe: Probe) -> Any:
    """One probe, one primitive call (shared with the pool's workers)."""
    if probe.primitive == "count_distinct":
        return backend.count_distinct(probe.relations[0], probe.attributes[0])
    if probe.primitive == "join_count":
        return backend.join_count(
            probe.relations[0], probe.attributes[0],
            probe.relations[1], probe.attributes[1],
        )
    if probe.primitive == "fd_holds":
        return backend.fd_holds(
            probe.relations[0], probe.attributes[0], probe.attributes[1]
        )
    return backend.inclusion_holds(
        probe.relations[0], probe.attributes[0],
        probe.relations[1], probe.attributes[1],
    )


#: historical private name, still used by the property-based suite
_dispatch = dispatch_probe


def _chunks(items: List[Probe], size: int):
    for start in range(0, len(items), size):
        yield items[start:start + size]
