"""The counting-primitive query engine: probes, planner, batch executor.

IND-Discovery (§6.1) and RHS-Discovery (§6.2.2) reduce to thousands of
distinct-count, join-count and FD probes against the extension.  Issued
one synchronous call at a time they dominate the pipeline's wall clock;
this package lets a phase submit them *declaratively* instead:

1. build one :class:`Probe` per question (:mod:`repro.engine.probes`);
2. the planner dedupes structurally identical probes and groups probes
   sharing a relation (:mod:`repro.engine.planner`);
3. the :class:`BatchExecutor` answers the plan with the cheapest
   strategy the backend offers — grouped SQL pushdown via the optional
   ``execute_batch`` hook, worker threads for parallel-safe in-process
   backends, or a serial fallback — while recording one trace event per
   logical probe so query accounting matches a serial run exactly
   (:mod:`repro.engine.executor`).

``DBREPipeline(..., engine="batched")`` (CLI: ``--engine batched``)
routes IND- and RHS-Discovery through one shared executor; the default
``serial`` mode keeps the original call-at-a-time behavior.  The
differential suite under ``tests/engine`` proves both modes produce
bit-identical pipeline output on every workload scenario and backend.
"""

from repro.engine.executor import BatchExecutor, EngineStats
from repro.engine.planner import ProbeGroup, QueryPlan, plan_probes
from repro.engine.probes import PROBE_PRIMITIVES, Probe

__all__ = [
    "PROBE_PRIMITIVES",
    "Probe",
    "ProbeGroup",
    "QueryPlan",
    "plan_probes",
    "BatchExecutor",
    "EngineStats",
]
