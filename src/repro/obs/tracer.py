"""Structured tracing: nested spans and primitive-level events.

The paper's efficiency argument (§6) is about *where* extension queries
go; the :class:`Tracer` makes that observable.  One tracer collects two
ordered streams for a reverse-engineering run:

- **spans** — timed, named, nested intervals.  The pipeline opens one
  root ``pipeline`` span and one ``phase`` span per algorithm
  (IND-Discovery, LHS-Discovery, RHS-Discovery, Restruct, Translate);
  any caller may open further spans around its own work.
- **events** — one :class:`PrimitiveEvent` per instrumented extension
  primitive (``count_distinct``, ``join_count``, ``fd_holds``,
  ``inclusion_holds``), recorded by the
  :class:`~repro.obs.instrument.InstrumentedBackend` wrapper with wall
  time, backend kind, cache hit/miss and rows touched.  Each event
  carries the id of the span it happened under, so per-phase query
  accounting falls out of the stream.

The event stream is the *single* source of truth for query accounting:
:class:`~repro.relational.database.TracedQueryCounter` and
:func:`repro.evaluation.counters.cost_report` are views over it — there
is no second set of hand-maintained counters to drift out of sync.

Timestamps come from an injectable monotonic clock (default
:func:`time.perf_counter`), so tests can drive the tracer with a fake
clock and assert exact durations.

The tracer can additionally stream both streams *live*: attaching a
:class:`~repro.obs.live.LiveBus` (:meth:`Tracer.live`, or implicitly
via :meth:`Tracer.subscribe`) publishes one ``repro/live@1`` record per
span open, span close and primitive event, plus :meth:`progress` ticks
and worker-pool incidents, to every bounded subscriber queue.  Without
a bus every hook is a single ``is None`` test, so the no-subscriber
pipeline pays nothing (the S13 benchmark enforces it).
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.live import LiveBus, LiveSubscription

__all__ = ["SpanRecord", "PrimitiveEvent", "Tracer", "PHASE_NAMES", "PRIMITIVES"]

#: the five pipeline phases, in execution order (§6-§7 of the paper)
PHASE_NAMES = (
    "IND-Discovery",
    "LHS-Discovery",
    "RHS-Discovery",
    "Restruct",
    "Translate",
)

#: the four instrumented extension primitives (§2 of the paper)
PRIMITIVES = ("count_distinct", "join_count", "fd_holds", "inclusion_holds")


@dataclass
class SpanRecord:
    """One timed interval: a pipeline phase or any caller-opened scope."""

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str = "span"
    start: float = 0.0
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: the owning tracer's clock, for elapsed-so-far on open spans
    clock: Optional[Callable[[], float]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def open(self) -> bool:
        """True while the span has not been closed."""
        return self.end is None

    @property
    def duration(self) -> float:
        """Seconds between start and end.

        An *open* span reports the elapsed time so far against the
        tracer clock it was started on — so summarizing the trace of a
        crashed or still-running pipeline shows real durations, not
        zeros.  (Without a clock — a hand-built record — it reports
        0.0.)  Exports flag such spans as open.
        """
        if self.end is None:
            if self.clock is None:
                return 0.0
            return self.clock() - self.start
        return self.end - self.start

    def __repr__(self) -> str:
        state = " open" if self.open else ""
        return (
            f"SpanRecord({self.name!r}, kind={self.kind!r}, "
            f"duration={self.duration * 1000:.3f}ms{state})"
        )


@dataclass(frozen=True)
class PrimitiveEvent:
    """One instrumented extension-primitive call.

    ``relations``/``attributes`` mirror the call's arguments: one
    relation and one attribute tuple for ``count_distinct``, two of each
    for ``join_count``/``inclusion_holds``, and one relation with the
    ``(lhs, rhs)`` attribute tuples for ``fd_holds``.  ``rows_touched``
    is the number of stored rows a cold evaluation scans — 0 when the
    backend answered from a cache.

    ``counters`` carries per-call storage telemetry deltas when the
    backend exposes a monotonic ``telemetry()`` hook (the paged
    backend's buffer pool: ``pool_hits``, ``pool_misses``,
    ``pool_evictions``, ``pool_write_backs``, ``pages_read``,
    ``pages_written``).  Empty for backends without the hook, so
    existing traces are unchanged.
    """

    span_id: Optional[int]
    primitive: str
    backend: str
    relations: Tuple[str, ...]
    attributes: Tuple[Tuple[str, ...], ...]
    start: float
    duration: float
    cache_hit: bool
    rows_touched: int
    counters: Dict[str, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        rels = ",".join(self.relations)
        hit = "hit" if self.cache_hit else "miss"
        return f"PrimitiveEvent({self.primitive} {rels} {hit})"


class Tracer:
    """Collects the span and event streams of one (or more) runs.

    With ``profile_memory=True`` the tracer also tracks
    :mod:`tracemalloc` around every span: each closed span gains
    ``mem_peak_kb`` (the peak traced allocation observed while the span
    was open, child peaks included) and ``mem_current_kb`` (traced
    allocation at close) attributes.  tracemalloc's peak counter is
    global, so the tracer checkpoints it at every span boundary and
    propagates the reading to every span still open — nested peaks
    stay correct.  Opt-in because tracemalloc slows allocation-heavy
    code measurably; the default tracer never imports it.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        profile_memory: bool = False,
    ) -> None:
        self._clock = clock
        self._next_id = 1
        self._stack: List[SpanRecord] = []
        #: completed and open spans, ordered by start time
        self.spans: List[SpanRecord] = []
        #: primitive events, ordered by occurrence
        self.events: List[PrimitiveEvent] = []
        #: the live-telemetry bus; None until a subscriber attaches, so
        #: every publishing hook below is a single attribute test
        self._live: Optional["LiveBus"] = None
        self._tracemalloc = None
        self._mem_peaks: Dict[int, int] = {}
        if profile_memory:
            import tracemalloc

            self._tracemalloc = tracemalloc
            if not tracemalloc.is_tracing():
                tracemalloc.start()

    @property
    def profiles_memory(self) -> bool:
        """True when the tracer records tracemalloc peaks per span."""
        return self._tracemalloc is not None

    def _memory_checkpoint(self) -> int:
        """Fold the global peak into every open span; reset the peak.

        Returns the current traced allocation in bytes.
        """
        current, peak = self._tracemalloc.get_traced_memory()
        for record in self._stack:
            tracked = self._mem_peaks.get(record.span_id, 0)
            self._mem_peaks[record.span_id] = max(tracked, peak)
        self._tracemalloc.reset_peak()
        return current

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        """The tracer's monotonic clock (injectable for tests)."""
        return self._clock()

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def start_span(self, name: str, kind: str = "span", **attributes: Any) -> SpanRecord:
        """Open a span under the current one; prefer :meth:`span`."""
        if self._tracemalloc is not None:
            current = self._memory_checkpoint()
            self._mem_peaks[self._next_id] = current
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            start=self.now(),
            attributes=dict(attributes),
            clock=self._clock,
        )
        self._next_id += 1
        self.spans.append(record)
        self._stack.append(record)
        if self._live is not None:
            self._live.span_opened(record)
        return record

    def end_span(self, record: SpanRecord) -> SpanRecord:
        """Close *record* (and any unclosed children left on the stack).

        Closing a record that is *not* on the stack — already closed, or
        never started on this tracer — warns and closes only that
        record: it must not tear down every open span of the run.
        """
        if not any(top is record for top in self._stack):
            if record.end is None:
                record.end = self.now()
                if self._live is not None:
                    self._live.span_closed(record)
            warnings.warn(
                f"end_span: span {record.name!r} (id {record.span_id}) is not "
                f"on the span stack; open spans left untouched",
                RuntimeWarning,
                stacklevel=2,
            )
            return record
        current = self._memory_checkpoint() if self._tracemalloc is not None else None
        while self._stack:
            top = self._stack.pop()
            top.end = self.now()
            if current is not None:
                peak = self._mem_peaks.pop(top.span_id, current)
                top.attributes["mem_peak_kb"] = round(peak / 1024.0, 1)
                top.attributes["mem_current_kb"] = round(current / 1024.0, 1)
            if self._live is not None:
                self._live.span_closed(top)
            if top is record:
                break
        return record

    @contextmanager
    def span(self, name: str, kind: str = "span", **attributes: Any) -> Iterator[SpanRecord]:
        """Context manager: a timed span around the enclosed work.

        Yields the live :class:`SpanRecord`, so callers can attach
        attributes computed inside the scope::

            with tracer.span("IND-Discovery", kind="phase") as span:
                result = step.run(...)
                span.attributes["inds"] = len(result.inds)
        """
        record = self.start_span(name, kind, **attributes)
        try:
            yield record
        finally:
            self.end_span(record)

    def current_span_id(self) -> Optional[int]:
        """The id of the innermost open span, or None outside any span."""
        return self._stack[-1].span_id if self._stack else None

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def record_event(
        self,
        primitive: str,
        backend: str,
        relations: Tuple[str, ...],
        attributes: Tuple[Tuple[str, ...], ...],
        start: float,
        duration: float,
        cache_hit: bool,
        rows_touched: int,
        counters: Optional[Dict[str, int]] = None,
    ) -> PrimitiveEvent:
        """Append one primitive event, attributed to the open span."""
        event = PrimitiveEvent(
            span_id=self.current_span_id(),
            primitive=primitive,
            backend=backend,
            relations=tuple(relations),
            attributes=tuple(tuple(a) for a in attributes),
            start=start,
            duration=duration,
            cache_hit=cache_hit,
            rows_touched=rows_touched,
            counters=dict(counters) if counters else {},
        )
        self.events.append(event)
        if self._live is not None:
            record: Dict[str, Any] = {
                "span": event.span_id,
                "primitive": event.primitive,
                "backend": event.backend,
                "relations": list(event.relations),
                "duration_ms": round(event.duration * 1000.0, 6),
                "cache_hit": event.cache_hit,
                "rows_touched": event.rows_touched,
            }
            if event.counters:
                record["counters"] = dict(event.counters)
            self._live.publish("primitive", **record)
        return event

    # ------------------------------------------------------------------
    # live telemetry
    # ------------------------------------------------------------------
    def live(self) -> "LiveBus":
        """The tracer's live bus, attaching one on first use.

        Attaching mid-run immediately publishes a ``span-open`` record
        (flagged ``snapshot``) for every span currently open, so the
        bus history starts from a consistent view of the run.
        """
        if self._live is None:
            from repro.obs.live import LiveBus

            bus = LiveBus(clock=self._clock)
            for record in self._stack:
                bus.span_opened(record, snapshot=True)
            self._live = bus
        return self._live

    @property
    def live_bus(self) -> Optional["LiveBus"]:
        """The attached bus, or None when nothing ever subscribed."""
        return self._live

    def subscribe(
        self, maxsize: int = 0, replay_from: Optional[int] = None
    ) -> "LiveSubscription":
        """Attach a bounded live subscriber (snapshot-then-tail).

        See :meth:`repro.obs.live.LiveBus.subscribe`; *maxsize* 0 means
        the default queue bound.
        """
        from repro.obs.live import DEFAULT_QUEUE_SIZE

        return self.live().subscribe(
            maxsize=maxsize or DEFAULT_QUEUE_SIZE, replay_from=replay_from
        )

    def unsubscribe(self, subscription: "LiveSubscription") -> None:
        """Detach *subscription* from the live bus."""
        if self._live is not None:
            self._live.unsubscribe(subscription)

    def progress(
        self,
        message: str,
        current: Optional[int] = None,
        total: Optional[int] = None,
        **attributes: Any,
    ) -> None:
        """Publish one ``progress`` tick under the open span.

        A no-op (one attribute test) when no subscriber ever attached —
        instrumented loops can call it unconditionally.  The record
        carries the innermost open span id and the innermost enclosing
        *phase* name, so consumers can render per-phase progress without
        reconstructing the span tree.
        """
        if self._live is None:
            return
        record: Dict[str, Any] = {
            "span": self.current_span_id(),
            "phase": self.current_phase(),
            "message": message,
        }
        if current is not None:
            record["current"] = current
        if total is not None:
            record["total"] = total
        record.update(attributes)
        self._live.publish("progress", **record)

    def pool_event(self, event: str, **details: Any) -> None:
        """Publish one worker-pool incident (respawn/timeout/fallback).

        Same zero-cost contract as :meth:`progress`.
        """
        if self._live is None:
            return
        self._live.publish(
            "pool", event=event, span=self.current_span_id(), **details
        )

    def current_phase(self) -> Optional[str]:
        """The innermost open span of kind ``phase``, or None."""
        for record in reversed(self._stack):
            if record.kind == "phase":
                return record.name
        return None

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop both streams (open spans included)."""
        self.spans.clear()
        self.events.clear()
        self._stack.clear()
        self._mem_peaks.clear()
        self._next_id = 1

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self.spans)}, events={len(self.events)})"
