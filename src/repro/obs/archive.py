"""The durable run archive: ``repro/archive@1`` on disk.

Everything the telemetry layer produces for a run — the trace, the
metrics summary, the live capture, the provenance DAG, the job's ledger
record — died with the server process until now.  This module gives the
service a **content-addressed on-disk archive**: each finished run is
stored under a key derived from the same content fingerprints the
results cache uses, so the archive *is* a persistent results cache —
a restarted ``repro serve --archive DIR`` restores its ledger and
answers repeat submissions as cache hits for work a previous process
did.

Layout (everything under one root directory)::

    DIR/
      index.jsonl            # header line + one entry per archived run
      runs/<key>/
        record.json          # the run's manifest (ledger record, stats,
                             # rendered EER, fingerprints, artifact map)
        trace.jsonl          # repro/trace@1
        metrics.json         # repro/metrics@1
        live.jsonl           # repro/live@1 (the retained stream)
        provenance.jsonl     # repro/provenance@1 (when the run kept one)

``<key>`` is :func:`run_key` — a hash of (database fingerprint,
workload fingerprint, config token), i.e. the results-cache key.  Two
submissions with identical content share one archived run (the second
is a cache hit and never runs); a re-run after a *failed* attempt
overwrites the same slot, and the append-only index resolves to the
latest entry per key.

Crash consistency: artifacts are written into the run directory first,
and the index line is appended **last** — the commit point.  A process
killed mid-write leaves either no index entry (the partial run
directory is ignored and overwritten by the next attempt) or a complete
one.  :meth:`RunArchive.runs` additionally drops index entries whose
manifest has gone missing, so a hand-pruned archive (deleting old
``runs/<key>`` directories to reclaim space) keeps restoring cleanly.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.live import LiveStats
from repro.util.jsonl import load_jsonl, save_jsonl

__all__ = [
    "ARCHIVE_FORMAT",
    "ArchivedRun",
    "RunArchive",
    "run_key",
]

#: the versioned format tag of the on-disk run archive
ARCHIVE_FORMAT = "repro/archive@1"

_INDEX_NAME = "index.jsonl"
_RUNS_DIR = "runs"

#: artifact name → file name inside a run directory
_ARTIFACT_FILES = {
    "trace": "trace.jsonl",
    "metrics": "metrics.json",
    "live": "live.jsonl",
    "provenance": "provenance.jsonl",
}


def run_key(
    database_fingerprint: str, workload_fingerprint: str, config_token: str
) -> str:
    """The content address of one run: a hash of its cache key.

    The same triple the in-memory results cache keys on, folded into a
    short stable hex digest that is safe as a directory name.
    """
    digest = hashlib.sha256()
    for part in (database_fingerprint, workload_fingerprint, config_token):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:20]


@dataclass
class ArchivedRun:
    """One restorable run: its manifest plus where its artifacts live."""

    key: str
    record: Dict[str, Any]
    #: (database fingerprint, workload fingerprint, config token)
    cache_key: Tuple[str, str, str]
    stats: LiveStats = field(repr=False, default_factory=LiveStats)
    eer: Optional[str] = field(repr=False, default=None)
    #: artifact name → absolute path, for artifacts actually on disk
    artifacts: Dict[str, str] = field(default_factory=dict, repr=False)

    @property
    def job_id(self) -> str:
        return self.record.get("id", "")

    @property
    def state(self) -> str:
        return self.record.get("state", "")


class RunArchive:
    """Read/write access to one ``repro/archive@1`` directory.

    Thread-compat note: :meth:`store` is called from the job manager's
    runner threads; each call writes a distinct run directory and the
    index append is a single ``write`` of one line, so concurrent
    stores interleave safely at the line level.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(os.path.join(self.root, _RUNS_DIR), exist_ok=True)
        self._index_path = os.path.join(self.root, _INDEX_NAME)

    def __repr__(self) -> str:
        return f"RunArchive({self.root!r})"

    # -- writing -------------------------------------------------------
    def store(
        self,
        record: Dict[str, Any],
        cache_key: Tuple[str, str, str],
        trace: Optional[List[Dict[str, Any]]] = None,
        metrics: Optional[Dict[str, Any]] = None,
        live: Optional[List[Dict[str, Any]]] = None,
        provenance: Optional[List[Dict[str, Any]]] = None,
        stats: Optional[LiveStats] = None,
        eer: Optional[str] = None,
    ) -> str:
        """Archive one finished run; returns its content key.

        *record* is the job's ``repro/jobs@1`` ledger record; the
        artifact streams are the already-rendered export records
        (header included).  Artifacts land first, the manifest second,
        the index line last — the commit point.
        """
        key = run_key(*cache_key)
        run_dir = os.path.join(self.root, _RUNS_DIR, key)
        os.makedirs(run_dir, exist_ok=True)
        artifacts: Dict[str, str] = {}
        streams: Dict[str, Optional[List[Dict[str, Any]]]] = {
            "trace": trace,
            "live": live,
            "provenance": provenance,
        }
        for name, records in streams.items():
            if records is None:
                continue
            save_jsonl(records, os.path.join(run_dir, _ARTIFACT_FILES[name]))
            artifacts[name] = _ARTIFACT_FILES[name]
        if metrics is not None:
            with open(
                os.path.join(run_dir, _ARTIFACT_FILES["metrics"]),
                "w",
                encoding="utf-8",
            ) as handle:
                json.dump(metrics, handle, indent=2, sort_keys=True)
                handle.write("\n")
            artifacts["metrics"] = _ARTIFACT_FILES["metrics"]
        manifest = {
            "format": ARCHIVE_FORMAT,
            "type": "run",
            "key": key,
            "database_fingerprint": cache_key[0],
            "workload_fingerprint": cache_key[1],
            "config_token": cache_key[2],
            "archived_at": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "record": record,
            "stats": (stats or LiveStats()).as_dict(),
            "eer": eer,
            "artifacts": artifacts,
        }
        with open(
            os.path.join(run_dir, "record.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        self._append_index(
            {
                "type": "run",
                "key": key,
                "job": record.get("id"),
                "label": record.get("label"),
                "state": record.get("state"),
                "database_fingerprint": cache_key[0],
                "workload_fingerprint": cache_key[1],
                "archived_at": manifest["archived_at"],
            }
        )
        return key

    def _append_index(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(entry, sort_keys=True, default=str) + "\n"
        if not os.path.exists(self._index_path):
            header = json.dumps(
                {"type": "header", "format": ARCHIVE_FORMAT}, sort_keys=True
            )
            line = header + "\n" + line
        with open(self._index_path, "a", encoding="utf-8") as handle:
            handle.write(line)

    # -- reading -------------------------------------------------------
    def index(self) -> List[Dict[str, Any]]:
        """The raw index entries, latest-per-key, oldest first.

        Raises :class:`ValueError` when the index exists but is not a
        ``repro/archive@1`` index; an absent index is an empty archive.
        """
        if not os.path.exists(self._index_path):
            return []
        # read tolerantly, not via load_jsonl: a process killed mid-append
        # leaves a torn final line, and that one uncommitted entry must
        # cost one run, not the whole archive
        records: List[Dict[str, Any]] = []
        with open(self._index_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
        if not records or records[0].get("format") != ARCHIVE_FORMAT:
            raise ValueError(
                f"not a {ARCHIVE_FORMAT} index: {self._index_path!r}"
            )
        latest: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        for entry in records[1:]:
            key = entry.get("key")
            if not key:
                continue
            if key not in latest:
                order.append(key)
            latest[key] = entry
        return [latest[key] for key in order]

    def runs(self) -> List["ArchivedRun"]:
        """Every restorable run, in first-archived order.

        Index entries whose manifest is missing or unreadable (a
        pruned or half-written run directory) are silently skipped —
        the archive restores what it can.
        """
        runs: List[ArchivedRun] = []
        for entry in self.index():
            run = self.load(entry["key"])
            if run is not None:
                runs.append(run)
        return runs

    def load(self, key: str) -> Optional[ArchivedRun]:
        """One run by content key, or None when it cannot be read."""
        run_dir = os.path.join(self.root, _RUNS_DIR, key)
        manifest_path = os.path.join(run_dir, "record.json")
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if manifest.get("format") != ARCHIVE_FORMAT:
            return None
        record = manifest.get("record")
        if not isinstance(record, dict) or not record.get("id"):
            return None
        artifacts = {
            name: os.path.join(run_dir, file_name)
            for name, file_name in (manifest.get("artifacts") or {}).items()
            if os.path.exists(os.path.join(run_dir, file_name))
        }
        return ArchivedRun(
            key=key,
            record=record,
            cache_key=(
                manifest.get("database_fingerprint", ""),
                manifest.get("workload_fingerprint", ""),
                manifest.get("config_token", ""),
            ),
            stats=LiveStats.from_dict(manifest.get("stats") or {}),
            eer=manifest.get("eer"),
            artifacts=artifacts,
        )

    def read_artifact(self, key: str, name: str) -> Optional[List[Dict[str, Any]]]:
        """A run's JSONL artifact records (header included), or None.

        *name* is ``trace`` / ``live`` / ``provenance``.  The metrics
        document is JSON, not JSONL — read it via :meth:`read_metrics`.
        """
        if name not in ("trace", "live", "provenance"):
            raise ValueError(f"unknown JSONL artifact {name!r}")
        path = os.path.join(self.root, _RUNS_DIR, key, _ARTIFACT_FILES[name])
        if not os.path.exists(path):
            return None
        try:
            return load_jsonl(path)
        except ValueError:
            return None

    def read_metrics(self, key: str) -> Optional[Dict[str, Any]]:
        """A run's archived ``repro/metrics@1`` document, or None."""
        path = os.path.join(self.root, _RUNS_DIR, key, _ARTIFACT_FILES["metrics"])
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
