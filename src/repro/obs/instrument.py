"""The thin instrumentation wrapper between Database and backend.

Backend code stays clean: neither :class:`MemoryBackend` nor
:class:`SQLiteBackend` knows the tracer exists.  The
:class:`~repro.relational.database.Database` routes its four counting
primitives through an :class:`InstrumentedBackend`, which

1. asks the backend's :meth:`probe` observability hook whether the call
   will be served from a cache and how many stored rows a cold
   evaluation would scan,
2. times the delegated call on the tracer's clock, and
3. records one :class:`~repro.obs.tracer.PrimitiveEvent` on the tracer.

Every other attribute access falls through to the wrapped backend
(``__getattr__``), so lifecycle, row access and backend-specific
introspection (``connection``, private caches) behave exactly as if the
wrapper were not there.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence, Tuple

from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.base import ExtensionBackend

__all__ = ["InstrumentedBackend", "telemetry_delta"]


def telemetry_delta(before: Any, after: Any) -> Any:
    """The nonzero counter movement between two ``telemetry()`` snapshots.

    Returns None (→ an empty ``counters`` on the event) when the backend
    has no telemetry hook or nothing moved, so backends without storage
    counters keep emitting exactly the events they always did.
    """
    if before is None or after is None:
        return None
    delta = {
        key: after[key] - before.get(key, 0)
        for key in after
        if after[key] != before.get(key, 0)
    }
    return delta or None


class InstrumentedBackend:
    """Delegates to a backend; emits one event per counting primitive."""

    def __init__(self, inner: "ExtensionBackend", tracer: Tracer) -> None:
        self._inner = inner
        self._tracer = tracer
        self._kind = getattr(inner, "kind", type(inner).__name__)

    @property
    def inner(self) -> "ExtensionBackend":
        """The wrapped backend."""
        return self._inner

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    # ------------------------------------------------------------------
    # the four instrumented primitives
    # ------------------------------------------------------------------
    def count_distinct(self, relation: str, attrs: Sequence[str]) -> int:
        """``||r[X]||`` with one event recorded."""
        attrs = tuple(attrs)
        return self._timed(
            "count_distinct",
            (relation,),
            (attrs,),
            lambda: self._inner.count_distinct(relation, attrs),
        )

    def join_count(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> int:
        """``||r_k[A_k] ⋈ r_l[A_l]||`` with one event recorded."""
        left_attrs, right_attrs = tuple(left_attrs), tuple(right_attrs)
        return self._timed(
            "join_count",
            (left, right),
            (left_attrs, right_attrs),
            lambda: self._inner.join_count(left, left_attrs, right, right_attrs),
        )

    def fd_holds(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
        """FD satisfaction with one event recorded."""
        lhs, rhs = tuple(lhs), tuple(rhs)
        return self._timed(
            "fd_holds",
            (relation,),
            (lhs, rhs),
            lambda: self._inner.fd_holds(relation, lhs, rhs),
        )

    def inclusion_holds(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
    ) -> bool:
        """Inclusion test with one event recorded."""
        left_attrs, right_attrs = tuple(left_attrs), tuple(right_attrs)
        return self._timed(
            "inclusion_holds",
            (left, right),
            (left_attrs, right_attrs),
            lambda: self._inner.inclusion_holds(left, left_attrs, right, right_attrs),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _timed(
        self,
        primitive: str,
        relations: Tuple[str, ...],
        attributes: Tuple[Tuple[str, ...], ...],
        call: Callable[[], Any],
    ) -> Any:
        cache_hit, rows_touched = self._profile(primitive, relations, attributes)
        before = self._telemetry()
        start = self._tracer.now()
        value = call()
        duration = self._tracer.now() - start
        self._tracer.record_event(
            primitive=primitive,
            backend=self._kind,
            relations=relations,
            attributes=attributes,
            start=start,
            duration=duration,
            cache_hit=cache_hit,
            rows_touched=rows_touched,
            counters=telemetry_delta(before, self._telemetry()),
        )
        return value

    def _telemetry(self) -> Any:
        """The backend's monotonic storage counters, or None without them."""
        hook = getattr(self._inner, "telemetry", None)
        return hook() if hook is not None else None

    def _profile(
        self,
        primitive: str,
        relations: Tuple[str, ...],
        attributes: Tuple[Tuple[str, ...], ...],
    ) -> Tuple[bool, int]:
        """(cache hit?, rows a cold evaluation scans) — before the call."""
        probe = getattr(self._inner, "probe", None)
        if probe is None:
            return False, 0
        return probe(primitive, relations, attributes)

    def __repr__(self) -> str:
        return f"InstrumentedBackend({self._inner!r})"
