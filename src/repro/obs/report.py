"""The single-file HTML audit report (``repro report``).

One self-contained HTML document per reverse-engineering run, built
from the exported observability artifacts — no JavaScript frameworks,
no external assets, so it can be archived next to the trace files and
opened years later:

- the span tree and primitive rollups of the JSONL trace
  (:func:`repro.obs.export.summarize_trace`);
- the derived metrics tables (phases, primitives, backends, totals);
- the expert dialogue — every ``decision`` node of the provenance DAG,
  in elicitation order;
- one collapsible derivation chain (:func:`repro.obs.provenance.explain`)
  per referential integrity constraint and EER construct;
- the Graphviz DOT source of the lineage graph, ready to paste into
  ``dot -Tsvg``.

Both inputs are optional: a report can be rendered from a trace alone,
a provenance export alone, or both.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional

from repro.obs.export import metrics_from_records, summarize_trace
from repro.obs.provenance import (
    KIND_TITLES,
    explain,
    provenance_to_dot,
)

__all__ = ["render_html_report"]

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 60em; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .2em; }
h2 { border-bottom: 1px solid #bbb; padding-bottom: .15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: .3em .7em; text-align: left; }
th { background: #f0f0f0; }
pre { background: #f7f7f7; border: 1px solid #ddd; padding: 1em;
      overflow-x: auto; font-size: .85em; }
details { margin: .5em 0; }
summary { cursor: pointer; font-weight: bold; }
.dialogue dt { font-weight: bold; margin-top: .8em; }
.dialogue dd { margin: .2em 0 .2em 1.5em; color: #444; }
.kind { color: #666; font-size: .85em; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _table(headers: List[str], rows: List[List[Any]]) -> str:
    out = ["<table>", "<tr>"]
    out += [f"<th>{_esc(h)}</th>" for h in headers]
    out.append("</tr>")
    for row in rows:
        out.append("<tr>" + "".join(f"<td>{_esc(v)}</td>" for v in row) + "</tr>")
    out.append("</table>")
    return "".join(out)


def _metrics_section(trace: List[Dict[str, Any]]) -> List[str]:
    metrics = metrics_from_records(trace)
    parts = ["<h2>Metrics</h2>"]
    totals = metrics["totals"]
    parts.append(
        _table(
            ["queries", "cache hits", "rows touched", "query ms", "total ms"],
            [[
                totals["queries"],
                totals["cache_hits"],
                totals["rows_touched"],
                f"{totals['query_duration_ms']:.3f}",
                f"{totals['duration_ms']:.3f}",
            ]],
        )
    )
    if metrics["phases"]:
        parts.append("<h3>Phases</h3>")
        parts.append(
            _table(
                ["phase", "duration ms", "queries"],
                [
                    [name, f"{stats['duration_ms']:.3f}", stats["queries"]]
                    for name, stats in metrics["phases"].items()
                ],
            )
        )
    if metrics["primitives"]:
        parts.append("<h3>Primitives</h3>")
        parts.append(
            _table(
                ["primitive", "calls", "total ms", "cache hits", "rows touched"],
                [
                    [
                        name,
                        stats["calls"],
                        f"{stats['duration_ms']:.3f}",
                        stats["cache_hits"],
                        stats["rows_touched"],
                    ]
                    for name, stats in sorted(metrics["primitives"].items())
                ],
            )
        )
    return parts


def _dialogue_section(nodes: List[Dict[str, Any]]) -> List[str]:
    decisions = [n for n in nodes if n["kind"] == "decision"]
    if not decisions:
        return []
    parts = [
        "<h2>Expert dialogue</h2>",
        f"<p>{len(decisions)} question(s) asked, in elicitation order.</p>",
        '<dl class="dialogue">',
    ]
    for node in decisions:
        attrs = node.get("attrs", {})
        kind = attrs.get("decision_kind", "")
        parts.append(
            f"<dt>{_esc(attrs.get('question', node['label']))} "
            f'<span class="kind">[{_esc(kind)}]</span></dt>'
        )
        parts.append(f"<dd>&rarr; {_esc(attrs.get('answer', ''))}</dd>")
    parts.append("</dl>")
    return parts


def _certificates_section(
    provenance: List[Dict[str, Any]], nodes: List[Dict[str, Any]]
) -> List[str]:
    decompositions = [n for n in nodes if n["kind"] == "decomposition"]
    if not decompositions:
        return []
    parts = [
        "<h2>Decomposition certificates</h2>",
        "<p>Every relation Restruct decomposed carries a machine-checkable "
        "certificate (<code>repro/normalization@1</code>): the chase "
        "verdict, the preserved/lost dependencies and the normal form of "
        "each fragment are re-checkable with "
        "<code>verify_certificate()</code>.</p>",
    ]
    rows = []
    for node in decompositions:
        attrs = node.get("attrs", {})
        rows.append(
            [
                node["label"],
                "lossless" if attrs.get("lossless") else "LOSSY",
                attrs.get("preserved", ""),
                attrs.get("lost", ""),
                attrs.get("target", ""),
            ]
        )
    parts.append(
        _table(["decomposition", "chase verdict", "preserved", "lost", "target"], rows)
    )
    for node in decompositions:
        chain = explain(provenance, node["id"])
        parts.append(
            f"<details><summary>certificate: {_esc(node['label'])}</summary>"
            f"<pre>{_esc(chain)}</pre></details>"
        )
    return parts


def _lineage_section(provenance: List[Dict[str, Any]]) -> List[str]:
    nodes = [r for r in provenance if r.get("type") == "node"]
    parts = ["<h2>Derivation chains</h2>"]
    targets = [n for n in nodes if n["kind"] in ("ric", "entity", "relationship", "isa")]
    if not targets:
        parts.append("<p>No constraints or EER constructs were derived.</p>")
    for node in targets:
        title = KIND_TITLES.get(node["kind"], node["kind"])
        chain = explain(provenance, node["id"])
        parts.append(
            f"<details><summary>{_esc(title)}: {_esc(node['label'])}</summary>"
            f"<pre>{_esc(chain)}</pre></details>"
        )
    parts.append("<h2>Lineage graph</h2>")
    parts.append(
        "<details><summary>Graphviz DOT source "
        "(render with <code>dot -Tsvg</code>)</summary>"
        f"<pre>{_esc(provenance_to_dot(provenance))}</pre></details>"
    )
    return parts


def render_html_report(
    trace: Optional[List[Dict[str, Any]]] = None,
    provenance: Optional[List[Dict[str, Any]]] = None,
    title: str = "Reverse-engineering audit report",
) -> str:
    """Render one self-contained HTML audit report.

    *trace* is a ``repro/trace@1`` record list (header included),
    *provenance* a ``repro/provenance@1`` record list; pass whichever
    artifacts the run exported.
    """
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if trace is None and provenance is None:
        parts.append("<p>No artifacts were provided.</p>")
    if trace is not None:
        parts.append("<h2>Trace</h2>")
        parts.append(f"<pre>{_esc(summarize_trace(trace))}</pre>")
        parts.extend(_metrics_section(trace))
    if provenance is not None:
        nodes = [r for r in provenance if r.get("type") == "node"]
        parts.extend(_dialogue_section(nodes))
        parts.extend(_certificates_section(provenance, nodes))
        parts.extend(_lineage_section(provenance))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
