"""Live telemetry: the ``repro/live@1`` event bus over one tracer.

The tracer's spans and primitive events were, until now, visible only
post-hoc — a JSONL export after the run.  This module makes the *same*
one-event-stream design observable while the run is still going:

- :class:`LiveBus` — a thread-safe publish/subscribe hub one
  :class:`~repro.obs.tracer.Tracer` can attach.  Every span open, span
  close, primitive call, progress tick and worker-pool incident becomes
  one ``repro/live@1`` dict with a monotonically increasing ``seq``;
  the bus keeps a **bounded** record history (``history_limit``, oldest
  first to go) so late consumers can replay from a sequence number (the
  SSE endpoint's ``Last-Event-ID``) without the bus growing without
  bound on a long-lived service.
- :class:`LiveStats` — incremental aggregates (record counts, per-phase
  latency, primitive/cache/storage/pool counters) the bus maintains on
  every publish, so a metrics scrape reads the totals in O(1) instead
  of rescanning the history — and the totals survive history trimming.
- :class:`LiveSubscription` — one consumer's **bounded** queue.  A slow
  consumer never stalls the pipeline: when the queue is full the bus
  drops the record and counts it (``subscription.dropped``), and the
  retained history lets the consumer re-sync by replay.  Replaying a
  long backlog should page :meth:`LiveBus.history` directly (as the
  SSE endpoint does) rather than funnel it through the bounded queue.
- **Snapshot-then-tail** — a subscriber that attaches mid-run first
  receives a ``span-open`` record for every span still open (in stack
  order), so its view of the run starts consistent, then tails new
  records as they are published.

The bus costs nothing when unused: a tracer without subscribers carries
``_live = None`` and every hot-path hook is a single attribute test —
the S13 benchmark and the ``s13-live-head`` regression gate enforce
that the no-subscriber pipeline stays within noise of the pre-bus
baseline.

Record shapes (all carry ``type``, ``seq`` and ``ts_ms`` — milliseconds
since the bus attached):

- ``span-open`` — ``span``, ``parent``, ``name``, ``kind``,
  ``attributes`` (+ ``snapshot: true`` when synthesized for a mid-run
  attach or subscribe);
- ``span-close`` — ``span``, ``name``, ``kind``, ``duration_ms``,
  ``attributes`` (the attributes as of close, counts included);
- ``primitive`` — ``span``, ``primitive``, ``backend``, ``relations``,
  ``duration_ms``, ``cache_hit``, ``rows_touched``;
- ``progress`` — ``span``, ``phase``, ``message``, optional
  ``current``/``total`` plus any caller attributes;
- ``pool`` — ``event`` (``respawn`` / ``timeout`` / ``crash`` /
  ``fallback``), plus the incident's details;
- ``end`` — the clean end-of-run sentinel the job manager publishes
  (``job``, ``state``); consumers stop tailing when they see it.

:func:`write_live_jsonl` / :func:`read_live_jsonl` round-trip a
captured stream with the same JSONL discipline as every other export
(header record first); ``scripts/validate_exports.py`` exercises the
round-trip in CI.
"""

from __future__ import annotations

import time
from collections import deque
from itertools import islice
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

import threading

from repro.util.jsonl import load_jsonl, save_jsonl

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracer import SpanRecord

__all__ = [
    "LIVE_FORMAT",
    "LIVE_EVENT_TYPES",
    "DEFAULT_QUEUE_SIZE",
    "DEFAULT_HISTORY_LIMIT",
    "LiveStats",
    "LiveSubscription",
    "LiveBus",
    "live_records",
    "write_live_jsonl",
    "read_live_jsonl",
    "summarize_live",
]

#: the versioned format tag of the live-event stream
LIVE_FORMAT = "repro/live@1"

#: every record type the bus publishes
LIVE_EVENT_TYPES = (
    "span-open",
    "span-close",
    "primitive",
    "progress",
    "pool",
    "end",
)

#: per-subscriber queue bound; past it the bus drops (and counts) records
DEFAULT_QUEUE_SIZE = 1024

#: per-bus history bound; past it the oldest records are trimmed (the
#: aggregates in :class:`LiveStats` keep counting what was trimmed)
DEFAULT_HISTORY_LIMIT = 65536


def _ms(seconds: float) -> float:
    """Seconds → milliseconds, rounded to survive a JSON round-trip."""
    return round(seconds * 1000.0, 6)


class LiveStats:
    """Running aggregates over every record a bus ever published.

    Updated incrementally on publish (a few dict bumps under the bus
    lock), so consumers — the ``/metrics`` exposition above all — read
    totals without rescanning the history, and the totals stay correct
    after the bounded history trims old records or a finished job is
    evicted from the ledger (:meth:`merge` folds its stats forward).
    """

    __slots__ = (
        "events",
        "phase_runs",
        "phase_ms",
        "primitive_calls",
        "primitive_cache_hits",
        "storage_counters",
        "pool_events",
    )

    def __init__(self) -> None:
        #: records published, by record type
        self.events: Dict[str, int] = {}
        #: closed ``phase`` spans, by phase name
        self.phase_runs: Dict[str, int] = {}
        #: total wall milliseconds per phase name
        self.phase_ms: Dict[str, float] = {}
        #: primitive calls, by primitive
        self.primitive_calls: Dict[str, int] = {}
        #: primitive calls answered from a cache, by primitive
        self.primitive_cache_hits: Dict[str, int] = {}
        #: storage telemetry deltas (buffer pool, page I/O), by counter
        self.storage_counters: Dict[str, int] = {}
        #: worker-pool incidents, by event
        self.pool_events: Dict[str, int] = {}

    def observe(self, record: Dict[str, Any]) -> None:
        """Fold one published record into the totals."""
        kind = record["type"]
        self.events[kind] = self.events.get(kind, 0) + 1
        if kind == "span-close" and record.get("kind") == "phase":
            phase = record["name"]
            self.phase_runs[phase] = self.phase_runs.get(phase, 0) + 1
            self.phase_ms[phase] = (
                self.phase_ms.get(phase, 0.0) + record.get("duration_ms", 0.0)
            )
        elif kind == "primitive":
            primitive = record["primitive"]
            self.primitive_calls[primitive] = (
                self.primitive_calls.get(primitive, 0) + 1
            )
            if record.get("cache_hit"):
                self.primitive_cache_hits[primitive] = (
                    self.primitive_cache_hits.get(primitive, 0) + 1
                )
            for counter, delta in (record.get("counters") or {}).items():
                self.storage_counters[counter] = (
                    self.storage_counters.get(counter, 0) + delta
                )
        elif kind == "pool":
            event = record.get("event", "unknown")
            self.pool_events[event] = self.pool_events.get(event, 0) + 1

    def as_dict(self) -> Dict[str, Any]:
        """The totals as one JSON-ready document (archive storage)."""
        return {
            "events": dict(self.events),
            "phase_runs": dict(self.phase_runs),
            "phase_ms": dict(self.phase_ms),
            "primitive_calls": dict(self.primitive_calls),
            "primitive_cache_hits": dict(self.primitive_cache_hits),
            "storage_counters": dict(self.storage_counters),
            "pool_events": dict(self.pool_events),
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "LiveStats":
        """Rebuild totals from :meth:`as_dict` output (archive restore)."""
        stats = cls()
        for slot in cls.__slots__:
            getattr(stats, slot).update(document.get(slot) or {})
        return stats

    def merge(self, other: "LiveStats") -> None:
        """Fold *other*'s totals into this one (ledger eviction)."""
        for mine, theirs in (
            (self.events, other.events),
            (self.phase_runs, other.phase_runs),
            (self.phase_ms, other.phase_ms),
            (self.primitive_calls, other.primitive_calls),
            (self.primitive_cache_hits, other.primitive_cache_hits),
            (self.storage_counters, other.storage_counters),
            (self.pool_events, other.pool_events),
        ):
            for key, value in theirs.items():
                mine[key] = mine.get(key, 0) + value

    def copy(self) -> "LiveStats":
        """An independent snapshot of the totals."""
        snapshot = LiveStats()
        snapshot.merge(self)
        return snapshot

    def __repr__(self) -> str:
        return f"LiveStats(events={sum(self.events.values())})"


class LiveSubscription:
    """One consumer's bounded view of a :class:`LiveBus`.

    Records arrive in publication order.  :meth:`get` blocks up to a
    timeout; :meth:`drain` empties the queue without blocking.  When the
    queue is full the *bus* drops the newest record and increments
    :attr:`dropped` — the producing pipeline never waits on a consumer.
    A dropped record is recoverable while the bounded bus history still
    retains it: page :meth:`LiveBus.history` from the last seen seq (as
    the SSE endpoint does when it detects a gap).
    """

    def __init__(self, bus: "LiveBus", maxsize: int = DEFAULT_QUEUE_SIZE) -> None:
        self._bus = bus
        self.maxsize = max(1, maxsize)
        self._queue: deque = deque()
        self._ready = threading.Condition(threading.Lock())
        #: records the bus dropped because this queue was full
        self.dropped = 0
        self.closed = False

    # -- bus side ------------------------------------------------------
    def _offer(self, record: Dict[str, Any]) -> None:
        """Enqueue *record*, or count a drop when the queue is full."""
        with self._ready:
            if self.closed:
                return
            if len(self._queue) >= self.maxsize:
                self.dropped += 1
                return
            self._queue.append(record)
            self._ready.notify()

    # -- consumer side -------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """The next record, or None when *timeout* elapses first."""
        with self._ready:
            if not self._queue:
                self._ready.wait(timeout)
            if self._queue:
                return self._queue.popleft()
            return None

    def drain(self) -> List[Dict[str, Any]]:
        """Every queued record, without blocking."""
        with self._ready:
            records = list(self._queue)
            self._queue.clear()
            return records

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        """Iterate queued records until the queue is momentarily empty."""
        while True:
            record = self.get(timeout=0)
            if record is None:
                return
            yield record

    def close(self) -> None:
        """Detach from the bus; pending records are discarded."""
        self._bus.unsubscribe(self)

    def __enter__(self) -> "LiveSubscription":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{len(self._queue)} queued"
        return f"LiveSubscription({state}, dropped={self.dropped})"


class LiveBus:
    """Thread-safe fan-out of one tracer's live telemetry.

    Publication assigns each record a ``seq`` (1-based, monotonic) and a
    ``ts_ms`` relative to the bus' attach time, appends it to the
    history, folds it into the running :class:`LiveStats`, and offers it
    to every subscription.  All of that happens under one lock, so
    subscribers observe a single total order — the same order the
    history records.

    The history is bounded by *history_limit*: past it the oldest
    records are trimmed (``seq`` stays contiguous among the retained
    tail, :attr:`trimmed` counts what is gone), so a long-lived service
    holds at most *history_limit* raw records per run while the stats
    keep the full totals.
    """

    def __init__(
        self,
        clock=time.perf_counter,
        history_limit: int = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._subscriptions: List[LiveSubscription] = []
        self._history: deque = deque()
        self._history_limit = max(1, history_limit)
        self._trimmed = 0
        self._stats = LiveStats()
        self._open: Dict[int, Dict[str, Any]] = {}
        self._seq = 0
        self._dropped_detached = 0
        self._base = clock()

    # -- publication (the tracer side) ---------------------------------
    def publish(self, type: str, **fields: Any) -> Dict[str, Any]:
        """Publish one record; returns it with ``seq``/``ts_ms`` set."""
        with self._lock:
            self._seq += 1
            record = {
                "type": type,
                "seq": self._seq,
                "ts_ms": _ms(self._clock() - self._base),
            }
            record.update(fields)
            self._history.append(record)
            self._stats.observe(record)
            while len(self._history) > self._history_limit:
                self._history.popleft()
                self._trimmed += 1
            if type == "span-open":
                self._open[record["span"]] = record
            elif type == "span-close":
                self._open.pop(record["span"], None)
            for subscription in self._subscriptions:
                subscription._offer(record)
            return record

    def span_opened(self, span: "SpanRecord", snapshot: bool = False) -> None:
        """Publish the ``span-open`` record of *span*."""
        record = {
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "attributes": dict(span.attributes),
        }
        if snapshot:
            record["snapshot"] = True
        self.publish("span-open", **record)

    def span_closed(self, span: "SpanRecord") -> None:
        """Publish the ``span-close`` record of *span*."""
        self.publish(
            "span-close",
            span=span.span_id,
            name=span.name,
            kind=span.kind,
            duration_ms=_ms(span.duration),
            attributes=dict(span.attributes),
        )

    # -- subscription (the consumer side) ------------------------------
    def subscribe(
        self,
        maxsize: int = DEFAULT_QUEUE_SIZE,
        replay_from: Optional[int] = None,
    ) -> LiveSubscription:
        """Attach one consumer; snapshot-then-tail by default.

        With ``replay_from=N`` the subscription is pre-filled with every
        history record whose ``seq`` exceeds *N* (the SSE endpoint's
        ``Last-Event-ID`` resume).  Without it, the subscription is
        pre-filled with the ``span-open`` records of every span still
        open — a consistent starting view for a mid-run attach — and
        then tails.
        """
        with self._lock:
            subscription = LiveSubscription(self, maxsize=maxsize)
            if replay_from is not None:
                backlog = [
                    record
                    for record in self._history
                    if record["seq"] > replay_from
                ]
            else:
                backlog = [
                    dict(record, snapshot=True)
                    for record in sorted(
                        self._open.values(), key=lambda r: r["seq"]
                    )
                ]
            for record in backlog:
                subscription._offer(record)
            self._subscriptions.append(subscription)
            return subscription

    def unsubscribe(self, subscription: LiveSubscription) -> None:
        """Detach *subscription*; publishing to it stops immediately."""
        with self._lock:
            subscription.closed = True
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                pass
            else:
                # keep the detached consumer's drops in the bus total
                self._dropped_detached += subscription.dropped

    # -- introspection -------------------------------------------------
    @property
    def subscribers(self) -> int:
        """How many subscriptions are currently attached."""
        with self._lock:
            return len(self._subscriptions)

    @property
    def last_seq(self) -> int:
        """The sequence number of the latest published record (0 = none)."""
        with self._lock:
            return self._seq

    @property
    def trimmed(self) -> int:
        """Records the bounded history has trimmed (lowest seqs first)."""
        with self._lock:
            return self._trimmed

    def history(self, since: int = 0) -> List[Dict[str, Any]]:
        """Every *retained* record with ``seq > since``, oldest first.

        Records already trimmed by the history bound are gone for good:
        when ``since`` predates :attr:`trimmed`, the returned page
        starts at the oldest retained record (its ``seq`` exceeds
        ``since + 1`` — a detectable gap).
        """
        with self._lock:
            # retained seqs are contiguous: _trimmed+1 .. _seq
            start = max(0, since - self._trimmed)
            if start == 0:
                return list(self._history)
            if start >= len(self._history):
                return []
            return list(islice(self._history, start, None))

    def stats(self) -> LiveStats:
        """A snapshot of the running aggregates (trim-proof totals)."""
        with self._lock:
            return self._stats.copy()

    def dropped(self) -> int:
        """Records dropped across every subscription, ever attached."""
        with self._lock:
            return self._dropped_detached + sum(
                s.dropped for s in self._subscriptions
            )

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"LiveBus(seq={self._seq}, "
                f"subscribers={len(self._subscriptions)})"
            )


# ----------------------------------------------------------------------
# the repro/live@1 file format
# ----------------------------------------------------------------------
def live_records(source) -> List[Dict[str, Any]]:
    """A captured stream as JSON-ready records, header first.

    *source* is a :class:`LiveBus`, or any iterable of already-published
    record dicts (e.g. records parsed back out of an SSE capture).
    """
    records = source.history() if isinstance(source, LiveBus) else list(source)
    counts: Dict[str, int] = {}
    for record in records:
        counts[record["type"]] = counts.get(record["type"], 0) + 1
    header = {
        "type": "header",
        "format": LIVE_FORMAT,
        "events": len(records),
        "counts": counts,
    }
    return [header] + records


def write_live_jsonl(source, path: str) -> List[Dict[str, Any]]:
    """Write a captured stream to *path*; returns the records written."""
    records = live_records(source)
    save_jsonl(records, path)
    return records


def summarize_live(records: List[Dict[str, Any]]) -> str:
    """Render a captured ``repro/live@1`` stream as a readable summary.

    *records* may include the header record (it is skipped).  The
    summary counts events per record type, lists each completed phase
    with its duration and progress-tick count, and reports the terminal
    ``end`` record when the capture carries one — the live-stream
    analogue of ``repro trace summarize`` over a trace file.
    """
    from repro.util.text import format_table

    body = [r for r in records if r.get("type") in LIVE_EVENT_TYPES]
    counts: Dict[str, int] = {}
    for record in body:
        counts[record["type"]] = counts.get(record["type"], 0) + 1
    span = (
        f"{body[0].get('ts_ms', 0.0):.0f}..{body[-1].get('ts_ms', 0.0):.0f} ms"
        if body
        else "empty"
    )
    lines = [f"# Live capture — {len(body)} record(s), {span}"]
    rows = [[kind, counts[kind]] for kind in sorted(counts)]
    if rows:
        lines.append(format_table(["type", "records"], rows))

    # per-phase view: close records carry the duration, progress records
    # carry the phase name they ticked under
    progress: Dict[str, int] = {}
    for record in body:
        if record["type"] == "progress" and record.get("phase"):
            progress[record["phase"]] = progress.get(record["phase"], 0) + 1
    phases = [
        record
        for record in body
        if record["type"] == "span-close" and record.get("kind") == "phase"
    ]
    if phases:
        lines.append("")
        lines.append("# Phases")
        lines.append(
            format_table(
                ["phase", "duration ms", "progress ticks"],
                [
                    [
                        record["name"],
                        f"{record.get('duration_ms', 0.0):.3f}",
                        progress.get(record["name"], 0),
                    ]
                    for record in phases
                ],
            )
        )
    ends = [record for record in body if record["type"] == "end"]
    if ends:
        end = ends[-1]
        state = end.get("state") or "unknown"
        lines.append("")
        lines.append(f"# End — {end.get('job', '?')} finished {state}")
    return "\n".join(lines)


def read_live_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a ``repro/live@1`` stream back, validating the header.

    Raises :class:`ValueError` when the header tag or its event count
    disagrees with the stream, or a record carries an unknown type.
    """
    records = load_jsonl(path)
    if not records or records[0].get("format") != LIVE_FORMAT:
        raise ValueError(f"not a {LIVE_FORMAT} stream: {path!r}")
    header, body = records[0], records[1:]
    if header.get("events") != len(body):
        raise ValueError(
            f"{path}: header claims {header.get('events')} event(s), "
            f"file carries {len(body)}"
        )
    for index, record in enumerate(body, start=1):
        if record.get("type") not in LIVE_EVENT_TYPES:
            raise ValueError(
                f"{path}: record {index} has unknown type "
                f"{record.get('type')!r}"
            )
    return records
