"""Profiling and regression attribution over the trace streams.

A regression-gate failure that only says "2x slower" is not actionable;
this module turns the span/event streams of :mod:`repro.obs.tracer`
into *attribution*:

- **hotspot profiles** (:func:`profile_from_records`) — per-span-name
  inclusive vs. exclusive (self) time and per-phase primitive
  breakdowns (calls, wall time, cache hit-rate, rows scanned), computed
  from an in-memory :class:`~repro.obs.tracer.Tracer` or a re-read
  ``repro/trace@1`` JSONL file;
- **flamegraph exporters** — collapsed-stack lines for ``flamegraph.pl``
  (:func:`collapsed_stacks`) and a speedscope-compatible JSON document
  (:func:`speedscope_document`, tagged ``repro/profile@1`` in its
  ``exporter`` field), both built from the span tree with the primitive
  events folded in as leaf frames;
- **trace diffing** (:func:`diff_views` / :func:`render_diff`) — two
  traces (or two ``repro/metrics@1`` files) compared, regressions
  ranked by absolute self-time delta, with cache-hit-rate, call-count
  and rows-scanned deltas as the explanation column.

Everything here is a *pure view* over recorded data — like
:func:`repro.evaluation.counters.cost_report_from_trace`, profiling a
run issues zero extension queries (``benchmarks/bench_s9_profile.py``
enforces this).

Exclusive (self) time is the span's duration minus the durations of its
direct child spans and of the primitive events recorded directly under
it, clamped at zero: a still-open parent exported mid-run reports its
elapsed-so-far, which may be smaller than the sum of finished children,
and must not go negative.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.obs.export import (
    METRICS_FORMAT,
    TRACE_FORMAT,
    trace_records,
)
from repro.obs.live import LIVE_FORMAT
from repro.obs.provenance import PROVENANCE_FORMAT
from repro.util.jsonl import load_jsonl
from repro.util.text import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracer import Tracer

__all__ = [
    "PROFILE_FORMAT",
    "SPEEDSCOPE_SCHEMA",
    "profile_from_records",
    "profile_summary",
    "render_profile",
    "collapsed_stacks",
    "write_collapsed",
    "speedscope_document",
    "write_speedscope",
    "detect_export_kind",
    "load_export",
    "view_from_export",
    "diff_views",
    "render_diff",
]

PROFILE_FORMAT = "repro/profile@1"
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _ms(value: float) -> float:
    return round(value, 6)


def _split(records: List[Dict[str, Any]]) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    return spans, events


def _children_of(spans: List[Dict[str, Any]]) -> Dict[Optional[int], List[Dict[str, Any]]]:
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s["start_ms"], s["id"]))
    return children


def _events_by_span(events: List[Dict[str, Any]]) -> Dict[Optional[int], List[Dict[str, Any]]]:
    by_span: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for event in events:
        by_span.setdefault(event["span"], []).append(event)
    return by_span


def _self_times(spans: List[Dict[str, Any]], events: List[Dict[str, Any]]) -> Dict[int, float]:
    """span id → exclusive (self) milliseconds, clamped at zero.

    Self time subtracts the durations of the direct child spans *and*
    of the primitive events recorded directly under the span.  A
    still-open parent (duration = elapsed-so-far) may report less time
    than its finished children sum to; the clamp keeps self time
    non-negative instead of letting bookkeeping skew go below zero.
    """
    child_ms: Dict[int, float] = {}
    for span in spans:
        parent = span["parent"]
        if parent is not None:
            child_ms[parent] = child_ms.get(parent, 0.0) + span["duration_ms"]
    for event in events:
        if event["span"] is not None:
            child_ms[event["span"]] = child_ms.get(event["span"], 0.0) + event["duration_ms"]
    return {s["id"]: max(0.0, s["duration_ms"] - child_ms.get(s["id"], 0.0)) for s in spans}


def _hit_rate(hits: int, calls: int) -> float:
    return round(hits / calls, 4) if calls else 0.0


# ----------------------------------------------------------------------
# hotspot aggregation
# ----------------------------------------------------------------------
def profile_from_records(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The hotspot profile of one trace's records.

    Returns a document with

    - ``spans`` — one row per span *name*: occurrence count, inclusive
      and exclusive (self) milliseconds, whether any occurrence is
      still open;
    - ``phases`` — per phase span: inclusive/self milliseconds and a
      per-primitive breakdown (calls, wall time, cache hits/misses and
      hit-rate, rows scanned) of the events in the phase's subtree;
    - ``primitives`` — the same per-primitive breakdown over the whole
      run;
    - ``totals`` — run-level rollups.
    """
    spans, events = _split(records)
    self_ms = _self_times(spans, events)
    children = _children_of(spans)

    by_name: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        row = by_name.setdefault(
            span["name"],
            {"kind": span["kind"], "count": 0, "inclusive_ms": 0.0, "self_ms": 0.0, "open": False},
        )
        row["count"] += 1
        row["inclusive_ms"] += span["duration_ms"]
        row["self_ms"] += self_ms[span["id"]]
        row["open"] = row["open"] or bool(span.get("open"))
    for row in by_name.values():
        row["inclusive_ms"] = _ms(row["inclusive_ms"])
        row["self_ms"] = _ms(row["self_ms"])

    def primitive_rollup(subset: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
        rollup: Dict[str, Dict[str, Any]] = {}
        for event in subset:
            p = rollup.setdefault(
                event["primitive"],
                {
                    "calls": 0,
                    "duration_ms": 0.0,
                    "cache_hits": 0,
                    "cache_misses": 0,
                    "rows_touched": 0,
                },
            )
            p["calls"] += 1
            p["duration_ms"] += event["duration_ms"]
            p["cache_hits" if event["cache_hit"] else "cache_misses"] += 1
            p["rows_touched"] += event["rows_touched"]
        for p in rollup.values():
            p["duration_ms"] = _ms(p["duration_ms"])
            p["hit_rate"] = _hit_rate(p["cache_hits"], p["calls"])
        return rollup

    # phase subtrees: a phase's breakdown covers every event under it
    subtree_events = _events_by_span(events)

    def collect_events(span_id: int) -> List[Dict[str, Any]]:
        collected = list(subtree_events.get(span_id, ()))
        for child in children.get(span_id, ()):
            collected.extend(collect_events(child["id"]))
        return collected

    phases: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        if span["kind"] != "phase":
            continue
        phase_events = collect_events(span["id"])
        phases[span["name"]] = {
            "inclusive_ms": span["duration_ms"],
            "self_ms": _ms(self_ms[span["id"]]),
            "queries": len(phase_events),
            "primitives": primitive_rollup(phase_events),
        }

    root_ms = max((s["duration_ms"] for s in spans if s["parent"] is None), default=0.0)
    return {
        "spans": by_name,
        "phases": phases,
        "primitives": primitive_rollup(events),
        "totals": {
            "duration_ms": root_ms,
            "queries": len(events),
            "spans": len(spans),
            "query_duration_ms": _ms(sum(e["duration_ms"] for e in events)),
        },
    }


def profile_summary(tracer: "Tracer") -> Dict[str, Any]:
    """The hotspot profile computed live from *tracer*."""
    return profile_from_records(trace_records(tracer))


def render_profile(profile: Dict[str, Any]) -> str:
    """Render a hotspot profile as hotspot + per-phase tables."""
    total = profile["totals"]["duration_ms"] or 1.0
    lines = [
        f"# Hotspots — {profile['totals']['spans']} span(s), "
        f"{profile['totals']['queries']} quer"
        f"{'y' if profile['totals']['queries'] == 1 else 'ies'}, "
        f"{profile['totals']['duration_ms']:.3f} ms total"
    ]
    rows = []
    ranked = sorted(profile["spans"].items(), key=lambda kv: kv[1]["self_ms"], reverse=True)
    for name, stats in ranked:
        open_mark = " (open)" if stats["open"] else ""
        rows.append(
            [
                f"{name}{open_mark}",
                stats["kind"],
                stats["count"],
                f"{stats['inclusive_ms']:.3f}",
                f"{stats['self_ms']:.3f}",
                f"{100.0 * stats['self_ms'] / total:.1f}%",
            ]
        )
    lines.append(format_table(["span", "kind", "count", "incl ms", "self ms", "% self"], rows))
    if profile["primitives"]:
        lines.append("")
        lines.append("# Primitives by phase")
        rows = []
        sections = list(profile["phases"].items())
        sections.append(("(run total)", {"primitives": profile["primitives"]}))
        for phase, stats in sections:
            for primitive, p in sorted(
                stats["primitives"].items(),
                key=lambda kv: kv[1]["duration_ms"],
                reverse=True,
            ):
                rows.append(
                    [
                        phase,
                        primitive,
                        p["calls"],
                        f"{p['duration_ms']:.3f}",
                        f"{100.0 * p['hit_rate']:.0f}%",
                        p["rows_touched"],
                    ]
                )
        lines.append(
            format_table(["phase", "primitive", "calls", "total ms", "hit rate", "rows"], rows)
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# flamegraph exporters
# ----------------------------------------------------------------------
def collapsed_stacks(records: List[Dict[str, Any]]) -> List[str]:
    """The trace as collapsed-stack lines for ``flamegraph.pl``.

    One line per unique stack — span names root-to-leaf joined by
    ``;``, primitive events folded in as leaf frames — with the stack's
    total *self* time in integer microseconds as the sample value.
    Zero-weight stacks are kept (weight 1 µs minimum would lie; a zero
    line is valid collapsed-stack input and keeps the frame visible).
    """
    spans, events = _split(records)
    self_ms = _self_times(spans, events)
    children = _children_of(spans)
    by_span = _events_by_span(events)
    spans_by_id = {s["id"]: s for s in spans}

    weights: Dict[str, int] = {}

    def stack_of(span: Dict[str, Any]) -> str:
        names: List[str] = []
        cursor: Optional[Dict[str, Any]] = span
        while cursor is not None:
            names.append(cursor["name"])
            parent = cursor["parent"]
            cursor = spans_by_id.get(parent) if parent is not None else None
        return ";".join(reversed(names))

    for span in spans:
        stack = stack_of(span)
        weights[stack] = weights.get(stack, 0) + int(round(self_ms[span["id"]] * 1000))
        for event in by_span.get(span["id"], ()):
            leaf = f"{stack};{event['primitive']}"
            weights[leaf] = weights.get(leaf, 0) + int(round(event["duration_ms"] * 1000))
    # events recorded outside any span still show up, under a synthetic root
    for event in by_span.get(None, ()):
        leaf = f"(no span);{event['primitive']}"
        weights[leaf] = weights.get(leaf, 0) + int(round(event["duration_ms"] * 1000))
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


def write_collapsed(records: List[Dict[str, Any]], path: str) -> None:
    """Write the collapsed-stack lines to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in collapsed_stacks(records):
            handle.write(line)
            handle.write("\n")


def speedscope_document(
    records: List[Dict[str, Any]], name: str = "repro trace"
) -> Dict[str, Any]:
    """The trace as a speedscope-compatible *evented* profile.

    Open/close events are emitted by a pre-order walk of the span tree
    (children in start order, primitive events interleaved at their
    start time), so the stream is properly nested by construction even
    when recorded timestamps jitter at the rounding edge; child frames
    are clamped into their parent's window.  The document carries
    ``exporter: repro/profile@1`` — load it at https://speedscope.app.
    """
    spans, events = _split(records)
    children = _children_of(spans)
    by_span = _events_by_span(events)

    frames: List[Dict[str, Any]] = []
    frame_index: Dict[str, int] = {}

    def frame(label: str) -> int:
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    out: List[Dict[str, Any]] = []
    end_value = 0.0

    def emit(kind: str, label: str, at: float) -> None:
        nonlocal end_value
        end_value = max(end_value, at)
        out.append({"type": kind, "frame": frame(label), "at": _ms(at)})

    def walk(span: Dict[str, Any], lo: float, hi: float) -> None:
        start = min(max(span["start_ms"], lo), hi)
        end = min(max(start, span["start_ms"] + span["duration_ms"]), hi)
        emit("O", span["name"], start)
        cursor = start
        leaves = [(e["start_ms"], "event", e) for e in by_span.get(span["id"], ())]
        leaves += [(c["start_ms"], "span", c) for c in children.get(span["id"], ())]
        for _, node_kind, node in sorted(leaves, key=lambda item: item[0]):
            if node_kind == "span":
                walk(node, cursor, end)
                cursor = min(max(cursor, node["start_ms"] + node["duration_ms"]), end)
            else:
                at = min(max(node["start_ms"], cursor), end)
                leave = min(max(at, node["start_ms"] + node["duration_ms"]), end)
                emit("O", node["primitive"], at)
                emit("C", node["primitive"], leave)
                cursor = leave
        emit("C", span["name"], end)

    for root in children.get(None, []):
        walk(root, root["start_ms"], root["start_ms"] + root["duration_ms"])

    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "exporter": PROFILE_FORMAT,
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "milliseconds",
                "startValue": 0.0,
                "endValue": _ms(end_value),
                "events": out,
            }
        ],
    }


def write_speedscope(
    records: List[Dict[str, Any]], path: str, name: str = "repro trace"
) -> None:
    """Write the speedscope JSON document to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(speedscope_document(records, name=name), handle, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# export-kind detection (shared by profile / summarize / diff verbs)
# ----------------------------------------------------------------------
#: schema tag → human label, for one-line wrong-file-kind errors
_KIND_LABELS = {
    TRACE_FORMAT: "trace",
    METRICS_FORMAT: "metrics",
    PROVENANCE_FORMAT: "provenance",
    PROFILE_FORMAT: "profile",
    LIVE_FORMAT: "live-capture",
    "repro/bench@1": "bench-metrics",
    "repro/bench-baseline@1": "bench-baseline",
    "repro/bench-history@1": "bench-history",
}


def detect_export_kind(path: str) -> Tuple[str, Any]:
    """Sniff which export format *path* holds.

    Returns ``(kind, payload)`` where *kind* is a ``repro/...@N``
    schema tag (or ``"unknown"``) and *payload* is the parsed document
    — the record list for JSONL exports, the JSON document otherwise.
    Raises :class:`ValueError` for files that parse as neither.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError:
        document = None
    except UnicodeDecodeError:
        raise ValueError(f"{path!r} is not a JSON or JSONL export")
    if isinstance(document, dict):
        tag = document.get("format") or document.get("exporter")
        return (tag if tag in _KIND_LABELS else "unknown", document)
    if document is not None:
        return ("unknown", document)
    records = load_jsonl(path)  # raises ValueError with the line number
    tag = records[0].get("format") if records else None
    return (tag if tag in _KIND_LABELS else "unknown", records)


def load_export(path: str, expected: str) -> Any:
    """Load *path*, requiring the *expected* schema tag.

    On a mismatch, raises :class:`ValueError` with a one-line message
    naming what the file actually is — handing ``repro profile`` a
    metrics file fails with "is a repro/metrics@1 metrics file", not a
    traceback.
    """
    kind, payload = detect_export_kind(path)
    if kind != expected:
        actual = (
            f"a {kind} {_KIND_LABELS[kind]} file"
            if kind in _KIND_LABELS
            else "not a recognized repro export"
        )
        raise ValueError(
            f"{path!r} is {actual}; expected a {expected} "
            f"{_KIND_LABELS.get(expected, 'export')}"
        )
    return payload


# ----------------------------------------------------------------------
# trace diffing
# ----------------------------------------------------------------------
def view_from_export(kind: str, payload: Any) -> Dict[str, Any]:
    """Reduce a trace or metrics export to one comparable *view*.

    A view has ``spans`` (name → self/inclusive ms; traces only, empty
    for metrics files), ``phases`` (name → duration) and ``primitives``
    (name → calls/duration/hit-rate/rows) — the common denominator the
    diff engine ranks over.
    """
    if kind == TRACE_FORMAT:
        profile = profile_from_records(payload)
        return {
            "source": "trace",
            "spans": profile["spans"],
            "phases": {name: stats["inclusive_ms"] for name, stats in profile["phases"].items()},
            "primitives": profile["primitives"],
        }
    if kind == METRICS_FORMAT:
        primitives = {}
        for name, stats in payload.get("primitives", {}).items():
            primitives[name] = dict(stats)
            primitives[name]["hit_rate"] = _hit_rate(
                stats.get("cache_hits", 0), stats.get("calls", 0)
            )
        return {
            "source": "metrics",
            "spans": {},
            "phases": {
                name: stats["duration_ms"] for name, stats in payload.get("phases", {}).items()
            },
            "primitives": primitives,
        }
    raise ValueError(f"cannot diff a {kind} export")


def _delta_row(name: str, a: float, b: float) -> Dict[str, Any]:
    return {"name": name, "a_ms": _ms(a), "b_ms": _ms(b), "delta_ms": _ms(b - a)}


def diff_views(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Compare two views; rank every section by absolute time delta.

    ``spans`` ranks per-span-name *self*-time deltas (present only when
    both sides came from full traces), ``phases`` ranks inclusive
    phase-duration deltas, and ``primitives`` ranks per-primitive wall
    deltas with cache-hit-rate, call-count and rows-scanned deltas
    attached as the explanation.
    """
    spans: List[Dict[str, Any]] = []
    if a["spans"] and b["spans"]:
        for name in sorted(set(a["spans"]) | set(b["spans"])):
            sa = a["spans"].get(name, {})
            sb = b["spans"].get(name, {})
            row = _delta_row(name, sa.get("self_ms", 0.0), sb.get("self_ms", 0.0))
            row["kind"] = sb.get("kind", sa.get("kind", "span"))
            spans.append(row)
        spans.sort(key=lambda r: abs(r["delta_ms"]), reverse=True)

    phases = [
        _delta_row(name, a["phases"].get(name, 0.0), b["phases"].get(name, 0.0))
        for name in sorted(set(a["phases"]) | set(b["phases"]))
    ]
    phases.sort(key=lambda r: abs(r["delta_ms"]), reverse=True)

    primitives: List[Dict[str, Any]] = []
    for name in sorted(set(a["primitives"]) | set(b["primitives"])):
        pa = a["primitives"].get(name, {})
        pb = b["primitives"].get(name, {})
        row = _delta_row(name, pa.get("duration_ms", 0.0), pb.get("duration_ms", 0.0))
        row.update(
            calls_a=pa.get("calls", 0),
            calls_b=pb.get("calls", 0),
            hit_rate_a=pa.get("hit_rate", 0.0),
            hit_rate_b=pb.get("hit_rate", 0.0),
            rows_a=pa.get("rows_touched", 0),
            rows_b=pb.get("rows_touched", 0),
        )
        row["explanation"] = _explain_primitive(row)
        primitives.append(row)
    primitives.sort(key=lambda r: abs(r["delta_ms"]), reverse=True)

    return {"spans": spans, "phases": phases, "primitives": primitives}


def _explain_primitive(row: Dict[str, Any]) -> str:
    """Why did this primitive's cost move?  Best-effort, data-driven."""
    reasons: List[str] = []
    hit_delta = row["hit_rate_b"] - row["hit_rate_a"]
    if abs(hit_delta) >= 0.005:
        reasons.append(
            f"cache hit-rate {100 * row['hit_rate_a']:.0f}% -> "
            f"{100 * row['hit_rate_b']:.0f}% ({100 * hit_delta:+.0f} pts)"
        )
    call_delta = row["calls_b"] - row["calls_a"]
    if call_delta:
        reasons.append(f"calls {row['calls_a']} -> {row['calls_b']} ({call_delta:+d})")
    rows_delta = row["rows_b"] - row["rows_a"]
    if rows_delta:
        reasons.append(f"rows scanned {row['rows_a']} -> {row['rows_b']} ({rows_delta:+d})")
    return "; ".join(reasons) if reasons else "same calls, same cache behavior"


def render_diff(diff: Dict[str, Any], a_label: str = "A", b_label: str = "B") -> str:
    """Render a diff as ranked regression tables (worst delta first)."""
    lines = [f"# Trace diff — {a_label} vs {b_label} (ranked by |delta|)"]
    if diff["spans"]:
        rows = [
            [r["name"], r["kind"], f"{r['a_ms']:.3f}", f"{r['b_ms']:.3f}", f"{r['delta_ms']:+.3f}"]
            for r in diff["spans"]
        ]
        lines.append("")
        lines.append("## Self time by span")
        lines.append(
            format_table(["span", "kind", f"{a_label} ms", f"{b_label} ms", "delta ms"], rows)
        )
    elif diff["phases"]:
        rows = [
            [r["name"], f"{r['a_ms']:.3f}", f"{r['b_ms']:.3f}", f"{r['delta_ms']:+.3f}"]
            for r in diff["phases"]
        ]
        lines.append("")
        lines.append("## Phase durations")
        lines.append(format_table(["phase", f"{a_label} ms", f"{b_label} ms", "delta ms"], rows))
    if diff["primitives"]:
        rows = [
            [
                r["name"],
                f"{r['a_ms']:.3f}",
                f"{r['b_ms']:.3f}",
                f"{r['delta_ms']:+.3f}",
                r["explanation"],
            ]
            for r in diff["primitives"]
        ]
        lines.append("")
        lines.append("## Primitives")
        lines.append(
            format_table(
                ["primitive", f"{a_label} ms", f"{b_label} ms", "delta ms", "explanation"],
                rows,
            )
        )
    if len(lines) == 1:
        lines.append("(both sides are empty — nothing to compare)")
    return "\n".join(lines)
