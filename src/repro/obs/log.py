"""Structured logging: JSON lines with run/job correlation IDs.

Ad-hoc ``print`` diagnostics don't survive a concurrent service — two
jobs interleave their output and nothing ties a line back to the run
that produced it.  This module gives the repo one structured channel:

- :func:`get_logger` — a namespaced stdlib logger (``repro.<name>``);
  ordinary ``logger.info("message", extra={"data": {...}})`` calls work
  unchanged, the structure comes from the formatter;
- :func:`configure_json_logging` — attach one JSON-lines handler to the
  ``repro`` logger tree (stderr by default, or a file for
  ``--log-json FILE``); every emitted line is one JSON object with
  ``ts``, ``level``, ``logger``, ``message`` and whatever correlation
  IDs are bound;
- :func:`log_context` / :func:`bind_log_context` — bind ``run`` and
  ``job`` correlation IDs to the *current context* (a
  :mod:`contextvars` binding, so concurrent job threads don't clobber
  each other); every log line emitted inside the binding carries them;
- :func:`new_run_id` — a short random correlation ID.

Nothing is emitted until :func:`configure_json_logging` runs: the
``repro`` tree carries a :class:`logging.NullHandler` and does not
propagate, so library use stays silent — the same zero-cost-when-unused
contract the live bus keeps.
"""

from __future__ import annotations

import contextvars
import io
import json
import logging
import sys
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "LOG_ROOT",
    "JsonLineFormatter",
    "bind_log_context",
    "configure_json_logging",
    "current_log_context",
    "get_logger",
    "log_context",
    "new_run_id",
    "reset_log_context",
]

#: the root of the repo's logger namespace
LOG_ROOT = "repro"

_context: contextvars.ContextVar[Dict[str, str]] = contextvars.ContextVar(
    "repro_log_context", default={}
)

# library default: silent until configured, never propagate to the
# (application-owned) root logger
_root = logging.getLogger(LOG_ROOT)
_root.addHandler(logging.NullHandler())
_root.propagate = False


def new_run_id() -> str:
    """A short random correlation ID (12 hex chars)."""
    return uuid.uuid4().hex[:12]


def current_log_context() -> Dict[str, str]:
    """The correlation IDs bound to the current context (a copy)."""
    return dict(_context.get())


def bind_log_context(**ids: Optional[str]) -> contextvars.Token:
    """Merge *ids* into the bound context; returns a reset token.

    ``None`` values are ignored so call sites can pass through optional
    IDs unconditionally.
    """
    merged = dict(_context.get())
    for key, value in ids.items():
        if value is not None:
            merged[key] = value
    return _context.set(merged)


def reset_log_context(token: contextvars.Token) -> None:
    """Undo one :func:`bind_log_context` call."""
    _context.reset(token)


@contextmanager
def log_context(**ids: Optional[str]) -> Iterator[None]:
    """Bind correlation IDs for the duration of a ``with`` block."""
    token = bind_log_context(**ids)
    try:
        yield
    finally:
        reset_log_context(token)


class JsonLineFormatter(logging.Formatter):
    """One JSON object per log record.

    The object carries ``ts`` (epoch seconds), ``level``, ``logger``,
    ``message``, the bound correlation IDs (``run``, ``job``, ...), any
    dict passed as ``extra={"data": {...}}``, and ``exc`` when the
    record carries exception info.
    """

    def format(self, record: logging.LogRecord) -> str:
        line: Dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        line.update(_context.get())
        data = getattr(record, "data", None)
        if isinstance(data, dict):
            for key, value in data.items():
                line.setdefault(key, value)
        if record.exc_info and record.exc_info[0] is not None:
            line["exc"] = self.formatException(record.exc_info)
        return json.dumps(line, default=str, sort_keys=False)


def configure_json_logging(
    stream: Optional[io.TextIOBase] = None,
    path: Optional[str] = None,
    level: int = logging.INFO,
) -> logging.Handler:
    """Attach the JSON-lines handler to the ``repro`` logger tree.

    With *path* the lines append to that file; otherwise they go to
    *stream* (default ``sys.stderr``).  Calling again replaces the
    previous JSON handler, so re-configuration (tests, long-lived
    shells) doesn't duplicate output.  Returns the attached handler.
    """
    handler: logging.Handler
    if path is not None:
        handler = logging.FileHandler(path, encoding="utf-8")
    else:
        handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLineFormatter())
    root = logging.getLogger(LOG_ROOT)
    for existing in list(root.handlers):
        if isinstance(existing.formatter, JsonLineFormatter):
            root.removeHandler(existing)
            existing.close()
    root.addHandler(handler)
    root.setLevel(level)
    return handler


def get_logger(name: str) -> logging.Logger:
    """The repo logger ``repro.<name>`` (or ``repro`` itself for "")."""
    if not name or name == LOG_ROOT:
        return logging.getLogger(LOG_ROOT)
    if name.startswith(LOG_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOG_ROOT}.{name}")
