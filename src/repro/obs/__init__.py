"""Observability: structured tracing, metrics and trace export.

The subsystem makes the paper's efficiency argument measurable end to
end:

- :mod:`repro.obs.tracer` — :class:`Tracer`, nested
  :class:`SpanRecord` intervals around the five pipeline phases, and
  one :class:`PrimitiveEvent` per extension-primitive call;
- :mod:`repro.obs.instrument` — :class:`InstrumentedBackend`, the thin
  wrapper that times backend primitives and records cache hit/miss and
  rows touched without the backends knowing about the tracer;
- :mod:`repro.obs.export` — JSONL trace and flat metrics-JSON writers,
  readers, and the ``repro trace summarize`` rendering.

``QueryCounter`` and ``CostReport`` are views over the same event
stream, so the counters the benchmarks report and the exported traces
can never disagree.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.tracer import (
    PHASE_NAMES,
    PRIMITIVES,
    PrimitiveEvent,
    SpanRecord,
    Tracer,
)
from repro.obs.instrument import InstrumentedBackend
from repro.obs.export import (
    METRICS_FORMAT,
    TRACE_FORMAT,
    metrics_from_records,
    metrics_summary,
    read_trace_jsonl,
    summarize_trace,
    trace_records,
    write_metrics_json,
    write_trace_jsonl,
)

__all__ = [
    "PHASE_NAMES",
    "PRIMITIVES",
    "PrimitiveEvent",
    "SpanRecord",
    "Tracer",
    "InstrumentedBackend",
    "METRICS_FORMAT",
    "TRACE_FORMAT",
    "metrics_from_records",
    "metrics_summary",
    "read_trace_jsonl",
    "summarize_trace",
    "trace_records",
    "write_metrics_json",
    "write_trace_jsonl",
]
