"""Observability: structured tracing, metrics and trace export.

The subsystem makes the paper's efficiency argument measurable end to
end:

- :mod:`repro.obs.tracer` — :class:`Tracer`, nested
  :class:`SpanRecord` intervals around the five pipeline phases, and
  one :class:`PrimitiveEvent` per extension-primitive call;
- :mod:`repro.obs.instrument` — :class:`InstrumentedBackend`, the thin
  wrapper that times backend primitives and records cache hit/miss and
  rows touched without the backends knowing about the tracer;
- :mod:`repro.obs.export` — JSONL trace and flat metrics-JSON writers,
  readers, and the ``repro trace summarize`` rendering;
- :mod:`repro.obs.profile` — hotspot aggregation (inclusive vs.
  exclusive time, per-phase primitive breakdowns), collapsed-stack and
  speedscope flamegraph exporters (``repro/profile@1``), and the trace
  diff engine behind ``repro profile`` / ``repro trace diff``;
- :mod:`repro.obs.provenance` — :class:`ProvenanceLedger`, the
  decision-lineage DAG linking every elicited artifact (IND, FD, RIC,
  EER construct) to the extension counts, source queries and expert
  answers that justify it, with JSONL/DOT exporters and the
  ``repro explain`` chain renderer;
- :mod:`repro.obs.report` — the single-file HTML audit report
  (``repro report``) combining trace, metrics, expert dialogue and the
  lineage graph;
- :mod:`repro.obs.live` — the real-time event bus: a tracer publishes
  span boundaries, primitive events, progress ticks and pool incidents
  to bounded subscribers the moment they happen (``repro/live@1``),
  at zero cost while nobody subscribes — this is what the service's
  SSE endpoint and ``repro jobs watch`` consume;
- :mod:`repro.obs.log` — JSON-lines structured logging with run/job
  correlation IDs carried through ``contextvars``.

``QueryCounter`` and ``CostReport`` are views over the same event
stream, so the counters the benchmarks report and the exported traces
can never disagree.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.tracer import (
    PHASE_NAMES,
    PRIMITIVES,
    PrimitiveEvent,
    SpanRecord,
    Tracer,
)
from repro.obs.instrument import InstrumentedBackend
from repro.obs.live import (
    LIVE_EVENT_TYPES,
    LIVE_FORMAT,
    LiveBus,
    LiveSubscription,
    live_records,
    read_live_jsonl,
    write_live_jsonl,
)
from repro.obs.log import (
    configure_json_logging,
    get_logger,
    log_context,
    new_run_id,
)
from repro.obs.export import (
    METRICS_FORMAT,
    TRACE_FORMAT,
    metrics_from_records,
    metrics_summary,
    read_trace_jsonl,
    summarize_trace,
    trace_records,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.profile import (
    PROFILE_FORMAT,
    collapsed_stacks,
    detect_export_kind,
    diff_views,
    load_export,
    profile_from_records,
    profile_summary,
    render_diff,
    render_profile,
    speedscope_document,
    view_from_export,
    write_collapsed,
    write_speedscope,
)
from repro.obs.provenance import (
    NODE_KINDS,
    PROVENANCE_FORMAT,
    ProvEdge,
    ProvNode,
    ProvenanceLedger,
    explain,
    find_artifact,
    provenance_records,
    provenance_to_dot,
    read_provenance_jsonl,
    write_provenance_jsonl,
)
from repro.obs.report import render_html_report

__all__ = [
    "PHASE_NAMES",
    "PRIMITIVES",
    "PrimitiveEvent",
    "SpanRecord",
    "Tracer",
    "InstrumentedBackend",
    "LIVE_EVENT_TYPES",
    "LIVE_FORMAT",
    "LiveBus",
    "LiveSubscription",
    "live_records",
    "read_live_jsonl",
    "write_live_jsonl",
    "configure_json_logging",
    "get_logger",
    "log_context",
    "new_run_id",
    "METRICS_FORMAT",
    "TRACE_FORMAT",
    "metrics_from_records",
    "metrics_summary",
    "read_trace_jsonl",
    "summarize_trace",
    "trace_records",
    "write_metrics_json",
    "write_trace_jsonl",
    "PROFILE_FORMAT",
    "collapsed_stacks",
    "detect_export_kind",
    "diff_views",
    "load_export",
    "profile_from_records",
    "profile_summary",
    "render_diff",
    "render_profile",
    "speedscope_document",
    "view_from_export",
    "write_collapsed",
    "write_speedscope",
    "NODE_KINDS",
    "PROVENANCE_FORMAT",
    "ProvEdge",
    "ProvNode",
    "ProvenanceLedger",
    "explain",
    "find_artifact",
    "provenance_records",
    "provenance_to_dot",
    "read_provenance_jsonl",
    "write_provenance_jsonl",
    "render_html_report",
]
