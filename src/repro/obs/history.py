"""Cross-run analytics: trends and drift over archived runs and bench history.

One run tells you what the method did; a *series* of runs tells you
what changed.  This module reads the two persistent evidence stores
the repo accumulates —

- the ``repro/archive@1`` run archive (``repro serve --archive``),
  grouped by the database/workload fingerprints the results cache keys
  on, and
- the ``repro/bench-history@1`` trajectory that
  ``benchmarks/regression.py`` appends per run —

and renders trend tables (per-phase latency, primitive cache hit-rate,
pool incidents, per-head wall time) with **robust drift detection**:
each series is scored with the median/MAD z-score

    z_i = 0.6745 * (x_i - median) / MAD

which, unlike a mean/stddev score, is not dragged toward the outlier it
is trying to flag — one anomalous run in ten leaves the median and MAD
almost untouched, so the outlier scores high instead of inflating its
own yardstick.  ``|z| >= 3.5`` (Iglewicz & Hoaglin's conventional cut)
flags a run as drifted.  When MAD is zero (over half the series is
identical) the mean absolute deviation stands in; a series that never
varies at all cannot drift.

Surfaced as ``repro history`` (tables + flags) and as an *advisory*
drift report inside the regression gate — advisory because drift is a
question ("did something change?"), not a verdict; the ratio gate
stays the only thing that fails CI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.util.text import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.archive import RunArchive

__all__ = [
    "DRIFT_THRESHOLD",
    "SeriesDrift",
    "archive_trends",
    "bench_drift_report",
    "detect_drift",
    "load_bench_history",
    "render_archive_trends",
    "render_bench_trends",
    "robust_zscores",
]

#: the conventional modified-z-score outlier cut (Iglewicz & Hoaglin)
DRIFT_THRESHOLD = 3.5

#: series shorter than this cannot meaningfully drift
_MIN_SERIES = 4

_HISTORY_FORMAT = "repro/bench-history@1"


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_zscores(values: Sequence[float]) -> List[float]:
    """Modified z-scores (median/MAD) for *values*.

    ``0.6745 * (x - median) / MAD`` — the 0.6745 factor rescales MAD to
    the standard deviation of a normal distribution, so the 3.5 cut
    means the same thing it would for a classic z-score.  Falls back to
    the mean absolute deviation (scaled by 0.7979) when MAD is zero;
    returns all zeros when the series has no spread at all.
    """
    if not values:
        return []
    center = _median(values)
    deviations = [abs(v - center) for v in values]
    mad = _median(deviations)
    if mad > 0:
        return [0.6745 * (v - center) / mad for v in values]
    mean_ad = sum(deviations) / len(deviations)
    if mean_ad > 0:
        return [0.7979 * (v - center) / mean_ad for v in values]
    return [0.0 for _ in values]


def detect_drift(
    values: Sequence[float], threshold: float = DRIFT_THRESHOLD
) -> List[Tuple[int, float]]:
    """``(index, z)`` for every drifted point in *values*.

    Series shorter than four points are never flagged — with two or
    three samples the median *is* the data and every deviation looks
    enormous.
    """
    if len(values) < _MIN_SERIES:
        return []
    scores = robust_zscores(values)
    return [
        (index, round(score, 2))
        for index, score in enumerate(scores)
        if abs(score) >= threshold
    ]


@dataclass
class SeriesDrift:
    """One metric series over runs, with its drift verdict."""

    name: str
    values: List[float] = field(default_factory=list)
    flagged: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def drifted(self) -> bool:
        return bool(self.flagged)

    @property
    def latest_drifted(self) -> bool:
        """Did the *most recent* run drift? (The actionable case.)"""
        return any(index == len(self.values) - 1 for index, _ in self.flagged)


def _series(name: str, values: Sequence[float], threshold: float) -> SeriesDrift:
    values = [float(v) for v in values]
    return SeriesDrift(
        name=name, values=values, flagged=detect_drift(values, threshold)
    )


# ----------------------------------------------------------------------
# the bench-history side
# ----------------------------------------------------------------------
def load_bench_history(
    path: str, mode: Optional[str] = None
) -> List[Dict[str, Any]]:
    """The ``repro/bench-history@1`` records in *path*, oldest first.

    Filters to *mode* (``quick``/``full``) when given — drift across
    modes would compare different scenario sizes.  Unreadable lines
    and foreign formats are skipped (the history file is append-only
    and may span harness versions).
    """
    if not os.path.exists(path):
        return []
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("format") != _HISTORY_FORMAT:
                continue
            if mode is not None and record.get("mode") != mode:
                continue
            records.append(record)
    return records


def _bench_series(
    records: Sequence[Dict[str, Any]], threshold: float
) -> Dict[str, Dict[str, SeriesDrift]]:
    """head name → metric name → its series across *records*."""
    heads: Dict[str, Dict[str, List[float]]] = {}
    for record in records:
        for name, head in (record.get("heads") or {}).items():
            metrics = heads.setdefault(
                name, {"wall_ms": [], "queries": [], "cache_hits": []}
            )
            metrics["wall_ms"].append(float(head.get("wall_ms", 0.0)))
            metrics["queries"].append(float(head.get("queries", 0)))
            metrics["cache_hits"].append(float(head.get("cache_hits", 0)))
    return {
        name: {
            metric: _series(metric, values, threshold)
            for metric, values in metrics.items()
        }
        for name, metrics in heads.items()
    }


def render_bench_trends(
    records: Sequence[Dict[str, Any]], threshold: float = DRIFT_THRESHOLD
) -> str:
    """The per-head trend table over a bench-history series."""
    if not records:
        return "no bench history\n"
    rows = []
    drifted_any = False
    for name, metrics in sorted(_bench_series(records, threshold).items()):
        wall = metrics["wall_ms"]
        if not wall.values:
            continue
        scores = robust_zscores(wall.values)
        flags = []
        for metric, series in sorted(metrics.items()):
            if series.latest_drifted:
                flags.append(metric)
                drifted_any = True
        rows.append([
            name,
            str(len(wall.values)),
            f"{_median(wall.values):.1f}",
            f"{wall.values[-1]:.1f}",
            f"{scores[-1]:+.2f}" if scores else "-",
            f"{metrics['queries'].values[-1]:.0f}",
            f"{metrics['cache_hits'].values[-1]:.0f}",
            "DRIFT:" + ",".join(flags) if flags else "ok",
        ])
    lines = [
        f"bench history: {len(records)} runs "
        f"(drift = |median/MAD z| >= {threshold})",
        format_table(
            ["head", "runs", "median ms", "last ms", "z(last)",
             "queries", "hits", "verdict"],
            rows,
        ),
    ]
    if drifted_any:
        lines.append(
            "drifted series are advisory: check the flagged run before "
            "trusting its figures"
        )
    return "\n".join(lines) + "\n"


def bench_drift_report(
    records: Sequence[Dict[str, Any]], threshold: float = DRIFT_THRESHOLD
) -> List[str]:
    """Advisory messages for heads whose *latest* run drifted.

    Only the latest run is reported — the gate runs after appending the
    current run, so "the newest point is anomalous against its own
    history" is the case a CI log can act on.
    """
    messages: List[str] = []
    for name, metrics in sorted(_bench_series(records, threshold).items()):
        for metric, series in sorted(metrics.items()):
            if not series.latest_drifted:
                continue
            z = next(
                z for i, z in series.flagged if i == len(series.values) - 1
            )
            messages.append(
                f"{name}: {metric} {series.values[-1]:g} drifts from its "
                f"history (median {_median(series.values):g}, "
                f"robust z {z:+.2f}, cut {threshold})"
            )
    return messages


# ----------------------------------------------------------------------
# the archive side
# ----------------------------------------------------------------------
def archive_trends(
    archive: "RunArchive", threshold: float = DRIFT_THRESHOLD
) -> List[Dict[str, Any]]:
    """Per-fingerprint trend rows over every archived run.

    Runs are grouped by (database fingerprint, workload fingerprint) —
    the same pair the results cache keys on — so a group holds the
    *same discovery problem* run under possibly different configs, and
    differences within a group are attributable to config or code, not
    input.  Each row carries the group's per-phase latency series,
    primitive cache hit-rate, and pool-incident counts, with the
    group's wall-time drift verdict.
    """
    groups: Dict[Tuple[str, str], List[Any]] = {}
    for run in archive.runs():
        groups.setdefault(run.cache_key[:2], []).append(run)
    rows: List[Dict[str, Any]] = []
    for (db_fp, wl_fp), runs in sorted(groups.items()):
        phase_ms: Dict[str, float] = {}
        calls = hits = incidents = 0
        walls: List[float] = []
        states: List[str] = []
        for run in runs:
            stats = run.stats
            for phase, ms in stats.phase_ms.items():
                phase_ms[phase] = phase_ms.get(phase, 0.0) + ms
            calls += sum(stats.primitive_calls.values())
            hits += sum(stats.primitive_cache_hits.values())
            incidents += sum(stats.pool_events.values())
            walls.append(sum(stats.phase_ms.values()))
            states.append(run.state)
        rows.append({
            "database_fingerprint": db_fp,
            "workload_fingerprint": wl_fp,
            "runs": len(runs),
            "states": states,
            "labels": [run.record.get("label", "") for run in runs],
            "phase_ms": {k: round(v, 3) for k, v in sorted(phase_ms.items())},
            "wall_ms": [round(w, 3) for w in walls],
            "cache_hit_rate": round(hits / calls, 4) if calls else 0.0,
            "pool_incidents": incidents,
            "drift": detect_drift(walls, threshold),
        })
    return rows


def render_archive_trends(
    archive: "RunArchive", threshold: float = DRIFT_THRESHOLD
) -> str:
    """The one-screen archive trend table (``repro history --archive``)."""
    rows = archive_trends(archive, threshold)
    if not rows:
        return "archive is empty\n"
    table = []
    for row in rows:
        slowest = max(
            row["phase_ms"].items(), key=lambda kv: kv[1], default=("-", 0.0)
        )
        table.append([
            row["database_fingerprint"][:10],
            row["workload_fingerprint"][:10],
            str(row["runs"]),
            ",".join(row["labels"][-3:]),
            f"{slowest[0]}={slowest[1]:.1f}ms",
            f"{100 * row['cache_hit_rate']:.0f}%",
            str(row["pool_incidents"]),
            "DRIFT" if row["drift"] else "ok",
        ])
    lines = [
        f"archive: {sum(r['runs'] for r in rows)} runs over "
        f"{len(rows)} fingerprint group(s)",
        format_table(
            ["database", "workload", "runs", "labels", "slowest phase",
             "hit-rate", "pool", "verdict"],
            table,
        ),
    ]
    return "\n".join(lines) + "\n"
