"""Provenance: the decision-lineage DAG of one reverse-engineering run.

The paper's pipeline is expert-in-the-loop: every IND classification
(§6.1), every enforced or validated FD (§6.2), every Restruct split and
every referential integrity constraint (§7) is a *decision* backed by
extension counts and an expert answer.  The :class:`ProvenanceLedger`
records that chain while the run happens:

- a **node** per pipeline artifact — source query, extracted equi-join,
  join classification, inclusion dependency, LHS/RHS candidate, hidden
  object, functional dependency, expert decision, restructured
  relation, RIC, and EER construct;
- an **edge** per derivation step, pointing *from the evidence to the
  artifact it justifies* (``query -> equijoin -> classification -> ind
  -> ric -> relationship``), so walking a node's incoming edges yields
  its complete derivation;
- per-node **evidence**: the :class:`~repro.obs.tracer.PrimitiveEvent`
  records (by sequence id in the shared :class:`Tracer` stream) whose
  counts justified the artifact, resolved by *signature matching* —
  the ledger never issues an extension query of its own.

The phases emit nodes as they run (see ``repro.core``); the ledger is
pure bookkeeping, so a provenance-enabled run is bit-identical to a
disabled one.  Exporters serialize the DAG as JSONL
(``repro/provenance@1``) and Graphviz DOT; :func:`explain` renders one
artifact's derivation chain as text — the ``repro explain`` command.
See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.util.jsonl import load_jsonl, save_jsonl

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracer import Tracer

__all__ = [
    "PROVENANCE_FORMAT",
    "NODE_KINDS",
    "ProvNode",
    "ProvEdge",
    "ProvenanceLedger",
    "provenance_records",
    "write_provenance_jsonl",
    "read_provenance_jsonl",
    "provenance_to_dot",
    "find_artifact",
    "explain",
]

PROVENANCE_FORMAT = "repro/provenance@1"

#: node kinds, ordered upstream -> downstream; ``explain`` prefers the
#: most derived kind when an artifact string matches several nodes
NODE_KINDS = (
    "query",           # one SQL statement of one application program
    "equijoin",        # an element of Q
    "classification",  # the (N_k, N_l, N_kl) verdict on one equi-join
    "decision",        # one expert prompt/answer pair
    "ind",             # an elicited inclusion dependency
    "candidate",       # an LHS/H candidate identifier R_i.A
    "fd",              # an elicited functional dependency
    "decomposition",   # a certified Restruct/synthesis decomposition
    "relation",        # a relation created/kept by Restruct
    "ric",             # a referential integrity constraint
    "entity",          # EER entity-type
    "relationship",    # EER relationship-type
    "isa",             # EER is-a link
)

#: human description per kind, used by ``explain`` headlines
KIND_TITLES = {
    "query": "source query",
    "equijoin": "equi-join of Q",
    "classification": "extension-count classification",
    "decision": "expert decision",
    "ind": "inclusion dependency",
    "candidate": "candidate identifier",
    "fd": "functional dependency",
    "decomposition": "certified decomposition",
    "relation": "relation",
    "ric": "referential integrity constraint",
    "entity": "EER entity-type",
    "relationship": "EER relationship-type",
    "isa": "EER is-a link",
}


@dataclass
class ProvNode:
    """One pipeline artifact with its span, evidence and attributes."""

    node_id: str
    kind: str
    label: str
    span_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: evidence events: {"id", "primitive", "relations", "attributes"}
    events: List[Dict[str, Any]] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"ProvNode({self.node_id!r}, evidence={len(self.events)})"


@dataclass(frozen=True)
class ProvEdge:
    """``src`` justifies (is upstream of) ``dst``."""

    src: str
    dst: str
    role: str

    def __repr__(self) -> str:
        return f"ProvEdge({self.src} -[{self.role}]-> {self.dst})"


class ProvenanceLedger:
    """Collects the lineage DAG of one (or more) pipeline runs.

    All methods are idempotent where it matters: :meth:`node` merges
    attributes into an existing node instead of duplicating it, and
    :meth:`link` suppresses duplicate edges — phases can re-assert a
    fact without bookkeeping.
    """

    def __init__(self, tracer: Optional["Tracer"] = None) -> None:
        self.tracer = tracer
        self.nodes: Dict[str, ProvNode] = {}
        self.edges: List[ProvEdge] = []
        self._edge_set: set = set()
        # evidence resolution: signature -> event seq ids, consumed FIFO
        self._event_cursor = 0
        self._by_signature: Dict[Tuple, List[int]] = {}
        self._last_decision: Optional[str] = None
        self._decision_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # building the DAG
    # ------------------------------------------------------------------
    def node(self, kind: str, key: str, label: Optional[str] = None,
             **attrs: Any) -> str:
        """Create (or update) the node ``kind:key``; returns its id."""
        node_id = f"{kind}:{key}"
        existing = self.nodes.get(node_id)
        if existing is None:
            span_id = (
                self.tracer.current_span_id() if self.tracer is not None else None
            )
            self.nodes[node_id] = ProvNode(
                node_id=node_id,
                kind=kind,
                label=label if label is not None else key,
                span_id=span_id,
                attrs=dict(attrs),
            )
        else:
            if label is not None:
                existing.label = label
            existing.attrs.update(attrs)
        return node_id

    def link(self, src: str, dst: str, role: str = "derives") -> None:
        """Add the edge ``src -[role]-> dst`` (duplicates suppressed)."""
        key = (src, dst, role)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self.edges.append(ProvEdge(src, dst, role))

    def decision(self, kind: str, question: str, answer: Any) -> str:
        """Record one expert interaction as a decision node.

        Repeats of the same question get distinct nodes (``#2``, ...) so
        the dialogue stays a faithful transcript, not a dictionary.
        """
        seen = self._decision_counts.get(question, 0) + 1
        self._decision_counts[question] = seen
        key = question if seen == 1 else f"{question}#{seen}"
        node_id = self.node(
            "decision", key, label=question,
            question=question, answer=repr(answer), decision_kind=kind,
        )
        self._last_decision = node_id
        return node_id

    def last_decision(self) -> Optional[str]:
        """The most recently recorded decision node id (or None)."""
        return self._last_decision

    # ------------------------------------------------------------------
    # evidence: primitive events, matched by call signature
    # ------------------------------------------------------------------
    def attach_evidence(
        self,
        node_id: str,
        primitive: str,
        relations: Sequence[str],
        attributes: Sequence[Sequence[str]],
    ) -> None:
        """Attach the next unconsumed event matching the signature.

        The tracer records one event per *logical* primitive call in
        both the serial and the batched engine (identical streams, see
        ``docs/ENGINE.md``), so consuming matches first-in-first-out
        yields the same evidence ids in both modes.  Without a tracer —
        or when no event matches — the attachment is silently empty:
        provenance degrades, it never fails a run.
        """
        if self.tracer is None:
            return
        signature = (
            primitive,
            tuple(relations),
            tuple(tuple(a) for a in attributes),
        )
        self._index_new_events()
        pending = self._by_signature.get(signature)
        if not pending:
            return
        seq = pending.pop(0)
        event = self.tracer.events[seq]
        self.nodes[node_id].events.append(
            {
                "id": seq,
                "primitive": event.primitive,
                "relations": list(event.relations),
                "attributes": [list(a) for a in event.attributes],
            }
        )

    def _index_new_events(self) -> None:
        events = self.tracer.events
        if self._event_cursor > len(events):  # tracer reset underneath us
            self._event_cursor = 0
            self._by_signature.clear()
        while self._event_cursor < len(events):
            event = events[self._event_cursor]
            signature = (event.primitive, event.relations, event.attributes)
            self._by_signature.setdefault(signature, []).append(self._event_cursor)
            self._event_cursor += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"ProvenanceLedger(nodes={len(self.nodes)}, "
            f"edges={len(self.edges)})"
        )


# ----------------------------------------------------------------------
# serialization: repro/provenance@1 JSONL
# ----------------------------------------------------------------------
def provenance_records(ledger: ProvenanceLedger) -> List[Dict[str, Any]]:
    """The ledger as JSON-ready records (header first, nodes, edges)."""
    rows: List[Dict[str, Any]] = [
        {
            "type": "provenance",
            "format": PROVENANCE_FORMAT,
            "nodes": len(ledger.nodes),
            "edges": len(ledger.edges),
        }
    ]
    for node in ledger.nodes.values():
        rows.append(
            {
                "type": "node",
                "id": node.node_id,
                "kind": node.kind,
                "label": node.label,
                "span": node.span_id,
                "attrs": dict(node.attrs),
                "events": [dict(e) for e in node.events],
            }
        )
    for edge in ledger.edges:
        rows.append(
            {"type": "edge", "src": edge.src, "dst": edge.dst, "role": edge.role}
        )
    return rows


def write_provenance_jsonl(ledger: ProvenanceLedger, path: str) -> None:
    """Write the lineage DAG as JSONL (header + node/edge records)."""
    save_jsonl(provenance_records(ledger), path)


def read_provenance_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a provenance JSONL file back (header included)."""
    records = load_jsonl(path)
    if not records or records[0].get("format") != PROVENANCE_FORMAT:
        raise ValueError(f"not a {PROVENANCE_FORMAT} document: {path!r}")
    return records


# ----------------------------------------------------------------------
# Graphviz DOT rendering
# ----------------------------------------------------------------------
#: node shape/fill per kind — lineage graphs read left (sources) to
#: right (EER constructs)
_DOT_STYLE = {
    "query": ("note", "#fff7e0"),
    "equijoin": ("ellipse", "#e8f0fe"),
    "classification": ("box", "#eef7ee"),
    "decision": ("diamond", "#fde8ef"),
    "ind": ("box", "#e0ecff"),
    "candidate": ("ellipse", "#f3eefc"),
    "fd": ("box", "#e0f4ff"),
    "decomposition": ("component", "#eafaf3"),
    "relation": ("folder", "#f0f0f0"),
    "ric": ("box", "#dff3e4"),
    "entity": ("box3d", "#fff0d8"),
    "relationship": ("hexagon", "#fff0d8"),
    "isa": ("triangle", "#fff0d8"),
}


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def provenance_to_dot(records: List[Dict[str, Any]]) -> str:
    """Render provenance records as a Graphviz DOT lineage graph."""
    nodes = [r for r in records if r.get("type") == "node"]
    edges = [r for r in records if r.get("type") == "edge"]
    lines = [
        "digraph provenance {",
        "  rankdir=LR;",
        '  node [fontname="Helvetica", fontsize=10, style=filled];',
        '  edge [fontname="Helvetica", fontsize=8, color="#777777"];',
    ]
    for node in nodes:
        shape, fill = _DOT_STYLE.get(node["kind"], ("box", "#ffffff"))
        label = f"{node['kind']}\\n{_dot_escape(node['label'])}"
        lines.append(
            f'  "{_dot_escape(node["id"])}" '
            f'[label="{label}", shape={shape}, fillcolor="{fill}"];'
        )
    for edge in edges:
        lines.append(
            f'  "{_dot_escape(edge["src"])}" -> "{_dot_escape(edge["dst"])}" '
            f'[label="{_dot_escape(edge["role"])}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# explain: walking one artifact's derivation chain
# ----------------------------------------------------------------------
def find_artifact(records: List[Dict[str, Any]], artifact: str) -> Dict[str, Any]:
    """Resolve *artifact* to one node: exact id, exact label, substring.

    Several kinds can share a label (an accepted IND and the RIC it
    becomes print identically), so ties prefer the most *derived* kind —
    ``repro explain "Emp[dep] << Dept[dep]"`` explains the constraint,
    not its raw dependency.  A tie within one kind is ambiguous and
    raises with the candidate ids.
    """
    nodes = [r for r in records if r.get("type") == "node"]
    if not nodes:
        raise ValueError("provenance document contains no nodes")
    for node in nodes:
        if node["id"] == artifact:
            return node
    rank = {kind: i for i, kind in enumerate(NODE_KINDS)}
    for match in (
        [n for n in nodes if n["label"] == artifact],
        [n for n in nodes if artifact in n["label"]],
    ):
        if not match:
            continue
        best = max(rank.get(n["kind"], -1) for n in match)
        finalists = [n for n in match if rank.get(n["kind"], -1) == best]
        if len(finalists) > 1:
            ids = ", ".join(sorted(n["id"] for n in finalists))
            raise ValueError(f"artifact {artifact!r} is ambiguous: {ids}")
        return finalists[0]
    raise ValueError(f"no artifact matching {artifact!r} in the provenance")


def _node_line(node: Dict[str, Any]) -> str:
    title = KIND_TITLES.get(node["kind"], node["kind"])
    attrs = {
        k: v for k, v in sorted(node.get("attrs", {}).items())
        if k not in ("question",)
    }
    extra = (
        " {" + ", ".join(f"{k}={v}" for k, v in attrs.items()) + "}"
        if attrs
        else ""
    )
    return f"{title}: {node['label']}{extra}"


def _evidence_lines(node: Dict[str, Any]) -> List[str]:
    lines = []
    for event in node.get("events", []):
        relations = event["relations"]
        attributes = event["attributes"]
        if len(relations) == 1 and len(attributes) == 2:
            # fd_holds: one relation with (lhs, rhs) attribute tuples
            calls = (
                f"{relations[0]}[{', '.join(attributes[0])} -> "
                f"{', '.join(attributes[1])}]"
            )
        else:
            calls = " ; ".join(
                f"{rel}[{', '.join(attrs)}]"
                for rel, attrs in zip(relations, attributes)
            )
        lines.append(
            f"evidence: {event['primitive']}({calls}) — trace event #{event['id']}"
        )
    return lines


def explain(records: List[Dict[str, Any]], artifact: str) -> str:
    """Render the full derivation chain of *artifact* as text.

    Walks the incoming edges of the resolved node transitively —
    classification, counts, source query, expert answer — indenting one
    level per derivation step.  Shared ancestors are printed once and
    referenced after that.
    """
    target = find_artifact(records, artifact)
    by_id = {r["id"]: r for r in records if r.get("type") == "node"}
    incoming: Dict[str, List[Dict[str, Any]]] = {}
    for edge in (r for r in records if r.get("type") == "edge"):
        incoming.setdefault(edge["dst"], []).append(edge)

    lines: List[str] = []
    printed: set = set()

    def walk(node: Dict[str, Any], depth: int, via: Optional[str]) -> None:
        pad = "  " * depth
        arrow = "<- " if depth else ""
        role = f" [{via}]" if via else ""
        if node["id"] in printed:
            lines.append(f"{pad}{arrow}{_node_line(node)}{role} (see above)")
            return
        printed.add(node["id"])
        lines.append(f"{pad}{arrow}{_node_line(node)}{role}")
        for evidence in _evidence_lines(node):
            lines.append(f"{pad}   {evidence}")
        for edge in incoming.get(node["id"], []):
            src = by_id.get(edge["src"])
            if src is not None:
                walk(src, depth + 1, edge["role"])

    walk(target, 0, None)
    return "\n".join(lines)
