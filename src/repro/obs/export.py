"""Trace and metrics exporters, and their file formats.

Two artifacts can be written from one :class:`~repro.obs.tracer.Tracer`:

- **JSONL trace** (``repro/trace@1``) — one JSON object per line.  The
  first line is a header; every further line is a ``span`` or ``event``
  record, ordered by start time.  Timestamps are milliseconds relative
  to the earliest record, so traces are diffable across runs and
  machines.
- **metrics JSON** (``repro/metrics@1``) — one flat document with
  per-phase durations and query counts, per-primitive call/latency/
  cache/row rollups, per-backend totals, and run totals.

The metrics document is *derived from the trace records*
(:func:`metrics_from_records`), so a summary computed live from a
tracer and one computed from a written-and-reread JSONL file agree by
construction.  ``repro trace summarize FILE`` renders the same records
as a span tree plus primitive table.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.util.jsonl import load_jsonl, save_jsonl
from repro.util.text import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracer import Tracer

__all__ = [
    "TRACE_FORMAT",
    "METRICS_FORMAT",
    "trace_records",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "metrics_from_records",
    "metrics_summary",
    "write_metrics_json",
    "summarize_trace",
]

TRACE_FORMAT = "repro/trace@1"
METRICS_FORMAT = "repro/metrics@1"


def _ms(seconds: float) -> float:
    """Seconds → milliseconds, rounded to survive a JSON round-trip."""
    return round(seconds * 1000.0, 6)


def trace_records(tracer: "Tracer") -> List[Dict[str, Any]]:
    """The tracer's streams as JSON-ready records (header first)."""
    starts = [s.start for s in tracer.spans] + [e.start for e in tracer.events]
    base = min(starts) if starts else 0.0
    rows: List[Dict[str, Any]] = []
    for span in tracer.spans:
        row = {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "start_ms": _ms(span.start - base),
            "duration_ms": _ms(span.duration),
            "attributes": dict(span.attributes),
        }
        if span.open:
            # a crashed or still-running scope: duration is elapsed-so-far
            row["open"] = True
        rows.append(row)
    for event in tracer.events:
        row = {
            "type": "event",
            "span": event.span_id,
            "primitive": event.primitive,
            "backend": event.backend,
            "relations": list(event.relations),
            "attributes": [list(a) for a in event.attributes],
            "start_ms": _ms(event.start - base),
            "duration_ms": _ms(event.duration),
            "cache_hit": event.cache_hit,
            "rows_touched": event.rows_touched,
        }
        if event.counters:
            # storage telemetry deltas (buffer pool / page I/O); omitted
            # when empty so traces from other backends are unchanged
            row["counters"] = dict(event.counters)
        rows.append(row)
    rows.sort(key=lambda r: (r["start_ms"], 0 if r["type"] == "span" else 1))
    header = {
        "type": "trace",
        "format": TRACE_FORMAT,
        "spans": len(tracer.spans),
        "events": len(tracer.events),
    }
    return [header] + rows


def write_trace_jsonl(tracer: "Tracer", path: str) -> None:
    """Write the trace as JSONL (header line + one record per line)."""
    save_jsonl(trace_records(tracer), path)


def read_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into its records (header included).

    Raises :class:`ValueError` for a malformed line (with its line
    number) or when the header is not a ``repro/trace@1`` header.
    """
    records = load_jsonl(path)
    if not records or records[0].get("format") != TRACE_FORMAT:
        raise ValueError(f"not a {TRACE_FORMAT} trace: {path!r}")
    return records


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def _descendants(spans: List[Dict[str, Any]]) -> Dict[int, set]:
    """span id → the ids of the span and every span nested under it."""
    children: Dict[Optional[int], List[int]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span["id"])
    out: Dict[int, set] = {}

    def collect(span_id: int) -> set:
        if span_id not in out:
            ids = {span_id}
            for child in children.get(span_id, []):
                ids |= collect(child)
            out[span_id] = ids
        return out[span_id]

    for span in spans:
        collect(span["id"])
    return out


def metrics_from_records(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The flat metrics document for one trace's records."""
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    subtree = _descendants(spans)

    phases: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        if span["kind"] != "phase":
            continue
        queries = sum(1 for e in events if e["span"] in subtree[span["id"]])
        phases[span["name"]] = {
            "duration_ms": span["duration_ms"],
            "queries": queries,
        }

    primitives: Dict[str, Dict[str, Any]] = {}
    backends: Dict[str, Dict[str, Any]] = {}
    for event in events:
        p = primitives.setdefault(
            event["primitive"],
            {
                "calls": 0,
                "duration_ms": 0.0,
                "cache_hits": 0,
                "cache_misses": 0,
                "rows_touched": 0,
            },
        )
        p["calls"] += 1
        p["duration_ms"] += event["duration_ms"]
        p["cache_hits" if event["cache_hit"] else "cache_misses"] += 1
        p["rows_touched"] += event["rows_touched"]
        b = backends.setdefault(event["backend"], {"calls": 0, "duration_ms": 0.0})
        b["calls"] += 1
        b["duration_ms"] += event["duration_ms"]
        for key, value in event.get("counters", {}).items():
            counters = b.setdefault("counters", {})
            counters[key] = counters.get(key, 0) + value
    for rollup in (*primitives.values(), *backends.values()):
        rollup["duration_ms"] = _ms(rollup["duration_ms"] / 1000.0)

    root_ms = max((s["duration_ms"] for s in spans if s["parent"] is None), default=0.0)
    return {
        "format": METRICS_FORMAT,
        "phases": phases,
        "primitives": primitives,
        "backends": backends,
        "totals": {
            "queries": len(events),
            "cache_hits": sum(1 for e in events if e["cache_hit"]),
            "rows_touched": sum(e["rows_touched"] for e in events),
            "query_duration_ms": _ms(sum(e["duration_ms"] for e in events) / 1000.0),
            "duration_ms": root_ms,
            "spans": len(spans),
        },
    }


def metrics_summary(tracer: "Tracer") -> Dict[str, Any]:
    """The metrics document computed live from *tracer*."""
    return metrics_from_records(trace_records(tracer))


def write_metrics_json(tracer: "Tracer", path: str) -> None:
    """Write the flat metrics summary as one JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics_summary(tracer), handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# human-readable rendering (repro trace summarize)
# ----------------------------------------------------------------------
def summarize_trace(records: List[Dict[str, Any]]) -> str:
    """Render a trace as a span tree plus per-primitive rollup table."""
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    subtree = _descendants(spans)
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)

    lines = [f"# Trace — {len(spans)} span(s), {len(events)} event(s)"]

    def walk(span: Dict[str, Any], depth: int) -> None:
        queries = sum(1 for e in events if e["span"] in subtree[span["id"]])
        extra = "".join(
            f" {k}={v}" for k, v in sorted(span.get("attributes", {}).items())
        )
        open_mark = " (open)" if span.get("open") else ""
        lines.append(
            f"{'  ' * depth}- {span['name']} [{span['kind']}]{open_mark} "
            f"{span['duration_ms']:.3f} ms, {queries} quer{'y' if queries == 1 else 'ies'}{extra}"
        )
        for child in children.get(span["id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)

    metrics = metrics_from_records(records)
    if metrics["primitives"]:
        rows = [
            [
                name,
                stats["calls"],
                f"{stats['duration_ms']:.3f}",
                stats["cache_hits"],
                stats["rows_touched"],
            ]
            for name, stats in sorted(metrics["primitives"].items())
        ]
        lines.append("")
        lines.append("# Primitives")
        lines.append(
            format_table(
                ["primitive", "calls", "total ms", "cache hits", "rows touched"],
                rows,
            )
        )
    return "\n".join(lines)
