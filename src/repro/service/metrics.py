"""``GET /metrics``: a Prometheus-style exposition of the service.

The exposition is aggregated from the **same stream** the SSE endpoint
serves — every job's bus folds each published ``repro/live@1`` record
into running :class:`~repro.obs.live.LiveStats` totals, which a scrape
merges in O(jobs) — plus the manager's own ledger, so a scrape and a
watcher can never disagree about what the service did (and the totals
outlive both history trimming and ledger eviction):

- ``repro_build_info{version=...}`` — the instance's build identity
  (federated expositions tell instances apart by it);
- ``repro_uptime_seconds`` — seconds since the server started;
- ``repro_jobs_total{state=...}`` — the ledger by state;
- ``repro_jobs_evicted_total`` — finished jobs the bounded ledger
  (``keep_finished``) has retired;
- ``repro_jobs_restored_total`` — runs restored from the archive at
  startup (their telemetry totals fold into every counter below);
- ``repro_phase_runs_total`` / ``repro_phase_latency_ms_total`` — one
  increment per closed phase span, summed per phase name;
- ``repro_primitive_calls_total`` / ``repro_primitive_cache_hits_total``
  — per extension primitive, from the ``primitive`` records;
- ``repro_storage_counter_total{counter=...}`` — buffer-pool and page
  I/O telemetry (the paged backend's ``pool_hits`` etc.), summed from
  the per-call counter deltas;
- ``repro_pool_events_total{event=...}`` — worker-pool incidents
  (respawns, crashes, timeouts, fallbacks);
- ``repro_live_events_total{type=...}`` / ``repro_live_dropped_total``
  — the bus's own accounting;
- ``repro_sse_streams_active`` — watchers connected right now.

:func:`lint_exposition` checks the text format the way a scraper
would — HELP/TYPE present per family, sample syntax, parseable values
— and is run over the live endpoint in CI
(``scripts/validate_exports.py``).
"""

from __future__ import annotations

import re
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.service.jobs import JOB_STATES

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.live import LiveStats
    from repro.service.jobs import JobManager

__all__ = [
    "METRICS_CONTENT_TYPE",
    "lint_exposition",
    "render_metrics",
]

#: the content type of the classic Prometheus text exposition
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Exposition:
    """Accumulates families and renders the text format."""

    def __init__(self) -> None:
        self._families: List[Tuple[str, str, str, List[Tuple[Dict[str, str], Any]]]] = []

    def family(
        self,
        name: str,
        kind: str,
        help_text: str,
        samples: List[Tuple[Dict[str, str], Any]],
    ) -> None:
        self._families.append((name, kind, help_text, samples))

    def render(self) -> str:
        lines: List[str] = []
        for name, kind, help_text, samples in self._families:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                if labels:
                    pairs = ",".join(
                        f'{key}="{_escape(str(val))}"'
                        for key, val in sorted(labels.items())
                    )
                    lines.append(f"{name}{{{pairs}}} {_format_value(value)}")
                else:
                    lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def render_metrics(
    manager: "JobManager",
    streams_active: int = 0,
    started: Optional[float] = None,
) -> str:
    """The whole service as one Prometheus text exposition.

    Aggregation is O(jobs), not O(events): each bus keeps running
    :class:`~repro.obs.live.LiveStats` totals updated at publish time,
    so a scrape merges per-job snapshots instead of rescanning every
    record ever published — and the totals survive the bounded history
    trimming old records, ledger eviction retiring old jobs, and even
    server restarts (runs restored from the archive fold their archived
    totals back in), keeping the counters monotonic throughout.

    *started* is the server's start wall-time; when given, the
    exposition carries a ``repro_uptime_seconds`` gauge.
    """
    jobs = manager.jobs()
    evicted = manager.evicted()
    restored = manager.restored()
    by_state = {state: 0 for state in JOB_STATES}
    cached = evicted["cached"]
    dropped = evicted["dropped"]
    totals: "LiveStats" = evicted["stats"]
    totals.merge(restored["stats"])
    for job in jobs:
        by_state[job.state] = by_state.get(job.state, 0) + 1
        cached += 1 if job.cached else 0
        bus = job.live
        if bus is None:
            continue
        dropped += bus.dropped()
        totals.merge(bus.stats())
    phase_runs = totals.phase_runs
    phase_ms = totals.phase_ms
    primitive_calls = totals.primitive_calls
    primitive_hits = totals.primitive_cache_hits
    storage = totals.storage_counters
    pool_events = totals.pool_events
    live_events = totals.events

    exposition = _Exposition()
    exposition.family(
        "repro_build_info", "gauge",
        "Build identity of this server instance (value is always 1).",
        [({"version": __version__}, 1)],
    )
    if started is not None:
        exposition.family(
            "repro_uptime_seconds", "gauge",
            "Seconds since this server instance started.",
            [({}, round(max(0.0, time.time() - started), 3))],
        )
    exposition.family(
        "repro_jobs_total", "gauge", "Jobs in the ledger, by state.",
        [({"state": state}, count) for state, count in sorted(by_state.items())],
    )
    exposition.family(
        "repro_jobs_cached_total", "counter",
        "Jobs answered from the results cache.", [({}, cached)],
    )
    exposition.family(
        "repro_jobs_evicted_total", "counter",
        "Finished jobs retired from the bounded ledger.",
        [({}, evicted["jobs"])],
    )
    exposition.family(
        "repro_jobs_restored_total", "counter",
        "Jobs restored into the ledger from the run archive at startup.",
        [({}, restored["jobs"])],
    )
    exposition.family(
        "repro_phase_runs_total", "counter",
        "Completed pipeline phase spans, by phase.",
        [({"phase": p}, n) for p, n in sorted(phase_runs.items())],
    )
    exposition.family(
        "repro_phase_latency_ms_total", "counter",
        "Total wall milliseconds spent per pipeline phase.",
        [({"phase": p}, ms) for p, ms in sorted(phase_ms.items())],
    )
    exposition.family(
        "repro_primitive_calls_total", "counter",
        "Extension-primitive calls, by primitive.",
        [({"primitive": p}, n) for p, n in sorted(primitive_calls.items())],
    )
    exposition.family(
        "repro_primitive_cache_hits_total", "counter",
        "Primitive calls answered from a cache, by primitive.",
        [({"primitive": p}, n) for p, n in sorted(primitive_hits.items())],
    )
    exposition.family(
        "repro_storage_counter_total", "counter",
        "Storage telemetry deltas (buffer pool, page I/O), by counter.",
        [({"counter": c}, n) for c, n in sorted(storage.items())],
    )
    exposition.family(
        "repro_pool_events_total", "counter",
        "Worker-pool incidents (respawn/crash/timeout/fallback), by event.",
        [({"event": e}, n) for e, n in sorted(pool_events.items())],
    )
    exposition.family(
        "repro_live_events_total", "counter",
        "Live telemetry records published, by record type.",
        [({"type": t}, n) for t, n in sorted(live_events.items())],
    )
    exposition.family(
        "repro_live_dropped_total", "counter",
        "Live records dropped on full subscriber queues.", [({}, dropped)],
    )
    exposition.family(
        "repro_sse_streams_active", "gauge",
        "SSE watchers connected right now.", [({}, streams_active)],
    )
    return exposition.render()


# ----------------------------------------------------------------------
# the lint (what a scraper would reject)
# ----------------------------------------------------------------------
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def lint_exposition(text: str) -> List[str]:
    """Problems with a Prometheus text exposition; empty = parses clean."""
    problems: List[str] = []
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    helped: Dict[str, bool] = {}
    typed: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {number}: malformed comment {line!r}")
                continue
            _, keyword, name = parts[0], parts[1], parts[2]
            if not _NAME.match(name):
                problems.append(f"line {number}: bad metric name {name!r}")
                continue
            if keyword == "HELP":
                if name in helped:
                    problems.append(f"line {number}: duplicate HELP for {name}")
                helped[name] = True
            else:
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in _TYPES:
                    problems.append(
                        f"line {number}: unknown TYPE {kind!r} for {name}"
                    )
                if name in typed:
                    problems.append(f"line {number}: duplicate TYPE for {name}")
                typed[name] = kind
            continue
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        if name not in typed:
            problems.append(f"line {number}: sample {name} has no TYPE")
        if name not in helped:
            problems.append(f"line {number}: sample {name} has no HELP")
        labels = match.group("labels")
        if labels:
            for pair in _split_labels(labels):
                if not _LABEL_PAIR.match(pair):
                    problems.append(
                        f"line {number}: bad label pair {pair!r}"
                    )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {number}: bad sample value {value!r}")
    return problems


def _split_labels(body: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs, current, quoted, escaped = [], [], False, False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            quoted = not quoted
            current.append(char)
            continue
        if char == "," and not quoted:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs
