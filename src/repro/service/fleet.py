"""``/metrics`` federation: one exposition for a fleet of servers.

A single ``repro serve`` instance describes itself; a fleet of them —
one per schema under study, or sharded across machines — needs one
scrape that covers all of it.  This module merges several Prometheus
text expositions into one fleet-level exposition with **per-instance
labels and conflict-safe counter semantics**:

- every sample gains an ``instance="host:port"`` label, so series from
  different servers never collide and each instance's counters remain
  individually monotonic — values are never summed across instances
  (summing two independently-restarting counters would produce a
  non-monotonic series; label-joining is what Prometheus federation
  itself does);
- sample values are carried **verbatim** (as strings), so merging can
  never change what an instance reported;
- HELP/TYPE metadata is emitted once per family (first writer wins),
  keeping the merged text lintable by
  :func:`repro.service.metrics.lint_exposition`;
- unreachable peers degrade to ``repro_fleet_peer_up{instance=...} 0``
  instead of failing the whole scrape.

Served two ways: ``repro serve --peers URL...`` exposes the merged
exposition at ``GET /fleet/metrics`` (peers are scraped at ``/metrics``
— never ``/fleet/metrics`` — so two servers peered at each other cannot
recurse), and ``repro fleet scrape URL...`` does the same merge
client-side with no server in the middle.  ``repro fleet status``
renders the one-screen human overview instead.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.log import get_logger
from repro.service.metrics import _SAMPLE, _escape, _split_labels

__all__ = [
    "MetricFamily",
    "federate_with_self",
    "fleet_status",
    "merge_expositions",
    "parse_exposition",
    "scrape_fleet",
    "scrape_metrics",
]

log = get_logger("fleet")

#: how long one peer scrape may take before it counts as down
DEFAULT_SCRAPE_TIMEOUT = 5.0


@dataclass
class MetricFamily:
    """One metric family of a parsed exposition.

    Sample values are kept as the exact strings the instance exposed —
    federation relabels, it never recomputes.
    """

    name: str
    kind: str = "untyped"
    help: str = ""
    #: (labels, verbatim value string) per sample, in exposition order
    samples: List[Tuple[Dict[str, str], str]] = field(default_factory=list)


def parse_exposition(text: str) -> List[MetricFamily]:
    """Parse a Prometheus text exposition into its families, in order.

    Tolerant by design (a fleet scrape should survive a slightly odd
    peer): unparseable lines are skipped, HELP/TYPE seen after samples
    still attach to their family.
    """
    families: Dict[str, MetricFamily] = {}
    order: List[str] = []

    def family(name: str) -> MetricFamily:
        if name not in families:
            families[name] = MetricFamily(name=name)
            order.append(name)
        return families[name]

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue
            if parts[1] == "HELP":
                family(parts[2]).help = parts[3] if len(parts) > 3 else ""
            else:
                family(parts[2]).kind = parts[3] if len(parts) > 3 else "untyped"
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        labels: Dict[str, str] = {}
        body = match.group("labels")
        if body:
            for pair in _split_labels(body):
                key, _, value = pair.partition("=")
                labels[key.strip()] = _unquote(value.strip())
        family(match.group("name")).samples.append(
            (labels, match.group("value"))
        )
    return [families[name] for name in order]


def _unquote(value: str) -> str:
    if len(value) >= 2 and value.startswith('"') and value.endswith('"'):
        value = value[1:-1]
    return (
        value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
    )


def merge_expositions(
    expositions: Mapping[str, str],
    peer_up: Optional[Mapping[str, bool]] = None,
) -> str:
    """Merge instance expositions into one fleet-level exposition.

    *expositions* maps instance label → exposition text; every sample
    is re-labelled with ``instance=<label>`` (overriding any stale
    ``instance`` label a peer carried) and values pass through
    verbatim, so each instance's counters stay monotonic and never mix.
    *peer_up* adds the fleet's own health family for peers that could
    not be scraped at all.
    """
    merged: Dict[str, MetricFamily] = {}
    order: List[str] = []
    for instance, text in expositions.items():
        for parsed in parse_exposition(text):
            target = merged.get(parsed.name)
            if target is None:
                target = MetricFamily(
                    name=parsed.name, kind=parsed.kind, help=parsed.help
                )
                merged[parsed.name] = target
                order.append(parsed.name)
            for labels, value in parsed.samples:
                relabelled = dict(labels)
                relabelled["instance"] = instance
                target.samples.append((relabelled, value))

    lines: List[str] = []
    up = dict(peer_up or {})
    for instance in expositions:
        up.setdefault(instance, True)
    lines.append(
        "# HELP repro_fleet_peer_up Whether the last scrape of each "
        "fleet instance succeeded."
    )
    lines.append("# TYPE repro_fleet_peer_up gauge")
    for instance in up:
        lines.append(
            f'repro_fleet_peer_up{{instance="{_escape(instance)}"}} '
            f"{1 if up[instance] else 0}"
        )
    lines.append(
        "# HELP repro_fleet_instances Fleet instances merged into this "
        "exposition."
    )
    lines.append("# TYPE repro_fleet_instances gauge")
    lines.append(f"repro_fleet_instances {len(expositions)}")
    for name in order:
        parsed = merged[name]
        help_text = parsed.help or name
        kind = parsed.kind if parsed.kind else "untyped"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in parsed.samples:
            pairs = ",".join(
                f'{key}="{_escape(str(val))}"'
                for key, val in sorted(labels.items())
            )
            lines.append(f"{name}{{{pairs}}} {value}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# scraping
# ----------------------------------------------------------------------
def instance_label(url: str) -> str:
    """The per-instance label for a peer URL: its ``host:port``."""
    parsed = urllib.parse.urlparse(url if "//" in url else f"http://{url}")
    return parsed.netloc or url


def metrics_url(url: str) -> str:
    """Normalize a peer address to its ``/metrics`` endpoint."""
    if "//" not in url:
        url = f"http://{url}"
    parsed = urllib.parse.urlparse(url)
    path = parsed.path.rstrip("/")
    if not path:
        path = "/metrics"
    return urllib.parse.urlunparse(parsed._replace(path=path))


def scrape_metrics(
    url: str, timeout: float = DEFAULT_SCRAPE_TIMEOUT
) -> Optional[str]:
    """One peer's exposition text, or None when the peer is down."""
    try:
        with urllib.request.urlopen(metrics_url(url), timeout=timeout) as resp:
            return resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError, ValueError) as exc:
        log.warning(
            "peer scrape failed",
            extra={"data": {"url": url, "error": str(exc)}},
        )
        return None


def scrape_fleet(
    urls: Sequence[str], timeout: float = DEFAULT_SCRAPE_TIMEOUT
) -> str:
    """Scrape every URL's ``/metrics`` and merge them (client-side)."""
    expositions: Dict[str, str] = {}
    peer_up: Dict[str, bool] = {}
    for url in urls:
        instance = instance_label(url)
        text = scrape_metrics(url, timeout=timeout)
        peer_up[instance] = text is not None
        if text is not None:
            expositions[instance] = text
    return merge_expositions(expositions, peer_up=peer_up)


def federate_with_self(
    self_text: str,
    self_instance: str,
    peer_urls: Sequence[str],
    timeout: float = DEFAULT_SCRAPE_TIMEOUT,
) -> str:
    """The server-side merge: this instance's exposition plus its peers.

    The serving instance renders itself in-process (no self-scrape, no
    recursion risk) and each peer is fetched at its plain ``/metrics``.
    """
    expositions: Dict[str, str] = {self_instance: self_text}
    peer_up: Dict[str, bool] = {self_instance: True}
    for url in peer_urls:
        instance = instance_label(url)
        if instance == self_instance:
            continue
        text = scrape_metrics(url, timeout=timeout)
        peer_up[instance] = text is not None
        if text is not None:
            expositions[instance] = text
    return merge_expositions(expositions, peer_up=peer_up)


# ----------------------------------------------------------------------
# the one-screen status view
# ----------------------------------------------------------------------
def _fetch_json(url: str, timeout: float) -> Optional[Dict[str, Any]]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


def fleet_status(
    urls: Sequence[str], timeout: float = DEFAULT_SCRAPE_TIMEOUT
) -> str:
    """One screen of fleet state: per instance, liveness and job counts.

    Built from each instance's ``/healthz`` (version, uptime) and
    ``/health`` (ledger counts) probes; a down instance still gets a
    row, marked ``down``.
    """
    rows: List[Tuple[str, ...]] = [
        ("INSTANCE", "UP", "VERSION", "UPTIME_S", "JOBS", "RUNNING", "QUEUED")
    ]
    total_jobs = running = queued = reachable = 0
    for url in urls:
        instance = instance_label(url)
        if "//" not in url:
            url = f"http://{url}"
        base = urllib.parse.urlunparse(
            urllib.parse.urlparse(url)._replace(path="")
        )
        healthz = _fetch_json(f"{base}/healthz", timeout)
        health = _fetch_json(f"{base}/health", timeout)
        if healthz is None and health is None:
            rows.append((instance, "down", "-", "-", "-", "-", "-"))
            continue
        reachable += 1
        healthz = healthz or {}
        health = health or {}
        total_jobs += int(health.get("jobs") or 0)
        running += int(health.get("running") or 0)
        queued += int(health.get("queued") or 0)
        rows.append((
            instance,
            "up",
            str(healthz.get("version", "-")),
            str(healthz.get("uptime_seconds", "-")),
            str(health.get("jobs", "-")),
            str(health.get("running", "-")),
            str(health.get("queued", "-")),
        ))
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]
    lines.append(
        f"fleet: {reachable}/{len(urls)} up, {total_jobs} jobs "
        f"({running} running, {queued} queued)"
    )
    return "\n".join(lines) + "\n"
