"""The process-parallel probe executor: probe batches on worker processes.

The batched engine plans counting work into probe groups; this module
partitions those groups across a pool of worker **processes**.  Each
worker rebuilds the extension from a picklable payload — backend name
resolved through :mod:`repro.backends.registry`, the schema document,
and every relation's rows — so it owns a private backend instance (its
own SQLite connection, memory partition, or paged file set) and never
shares state with the parent.  Probe values are plain ints and bools,
so merging results cannot change what the method computes; the
differential suite asserts bit-identical pipeline output.

Scheduling is deterministic: batch *i* always goes to worker slot
``i % workers``, each slot has its own task queue, and the parent emits
trace events in submission order — which worker answered when is
invisible to the trace.  Failure handling is explicit:

- **crash detection** — a dead worker process (nonzero exit, killed) is
  respawned and its outstanding batches are re-dispatched;
- **per-batch timeout** — a batch outstanding past its deadline marks
  the worker hung; the process is terminated, respawned, and the batch
  re-dispatched;
- **bounded retry** — each batch is retried at most ``max_retries``
  times across crashes/timeouts/errors; exhaustion raises
  :class:`~repro.exceptions.WorkerPoolError`, which the
  :class:`~repro.engine.executor.BatchExecutor` answers by falling back
  to the serial path.

The payload may carry a ``fault`` spec (see :func:`worker_payload`) that
makes early worker spawns crash, hang or error on matching probes —
the chaos hook the crash-injection CI lane drives; production payloads
simply omit it.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.exceptions import WorkerPoolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.probes import Probe
    from repro.relational.database import Database

__all__ = [
    "DEFAULT_BATCH_TIMEOUT",
    "DEFAULT_MAX_RETRIES",
    "PoolStats",
    "ProcessProbeExecutor",
    "worker_payload",
]

#: seconds one dispatched batch may stay unanswered before its worker
#: is presumed hung and terminated
DEFAULT_BATCH_TIMEOUT = 30.0

#: re-dispatches per batch (after the first attempt) before the pool
#: gives up and the executor falls back to serial evaluation
DEFAULT_MAX_RETRIES = 2

#: how often the parent wakes to check worker liveness and deadlines
#: while waiting for results
_LIVENESS_TICK = 0.05


def worker_payload(
    database: "Database",
    options: Optional[Dict[str, Any]] = None,
    fault: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A picklable snapshot of *database* a worker can rebuild from.

    The payload names the backend kind (resolved in the worker through
    the registry), carries the schema as its ``repro/schema@1`` document
    and every relation's rows as plain values (NULL → None).  *options*
    are forwarded to the worker-side backend factory (e.g. paged pool
    sizing).  *fault*, when given, is the chaos hook: a dict with
    ``mode`` (``"exit"``, ``"hang"`` or ``"error"``), optional
    ``primitive``/``relation`` matchers, and ``spawns`` — how many of
    the pool's first worker spawns carry the fault (default 1, so the
    respawned worker recovers).
    """
    from repro.relational.domain import is_null
    from repro.storage.serialize import schema_to_dict

    backend = database.backend
    payload: Dict[str, Any] = {
        "backend": getattr(backend, "kind", "memory"),
        "options": dict(options or {}),
        "schema": schema_to_dict(database.schema),
        "rows": {
            name: [
                [None if is_null(value) else value for value in row]
                for row in backend.rows(name)
            ]
            for name in database.schema.relation_names
        },
    }
    if fault:
        payload["fault"] = dict(fault)
    return payload


# ----------------------------------------------------------------------
# the worker side (runs in the child process)
# ----------------------------------------------------------------------
def _build_backend(payload: Dict[str, Any]):
    """Rebuild the extension from the payload on a fresh backend."""
    from repro.backends import create_backend
    from repro.storage.serialize import schema_from_dict

    backend = create_backend(payload["backend"], **payload.get("options", {}))
    schema = schema_from_dict(payload["schema"])
    backend.attach(schema)
    for name, rows in payload["rows"].items():
        backend.insert_many(name, rows)
    return backend


def _fault_matches(fault: Optional[Dict[str, Any]], spawn_index: int, probes) -> bool:
    """Does the chaos hook apply to this spawn and batch?"""
    if not fault or spawn_index >= fault.get("spawns", 1):
        return False
    primitive = fault.get("primitive")
    relation = fault.get("relation")
    for probe in probes:
        if primitive and probe.primitive != primitive:
            continue
        if relation and relation not in probe.relations:
            continue
        return True
    return False


def _evaluate_batch(backend, probes) -> List[Dict[str, Any]]:
    """Answer one batch with the backend's best local strategy.

    Returns one record per probe — value, wall time, and the same
    cache-hit / rows-touched / telemetry figures the in-process
    strategies report — aligned with *probes* by position.
    """
    from repro.engine.executor import dispatch_probe
    from repro.obs.instrument import telemetry_delta

    hook = getattr(backend, "probe", None)
    telemetry = getattr(backend, "telemetry", None)
    out: List[Dict[str, Any]] = []
    if callable(getattr(backend, "execute_batch", None)):
        profiled = [
            hook(p.primitive, p.relations, p.attributes) if hook else (False, 0)
            for p in probes
        ]
        before = telemetry() if telemetry is not None else None
        start = time.perf_counter()
        values = backend.execute_batch(list(probes))
        share = (time.perf_counter() - start) / max(len(probes), 1)
        counters = (
            telemetry_delta(before, telemetry() if telemetry is not None else None)
            or {}
        )
        for (cache_hit, rows_touched), value in zip(profiled, values):
            out.append(
                {
                    "value": value,
                    "duration": share,
                    "cache_hit": cache_hit,
                    "rows_touched": rows_touched,
                    "counters": counters,
                }
            )
        return out
    for probe in probes:
        cache_hit, rows_touched = (
            hook(probe.primitive, probe.relations, probe.attributes)
            if hook
            else (False, 0)
        )
        before = telemetry() if telemetry is not None else None
        start = time.perf_counter()
        value = dispatch_probe(backend, probe)
        duration = time.perf_counter() - start
        after = telemetry() if telemetry is not None else None
        out.append(
            {
                "value": value,
                "duration": duration,
                "cache_hit": cache_hit,
                "rows_touched": rows_touched,
                "counters": telemetry_delta(before, after) or {},
            }
        )
    return out


def _worker_main(worker_id, spawn_index, payload, tasks, results) -> None:
    """The worker loop: rebuild the extension, answer batches until None."""
    backend = None
    try:
        try:
            backend = _build_backend(payload)
        except Exception as exc:  # report, then stop: the parent respawns
            results.put(("error", worker_id, (None, f"worker setup failed: {exc}")))
            return
        fault = payload.get("fault")
        while True:
            task = tasks.get()
            if task is None:
                return
            batch_id, probes = task
            if _fault_matches(fault, spawn_index, probes):
                mode = fault.get("mode", "exit")
                if mode == "exit":
                    os._exit(fault.get("code", 13))
                if mode == "hang":
                    time.sleep(fault.get("seconds", 3600.0))
                results.put(("error", worker_id, (batch_id, "injected fault")))
                continue
            try:
                answered = _evaluate_batch(backend, probes)
            except Exception as exc:
                results.put(
                    ("error", worker_id, (batch_id, f"{type(exc).__name__}: {exc}"))
                )
                continue
            results.put(("result", worker_id, (batch_id, answered)))
    finally:
        if backend is not None:
            backend.close()


# ----------------------------------------------------------------------
# the parent side
# ----------------------------------------------------------------------
@dataclass
class PoolStats:
    """Cumulative failure/throughput accounting of one pool."""

    batches: int = 0
    probes: int = 0
    crashes: int = 0
    timeouts: int = 0
    retries: int = 0
    worker_errors: int = 0
    spawns: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "probes": self.probes,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "worker_errors": self.worker_errors,
            "spawns": self.spawns,
        }


@dataclass
class _Pending:
    """One dispatched batch the parent is still waiting on."""

    position: int
    probes: List["Probe"]
    slot: int
    deadline: float
    attempts: int = 0


@dataclass
class _Worker:
    """One worker slot: its process, private task queue, spawn index."""

    process: Any
    tasks: Any
    spawn_index: int
    stopping: bool = field(default=False)


class ProcessProbeExecutor:
    """Answers probe batches on a pool of worker processes.

    Built from a :func:`worker_payload` snapshot; workers spawn lazily
    on the first :meth:`execute` call and persist across batches, so the
    payload ships once per worker, not once per batch.  ``close`` (or
    use as a context manager) shuts the pool down; a closed pool raises
    on further use.
    """

    def __init__(
        self,
        payload: Dict[str, Any],
        workers: int = 2,
        batch_timeout: float = DEFAULT_BATCH_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        mp_context: Optional[str] = None,
        notify: Optional[Any] = None,
    ) -> None:
        self.payload = payload
        self.workers = max(1, workers)
        self.batch_timeout = batch_timeout
        self.max_retries = max(0, max_retries)
        #: ``notify(event, **details)`` — pool incidents (respawns,
        #: crashes, timeouts, worker errors) for the live telemetry
        #: stream; e.g. :meth:`repro.obs.tracer.Tracer.pool_event`
        self._notify = notify
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(mp_context)
        self._results = self._context.Queue()
        self._slots: List[Optional[_Worker]] = [None] * self.workers
        self._next_batch_id = 0
        self._closed = False
        self.stats = PoolStats()

    def _emit(self, event: str, **details: Any) -> None:
        """Report one pool incident to the notify hook, if any."""
        if self._notify is not None:
            self._notify(event, **details)

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ProcessProbeExecutor":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker (sentinel first, terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._slots:
            if worker is None:
                continue
            try:
                worker.tasks.put(None)
            except (ValueError, OSError):  # queue already torn down
                pass
        for worker in self._slots:
            if worker is None:
                continue
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        self._slots = [None] * self.workers

    # -- execution -----------------------------------------------------
    def execute(
        self, batches: Sequence[Sequence["Probe"]]
    ) -> List[List[Dict[str, Any]]]:
        """Answer every batch; results align with *batches* by position.

        Raises :class:`WorkerPoolError` when any batch exhausts its
        retries — the caller then owns the fallback.
        """
        if self._closed:
            raise WorkerPoolError("process pool is closed")
        out: List[Optional[List[Dict[str, Any]]]] = [None] * len(batches)
        pending: Dict[int, _Pending] = {}
        for position, batch in enumerate(batches):
            self._dispatch(position, list(batch), pending, attempts=0)
        while pending:
            try:
                kind, _worker_id, body = self._results.get(timeout=_LIVENESS_TICK)
            except queue.Empty:
                self._reap(pending)
                continue
            if kind == "result":
                batch_id, answered = body
                entry = pending.pop(batch_id, None)
                if entry is None:  # stale: a retried batch answered twice
                    continue
                out[entry.position] = answered
                self.stats.batches += 1
                self.stats.probes += len(answered)
            elif kind == "error":
                batch_id, message = body
                self.stats.worker_errors += 1
                self._emit("worker-error", message=message)
                if batch_id in pending:
                    self._retry(batch_id, pending, reason=message)
        return [answered for answered in out if answered is not None] if all(
            answered is not None for answered in out
        ) else self._incomplete(out)

    def _incomplete(self, out) -> List[List[Dict[str, Any]]]:
        missing = sum(1 for answered in out if answered is None)
        raise WorkerPoolError(f"{missing} batch(es) lost without a result")

    # -- internals -----------------------------------------------------
    def _worker(self, slot: int) -> _Worker:
        """The live worker for *slot*, spawning or respawning as needed."""
        worker = self._slots[slot]
        if worker is not None and worker.process.is_alive():
            return worker
        tasks = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(slot, self.stats.spawns, self.payload, tasks, self._results),
            daemon=True,
        )
        process.start()
        worker = _Worker(process=process, tasks=tasks, spawn_index=self.stats.spawns)
        self._slots[slot] = worker
        self.stats.spawns += 1
        if self.stats.spawns > self.workers:  # beyond the initial complement
            self._emit("respawn", slot=slot, spawn=worker.spawn_index)
        return worker

    def _dispatch(
        self,
        position: int,
        probes: List["Probe"],
        pending: Dict[int, _Pending],
        attempts: int,
    ) -> None:
        slot = position % self.workers
        worker = self._worker(slot)
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        pending[batch_id] = _Pending(
            position=position,
            probes=probes,
            slot=slot,
            deadline=time.monotonic() + self.batch_timeout,
            attempts=attempts,
        )
        worker.tasks.put((batch_id, probes))

    def _retry(
        self, batch_id: int, pending: Dict[int, _Pending], reason: str
    ) -> None:
        entry = pending.pop(batch_id)
        if entry.attempts >= self.max_retries:
            raise WorkerPoolError(
                f"batch of {len(entry.probes)} probe(s) failed after "
                f"{entry.attempts + 1} attempt(s): {reason}"
            )
        self.stats.retries += 1
        self._dispatch(entry.position, entry.probes, pending, entry.attempts + 1)

    def _reap(self, pending: Dict[int, _Pending]) -> None:
        """Crash and timeout detection between result arrivals."""
        now = time.monotonic()
        # a dead worker can never answer: respawn and re-dispatch its share
        for slot in range(self.workers):
            worker = self._slots[slot]
            if worker is None or worker.process.is_alive():
                continue
            assigned = [
                batch_id for batch_id, entry in pending.items() if entry.slot == slot
            ]
            if not assigned:
                continue
            self.stats.crashes += 1
            self._emit(
                "crash", slot=slot, exitcode=worker.process.exitcode,
                batches=len(assigned),
            )
            self._slots[slot] = None
            for batch_id in assigned:
                self._retry(
                    batch_id,
                    pending,
                    reason=f"worker exited with code {worker.process.exitcode}",
                )
        # a live worker past a batch deadline is hung: terminate, re-dispatch
        overdue = [
            batch_id for batch_id, entry in pending.items() if entry.deadline < now
        ]
        terminated = set()
        for batch_id in overdue:
            if batch_id not in pending:
                continue
            entry = pending[batch_id]
            worker = self._slots[entry.slot]
            if worker is not None and entry.slot not in terminated:
                worker.process.terminate()
                worker.process.join(timeout=1.0)
                self._slots[entry.slot] = None
                terminated.add(entry.slot)
            self.stats.timeouts += 1
            self._emit(
                "timeout", slot=entry.slot, probes=len(entry.probes),
            )
            self._retry(batch_id, pending, reason="batch timed out")
