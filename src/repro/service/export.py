"""The ``repro/jobs@1`` export: the job ledger as JSONL.

Same carrier discipline as every other export in this repository
(:mod:`repro.util.jsonl`): one self-contained JSON object per line, a
header record first.  The header carries the format tag and per-state
counts, so a consumer can sanity-check a file without reading it whole;
each following record is one job's full lifecycle — state, cache
provenance, fingerprints, timings, and (for finished runs) the result
summary.  ``scripts/validate_exports.py`` round-trips the export in CI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Union

from repro.util.jsonl import load_jsonl, save_jsonl

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.jobs import Job, JobManager

__all__ = ["JOBS_FORMAT", "jobs_to_records", "read_jobs_jsonl", "write_jobs_jsonl"]

#: the versioned format tag of the job-ledger export
JOBS_FORMAT = "repro/jobs@1"


def jobs_to_records(
    source: Union["JobManager", Sequence["Job"]],
) -> List[Dict[str, Any]]:
    """The ledger as JSON-ready records: header first, one per job."""
    jobs = source.jobs() if hasattr(source, "jobs") else list(source)
    records = [job.as_record() for job in jobs]
    states: Dict[str, int] = {}
    for record in records:
        states[record["state"]] = states.get(record["state"], 0) + 1
    cached = sum(1 for record in records if record["cached"])
    header = {
        "type": "header",
        "format": JOBS_FORMAT,
        "jobs": len(records),
        "states": states,
        "cached": cached,
    }
    return [header] + records


def write_jobs_jsonl(
    source: Union["JobManager", Sequence["Job"]], path: str
) -> List[Dict[str, Any]]:
    """Write the ledger to *path*; returns the records written."""
    records = jobs_to_records(source)
    save_jsonl(records, path)
    return records


def read_jobs_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a ledger back, validating the header tag and counts."""
    records = load_jsonl(path)
    if not records:
        raise ValueError(f"{path}: empty jobs export")
    header = records[0]
    if header.get("format") != JOBS_FORMAT:
        raise ValueError(
            f"{path}: not a {JOBS_FORMAT} export "
            f"(format={header.get('format')!r})"
        )
    body = records[1:]
    if header.get("jobs") != len(body):
        raise ValueError(
            f"{path}: header claims {header.get('jobs')} job(s), "
            f"file carries {len(body)}"
        )
    return records
