"""``repro serve``: the job manager behind a local HTTP JSON API.

Stdlib only (:class:`http.server.ThreadingHTTPServer`), so the service
runs anywhere the library does.  Routes:

- ``POST /jobs`` — submit a job spec (:mod:`repro.service.specs`
  document as the request body); answers ``201`` with the job record.
- ``GET /jobs`` — the full ledger, shaped exactly like the
  ``repro/jobs@1`` export (header record + one record per job).
- ``GET /jobs/<id>`` — one job's record (state, timings, summary).
- ``GET /jobs/<id>/eer`` — a finished job's rendered EER schema
  (``409`` while the job is still queued/running).
- ``GET /jobs/<id>/events`` — the job's live ``repro/live@1`` stream as
  Server-Sent Events: retained history then tail by default,
  ``Last-Event-ID`` resumes after a reconnect, idle streams carry
  heartbeat comments, and the ``end`` sentinel closes the stream
  cleanly.  The backlog pages straight from the bus history (never
  through the bounded tail queue, so replays of any length complete),
  and when a slow client's queue drops records mid-tail the handler
  detects the ``seq`` gap and re-syncs from history before continuing.
- ``DELETE /jobs/<id>`` — cancel; answers whether it took effect.
- ``GET /metrics`` — a Prometheus-style text exposition aggregated
  from the same live streams (:mod:`repro.service.metrics`).
- ``GET /health`` — liveness + job counts (the original combined
  probe); ``GET /healthz`` (liveness) and ``GET /readyz`` (readiness —
  503 once shutdown begins) split it for orchestrators.

Errors are JSON too: ``{"error": ...}`` with a 4xx status.  The server
binds localhost by default — it is a workstation/CI service, not an
internet-facing one.

``serve`` installs SIGINT/SIGTERM handlers for a graceful exit: new
work is refused (``/readyz`` flips 503), queued jobs are cancelled,
every connected SSE watcher is drained with an ``end`` sentinel, and
the process leaves with status 0.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence, Tuple

from repro import __version__
from repro.exceptions import UnknownJobError
from repro.obs.live import DEFAULT_QUEUE_SIZE
from repro.obs.log import get_logger
from repro.service.export import jobs_to_records
from repro.service.jobs import Job, JobManager
from repro.service.metrics import METRICS_CONTENT_TYPE, render_metrics
from repro.service.stream import (
    DEFAULT_HEARTBEAT,
    SSE_CONTENT_TYPE,
    format_comment,
    format_event,
)

__all__ = ["build_server", "serve"]

log = get_logger("server")

#: how long ``serve`` waits for connected SSE streams to drain at exit
_DRAIN_TIMEOUT = 5.0

#: the wait slice inside the SSE loop: short enough to notice shutdown
#: promptly, long enough to stay idle-cheap
_STREAM_TICK = 0.25


class _JobsHandler(BaseHTTPRequestHandler):
    """One request; the manager hangs off the server object."""

    server_version = "repro-serve/1"

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, document: Any) -> None:
        body = json.dumps(document, sort_keys=True, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _route(self) -> Tuple[str, Optional[str], Optional[str]]:
        """Split ``/jobs/<id>/<view>`` into its three parts."""
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        head = parts[0] if parts else ""
        job_id = parts[1] if len(parts) > 1 else None
        view = parts[2] if len(parts) > 2 else None
        return head, job_id, view

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server's contract
        head, job_id, view = self._route()
        if head == "health":
            jobs = self.manager.jobs()
            return self._reply(
                200,
                {
                    "ok": True,
                    "jobs": len(jobs),
                    "running": sum(1 for j in jobs if j.state == "running"),
                    "queued": sum(1 for j in jobs if j.state == "queued"),
                },
            )
        if head == "healthz":
            return self._reply(200, {"ok": True, **self._identity()})
        if head == "readyz":
            if self.server.stopping.is_set():  # type: ignore[attr-defined]
                return self._reply(
                    503,
                    {"ready": False, "reason": "shutting down",
                     **self._identity()},
                )
            return self._reply(200, {"ready": True, **self._identity()})
        if head == "metrics":
            return self._metrics()
        if head == "fleet" and job_id == "metrics" and view is None:
            return self._fleet_metrics()
        if head != "jobs":
            return self._error(404, f"no such route: {self.path}")
        if job_id is None:
            return self._reply(200, jobs_to_records(self.manager))
        try:
            job = self.manager.job(job_id)
        except UnknownJobError as exc:
            return self._error(404, str(exc))
        if view is None:
            return self._reply(200, job.as_record())
        if view == "eer":
            if not job.finished:
                return self._error(409, f"{job_id} is still {job.state}")
            eer_text = job.eer_text  # a restored job's archived rendering
            if job.result is not None and job.result.eer is not None:
                from repro.eer.render import render_text

                eer_text = render_text(job.result.eer)
            if job.state != "done" or eer_text is None:
                return self._error(409, f"{job_id} finished {job.state} without an EER schema")
            return self._reply(200, {"id": job_id, "eer": eer_text})
        if view == "events":
            return self._stream_events(job)
        return self._error(404, f"no such job view: {view}")

    def _identity(self) -> Dict[str, Any]:
        """Version + uptime: who this instance is, for probes and fleets."""
        started = getattr(self.server, "started", None)
        uptime = round(time.time() - started, 3) if started else 0.0
        return {"version": __version__, "uptime_seconds": uptime}

    def _metrics(self) -> None:
        text = render_metrics(
            self.manager,
            streams_active=self.server.active_streams,  # type: ignore[attr-defined]
            started=getattr(self.server, "started", None),
        )
        self._reply_text(text)

    def _fleet_metrics(self) -> None:
        """The federated exposition: this instance merged with its peers.

        Peers are scraped live at ``/metrics`` (never ``/fleet/metrics``,
        so two servers peered at each other cannot recurse); this
        instance's exposition is rendered in-process.  An unreachable
        peer degrades to a ``repro_fleet_peer_up 0`` sample rather than
        failing the scrape.
        """
        from repro.service.fleet import federate_with_self

        self_text = render_metrics(
            self.manager,
            streams_active=self.server.active_streams,  # type: ignore[attr-defined]
            started=getattr(self.server, "started", None),
        )
        host, port = self.server.server_address[:2]  # type: ignore[misc]
        text = federate_with_self(
            self_text,
            f"{host}:{port}",
            getattr(self.server, "peers", ()) or (),
        )
        self._reply_text(text)

    def _reply_text(self, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", METRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- the SSE stream ------------------------------------------------
    def _stream_events(self, job: Job) -> None:
        """Serve one job's live stream until its end sentinel (or drain)."""
        raw_resume = self.headers.get("Last-Event-ID")
        try:
            cursor = int(raw_resume) if raw_resume is not None else 0
        except ValueError:
            return self._error(400, f"Last-Event-ID must be an integer, got {raw_resume!r}")
        self.send_response(200)
        self.send_header("Content-Type", SSE_CONTENT_TYPE)
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()

        bus = job.live
        if bus is None:
            # a restored job's stream lives in the archive: replay it
            # from disk (honouring Last-Event-ID) and make sure an end
            # sentinel closes the stream even if the capture lacks one
            replay = self.manager.replay_records(job)
            if replay:
                last_seq = 0
                ended = False
                for record in replay:
                    seq = record.get("seq", 0) or 0
                    last_seq = max(last_seq, seq)
                    if seq <= cursor:
                        continue
                    if not self._write_frame(format_event(record)):
                        return
                    if record.get("type") == "end":
                        ended = True
                if not ended:
                    self._write_frame(format_event({
                        "type": "end", "seq": last_seq + 1, "ts_ms": 0.0,
                        "job": job.id, "state": job.state, "archived": True,
                    }))
                return
            # a cache-hit job never ran: there is no stream, only the end
            self._write_frame(format_event({
                "type": "end", "seq": 0, "ts_ms": 0.0,
                "job": job.id, "state": job.state, "cached": job.cached,
            }))
            return

        stopping = self.server.stopping  # type: ignore[attr-defined]
        heartbeat = self.server.heartbeat  # type: ignore[attr-defined]
        subscription = None
        self.server.stream_opened()  # type: ignore[attr-defined]
        try:
            # the backlog pages straight from the bus history — never
            # through the bounded subscriber queue, so a replay longer
            # than the queue (or a finished job's whole stream) arrives
            # complete, end sentinel included
            cursor, alive, ended = self._page_history(bus, cursor)
            if not alive or ended:
                return
            # tail live from exactly where the paging stopped; records
            # published in between are pre-filled by subscribe itself
            subscription = bus.subscribe(
                maxsize=self.server.stream_queue,  # type: ignore[attr-defined]
                replay_from=cursor,
            )
            last_write = time.monotonic()
            while True:
                if stopping.is_set():
                    # the graceful-shutdown drain: tell the watcher the
                    # stream is over even though the job may not be
                    self._write_frame(format_event({
                        "type": "end", "seq": bus.last_seq, "ts_ms": 0.0,
                        "job": job.id, "state": job.state,
                        "reason": "server shutting down",
                    }))
                    return
                record = subscription.get(timeout=min(heartbeat, _STREAM_TICK))
                if record is None:
                    if bus.last_seq > cursor:
                        # the queue ran dry but the bus is ahead: records
                        # (possibly the end sentinel itself) were dropped
                        # on the full queue — re-sync from history
                        cursor, alive, ended = self._page_history(bus, cursor)
                        if not alive or ended:
                            return
                        last_write = time.monotonic()
                    elif time.monotonic() - last_write >= heartbeat:
                        if not self._write_frame(format_comment()):
                            return
                        last_write = time.monotonic()
                    continue
                seq = record.get("seq", 0)
                if seq <= cursor:
                    # already delivered by a history refill
                    continue
                if seq > cursor + 1:
                    # the queue dropped records mid-tail: refill the gap
                    # (this record included) from history, in seq order
                    cursor, alive, ended = self._page_history(bus, cursor)
                    if not alive or ended:
                        return
                    last_write = time.monotonic()
                    continue
                if not self._write_frame(format_event(record)):
                    return
                cursor = seq
                last_write = time.monotonic()
                if record.get("type") == "end":
                    return
        finally:
            if subscription is not None:
                subscription.close()
            self.server.stream_closed()  # type: ignore[attr-defined]

    def _page_history(self, bus: Any, cursor: int) -> Tuple[int, bool, bool]:
        """Write every retained history record past *cursor* to the client.

        Re-queries the bus until a page comes back empty, so records
        published while earlier pages were being written are included.
        Returns ``(cursor, client alive, end sentinel written)``.
        """
        while True:
            page = bus.history(since=cursor)
            if not page:
                return cursor, True, False
            for record in page:
                if not self._write_frame(format_event(record)):
                    return cursor, False, False
                cursor = record["seq"]
                if record.get("type") == "end":
                    return cursor, True, True

    def _write_frame(self, frame: bytes) -> bool:
        """One SSE frame to the client; False when the client is gone."""
        try:
            self.wfile.write(frame)
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False

    def do_POST(self) -> None:  # noqa: N802
        head, job_id, _view = self._route()
        if head != "jobs" or job_id is not None:
            return self._error(404, f"no such route: {self.path}")
        length = int(self.headers.get("Content-Length") or 0)
        try:
            spec = json.loads(self.rfile.read(length).decode("utf-8") or "{}")
        except json.JSONDecodeError as exc:
            return self._error(400, f"request body is not JSON: {exc.msg}")
        from repro.service.specs import submit_spec

        try:
            job = submit_spec(self.manager, spec)
        except (ValueError, OSError) as exc:
            return self._error(400, str(exc))
        except Exception as exc:  # a bad database/corpus must not kill the server
            return self._error(400, f"{type(exc).__name__}: {exc}")
        self._reply(201, job.as_record())

    def do_DELETE(self) -> None:  # noqa: N802
        head, job_id, view = self._route()
        if head != "jobs" or job_id is None or view is not None:
            return self._error(404, f"no such route: {self.path}")
        try:
            cancelled = self.manager.cancel(job_id)
        except UnknownJobError as exc:
            return self._error(404, str(exc))
        self._reply(200, {"id": job_id, "cancelled": cancelled})


class _ServiceServer(ThreadingHTTPServer):
    """The HTTP server plus the service's shared shutdown/stream state."""

    daemon_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: set once shutdown begins; SSE loops drain, ``/readyz`` flips 503
        self.stopping = threading.Event()
        self.heartbeat = DEFAULT_HEARTBEAT
        self.stream_queue = DEFAULT_QUEUE_SIZE
        self.started = time.time()
        #: peer ``/metrics`` URLs, federated by ``GET /fleet/metrics``
        self.peers: Tuple[str, ...] = ()
        self._streams_lock = threading.Lock()
        self.active_streams = 0

    def stream_opened(self) -> None:
        with self._streams_lock:
            self.active_streams += 1

    def stream_closed(self) -> None:
        with self._streams_lock:
            self.active_streams -= 1


def build_server(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    heartbeat: float = DEFAULT_HEARTBEAT,
    stream_queue: int = DEFAULT_QUEUE_SIZE,
    peers: Sequence[str] = (),
) -> _ServiceServer:
    """A ready-to-serve HTTP server bound to *manager* (port 0 = ephemeral).

    *heartbeat* is the idle-stream comment cadence in seconds (the SSE
    tests shrink it to assert cadence without waiting); *stream_queue*
    is each SSE watcher's live-tail queue bound (the tests shrink it to
    force drops and assert the history re-sync); *peers* are other
    instances' ``/metrics`` URLs, federated by ``GET /fleet/metrics``.
    """
    server = _ServiceServer((host, port), _JobsHandler)
    server.manager = manager  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.heartbeat = heartbeat
    server.stream_queue = max(1, stream_queue)
    server.peers = tuple(peers)
    return server


def serve(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8750,
    verbose: bool = True,
    heartbeat: float = DEFAULT_HEARTBEAT,
    peers: Sequence[str] = (),
) -> None:
    """Serve until interrupted (the ``repro serve`` loop).

    SIGINT and SIGTERM both trigger the graceful path: the readiness
    probe flips, queued jobs are cancelled, connected SSE watchers get
    the end sentinel, and the function returns normally (exit 0).
    """
    server = build_server(
        manager, host=host, port=port, verbose=verbose, heartbeat=heartbeat,
        peers=peers,
    )
    address = f"http://{server.server_address[0]}:{server.server_address[1]}"
    print(f"repro service listening on {address} (Ctrl-C to stop)", flush=True)
    log.info("service listening", extra={"data": {"address": address}})

    def _begin_shutdown(signum: int, _frame: Any) -> None:
        if server.stopping.is_set():
            return
        server.stopping.set()
        log.info("shutdown signal", extra={"data": {"signal": signum}})
        # serve_forever runs on this thread: shutdown() must be called
        # from another one or it deadlocks waiting for the loop to stop
        threading.Thread(target=server.shutdown, daemon=True).start()

    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            installed.append((signum, signal.signal(signum, _begin_shutdown)))
        except ValueError:  # not the main thread (embedded use): skip
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # handlers not installed: fall through
        server.stopping.set()
    finally:
        server.stopping.set()
        print("shutting down", flush=True)
        # cancel queued jobs first (their end sentinels reach watchers),
        # then give connected streams a bounded window to drain
        manager.shutdown()
        deadline = time.monotonic() + _DRAIN_TIMEOUT
        while server.active_streams > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        server.server_close()
        for signum, previous in installed:
            try:
                signal.signal(signum, previous)
            except ValueError:
                pass
        log.info("service stopped")
