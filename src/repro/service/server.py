"""``repro serve``: the job manager behind a local HTTP JSON API.

Stdlib only (:class:`http.server.ThreadingHTTPServer`), so the service
runs anywhere the library does.  Routes:

- ``POST /jobs`` — submit a job spec (:mod:`repro.service.specs`
  document as the request body); answers ``201`` with the job record.
- ``GET /jobs`` — the full ledger, shaped exactly like the
  ``repro/jobs@1`` export (header record + one record per job).
- ``GET /jobs/<id>`` — one job's record (state, timings, summary).
- ``GET /jobs/<id>/eer`` — a finished job's rendered EER schema
  (``409`` while the job is still queued/running).
- ``DELETE /jobs/<id>`` — cancel; answers whether it took effect.
- ``GET /health`` — liveness + job counts.

Errors are JSON too: ``{"error": ...}`` with a 4xx status.  The server
binds localhost by default — it is a workstation/CI service, not an
internet-facing one.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import UnknownJobError
from repro.service.export import jobs_to_records
from repro.service.jobs import JobManager

__all__ = ["build_server", "serve"]


class _JobsHandler(BaseHTTPRequestHandler):
    """One request; the manager hangs off the server object."""

    server_version = "repro-serve/1"

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, document: Any) -> None:
        body = json.dumps(document, sort_keys=True, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _route(self) -> Tuple[str, Optional[str], Optional[str]]:
        """Split ``/jobs/<id>/<view>`` into its three parts."""
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        head = parts[0] if parts else ""
        job_id = parts[1] if len(parts) > 1 else None
        view = parts[2] if len(parts) > 2 else None
        return head, job_id, view

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server's contract
        head, job_id, view = self._route()
        if head == "health":
            jobs = self.manager.jobs()
            return self._reply(
                200,
                {
                    "ok": True,
                    "jobs": len(jobs),
                    "running": sum(1 for j in jobs if j.state == "running"),
                    "queued": sum(1 for j in jobs if j.state == "queued"),
                },
            )
        if head != "jobs":
            return self._error(404, f"no such route: {self.path}")
        if job_id is None:
            return self._reply(200, jobs_to_records(self.manager))
        try:
            job = self.manager.job(job_id)
        except UnknownJobError as exc:
            return self._error(404, str(exc))
        if view is None:
            return self._reply(200, job.as_record())
        if view == "eer":
            if not job.finished:
                return self._error(409, f"{job_id} is still {job.state}")
            if job.state != "done" or job.result is None or job.result.eer is None:
                return self._error(409, f"{job_id} finished {job.state} without an EER schema")
            from repro.eer.render import render_text

            return self._reply(200, {"id": job_id, "eer": render_text(job.result.eer)})
        return self._error(404, f"no such job view: {view}")

    def do_POST(self) -> None:  # noqa: N802
        head, job_id, _view = self._route()
        if head != "jobs" or job_id is not None:
            return self._error(404, f"no such route: {self.path}")
        length = int(self.headers.get("Content-Length") or 0)
        try:
            spec = json.loads(self.rfile.read(length).decode("utf-8") or "{}")
        except json.JSONDecodeError as exc:
            return self._error(400, f"request body is not JSON: {exc.msg}")
        from repro.service.specs import submit_spec

        try:
            job = submit_spec(self.manager, spec)
        except (ValueError, OSError) as exc:
            return self._error(400, str(exc))
        except Exception as exc:  # a bad database/corpus must not kill the server
            return self._error(400, f"{type(exc).__name__}: {exc}")
        self._reply(201, job.as_record())

    def do_DELETE(self) -> None:  # noqa: N802
        head, job_id, view = self._route()
        if head != "jobs" or job_id is None or view is not None:
            return self._error(404, f"no such route: {self.path}")
        try:
            cancelled = self.manager.cancel(job_id)
        except UnknownJobError as exc:
            return self._error(404, str(exc))
        self._reply(200, {"id": job_id, "cancelled": cancelled})


def build_server(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to *manager* (port 0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), _JobsHandler)
    server.manager = manager  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8750,
    verbose: bool = True,
) -> None:
    """Serve until interrupted (the ``repro serve`` loop)."""
    server = build_server(manager, host=host, port=port, verbose=verbose)
    address = f"http://{server.server_address[0]}:{server.server_address[1]}"
    print(f"repro service listening on {address} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        manager.shutdown()
