"""Job specs: the JSON documents ``repro jobs`` and the HTTP API carry.

A spec describes one discovery run declaratively, so a submission can
travel as plain JSON (a file handed to ``repro jobs run``, or a POST
body to ``repro serve``):

.. code-block:: json

    {"demo": true,
     "config": {"engine": "process", "engine_workers": 2}}

    {"database": "legacy.db",
     "programs": "programs/",
     "backend": "auto",
     "config": {"engine": "batched", "translate": true}}

Exactly one of ``demo`` or ``database`` must be present; ``database``
specs also need ``programs`` (the corpus directory).  ``config`` takes
the pipeline knobs (``engine``, ``engine_workers``, ``engine_options``,
``translate``) plus the AutoExpert thresholds (``force_threshold``,
``conceptualize_hidden``); the demo runs under the paper's scripted
expert, so its output matches ``repro demo`` exactly.

Imports from :mod:`repro.cli` happen at call time: the CLI imports this
package for its verbs, so module-scope imports would cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

__all__ = ["submit_spec"]

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.jobs import Job, JobManager

#: spec keys the loader understands; anything else is a spelling mistake
#: worth failing loudly on
_SPEC_KEYS = {
    "demo",
    "database",
    "programs",
    "backend",
    "pool_pages",
    "page_size",
    "label",
    "config",
}


def submit_spec(manager: "JobManager", spec: Dict[str, Any]) -> "Job":
    """Submit one JSON job spec to *manager*; returns the queued job."""
    if not isinstance(spec, dict):
        raise ValueError(f"a job spec must be a JSON object, got {type(spec).__name__}")
    unknown = sorted(set(spec) - _SPEC_KEYS)
    if unknown:
        raise ValueError(f"unknown job-spec key(s): {', '.join(unknown)}")
    if bool(spec.get("demo")) == ("database" in spec):
        raise ValueError("a job spec needs exactly one of demo=true or database=")
    config = dict(spec.get("config") or {})

    if spec.get("demo"):
        from repro.core.expert import ScriptedExpert
        from repro.workloads.paper_example import (
            build_paper_database,
            paper_expert_script,
            paper_program_corpus,
        )

        config.setdefault("expert", ScriptedExpert(paper_expert_script()))
        return manager.submit(
            build_paper_database(),
            corpus=paper_program_corpus(),
            config=config,
            label=spec.get("label", "demo"),
        )

    if "programs" not in spec:
        raise ValueError("a database job spec needs programs= (the corpus directory)")
    from repro.cli import load_corpus, load_database
    from repro.core.expert import AutoExpert

    database = load_database(
        spec["database"],
        backend=spec.get("backend", "auto"),
        pool_pages=int(spec.get("pool_pages", 0) or 0),
        page_size=int(spec.get("page_size", 0) or 0),
    )
    corpus = load_corpus(spec["programs"])
    config.setdefault(
        "expert",
        AutoExpert(
            force_threshold=float(config.pop("force_threshold", 0.95)),
            conceptualize_hidden=bool(config.pop("conceptualize_hidden", False)),
        ),
    )
    return manager.submit(
        database,
        corpus=corpus,
        config=config,
        label=spec.get("label", spec["database"]),
    )
