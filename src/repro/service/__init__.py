"""The service layer: process-parallel probe execution and multi-job runs.

This package is the step from "tool" to "system".  It has two floors:

- :mod:`repro.service.pool` — a **process-parallel probe executor**.
  The batched engine (:mod:`repro.engine`) already expresses all
  counting work as declarative probes; the pool partitions planned
  probe batches across worker *processes*, each of which opens its own
  extension backend through the registry (its own SQLite connection,
  memory partition, or paged file set) and answers its share with the
  best local strategy.  The parent merges results and telemetry back
  into its own :class:`~repro.obs.tracer.Tracer` stream
  deterministically, and survives worker crashes, hung batches and
  transient errors with bounded retries before falling back to the
  serial path.  ``DBREPipeline(..., engine="process")`` (CLI:
  ``--engine process``) routes discovery through it.

- :mod:`repro.service.jobs` — a **long-running multi-job discovery
  manager**: submit / status / result / cancel over queued
  reverse-engineering runs, with a results cache keyed by (database
  fingerprint, workload hash, config) that serves repeat queries
  without re-running discovery.  :mod:`repro.service.server` exposes
  the manager as a local HTTP JSON API (``repro serve``);
  :mod:`repro.service.export` writes the job ledger as a
  ``repro/jobs@1`` JSONL export; :mod:`repro.service.specs` maps JSON
  job specs (what ``repro jobs`` files and the HTTP API carry) to
  submissions.

The differential suite (``tests/engine/test_process_differential.py``)
proves the process strategy produces bit-identical pipeline output vs
the serial path on every backend; ``tests/service`` covers the pool's
failure handling and the job lifecycle.  See ``docs/SERVICE.md``.
"""

from repro.service.export import (
    JOBS_FORMAT,
    jobs_to_records,
    read_jobs_jsonl,
    write_jobs_jsonl,
)
from repro.service.jobs import (
    JOB_STATES,
    Job,
    JobManager,
    database_fingerprint,
    workload_fingerprint,
)
from repro.service.metrics import (
    METRICS_CONTENT_TYPE,
    lint_exposition,
    render_metrics,
)
from repro.service.pool import (
    DEFAULT_BATCH_TIMEOUT,
    DEFAULT_MAX_RETRIES,
    PoolStats,
    ProcessProbeExecutor,
    worker_payload,
)
from repro.service.stream import (
    DEFAULT_HEARTBEAT,
    SSE_CONTENT_TYPE,
    format_comment,
    format_event,
    parse_sse,
    sse_events,
)

__all__ = [
    "DEFAULT_BATCH_TIMEOUT",
    "DEFAULT_HEARTBEAT",
    "DEFAULT_MAX_RETRIES",
    "JOBS_FORMAT",
    "JOB_STATES",
    "Job",
    "JobManager",
    "METRICS_CONTENT_TYPE",
    "PoolStats",
    "ProcessProbeExecutor",
    "SSE_CONTENT_TYPE",
    "database_fingerprint",
    "format_comment",
    "format_event",
    "jobs_to_records",
    "lint_exposition",
    "parse_sse",
    "read_jobs_jsonl",
    "render_metrics",
    "sse_events",
    "worker_payload",
    "workload_fingerprint",
    "write_jobs_jsonl",
]
