"""Server-Sent Events plumbing for the live job stream.

``GET /jobs/<id>/events`` speaks plain SSE (one ``text/event-stream``
response, records framed as ``id:``/``event:``/``data:`` blocks), so
any EventSource client — a browser, ``curl -N``, the ``repro jobs
watch`` CLI — can tail a run.  This module holds the protocol pieces
both sides share:

- :func:`format_event` / :func:`format_comment` — one ``repro/live@1``
  record (or a heartbeat comment) as SSE wire bytes.  The record's
  ``seq`` becomes the SSE event id, so a reconnecting client can resume
  exactly where it dropped off via the standard ``Last-Event-ID``
  header;
- :func:`parse_sse` — the inverse: an iterator of wire lines back into
  ``(event, id, data)`` blocks;
- :func:`sse_events` — a small stdlib client (``urllib``) that connects
  to an events URL and yields decoded ``repro/live@1`` records until
  the stream ends.  Heartbeat comments are skipped; the caller sees the
  ``end`` sentinel and stops.

The wire records *are* the ``repro/live@1`` dicts — capturing a stream
with ``sse_events`` and writing it through
:func:`repro.obs.live.write_live_jsonl` produces a valid export, which
is exactly what ``scripts/validate_exports.py`` does in CI.
"""

from __future__ import annotations

import json
import urllib.request
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

__all__ = [
    "SSE_CONTENT_TYPE",
    "DEFAULT_HEARTBEAT",
    "format_comment",
    "format_event",
    "parse_sse",
    "sse_events",
]

#: the media type an SSE response must carry
SSE_CONTENT_TYPE = "text/event-stream"

#: seconds between heartbeat comments while a stream is idle
DEFAULT_HEARTBEAT = 15.0


def format_event(record: Dict[str, Any]) -> bytes:
    """One ``repro/live@1`` record as an SSE block.

    The record's ``seq`` is exposed as the SSE event id (the resume
    cursor), its ``type`` as the SSE event name, and the whole record —
    one line of JSON — as the data payload.
    """
    lines = []
    seq = record.get("seq")
    if seq is not None:
        lines.append(f"id: {seq}")
    lines.append(f"event: {record.get('type', 'message')}")
    lines.append("data: " + json.dumps(record, sort_keys=True, default=str))
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def format_comment(text: str = "heartbeat") -> bytes:
    """An SSE comment block (clients ignore it; proxies stay awake)."""
    return f": {text}\n\n".encode("utf-8")


def parse_sse(
    lines: Iterable[str],
) -> Iterator[Tuple[str, Optional[str], str]]:
    """Decode SSE wire *lines* into ``(event, id, data)`` blocks.

    *lines* may carry their trailing newlines (``iter(response)``
    style) or not; blank lines delimit blocks, comment lines (leading
    ``:``) are dropped.  Multi-line ``data:`` fields are joined with
    newlines per the SSE spec.
    """
    event, event_id, data = "message", None, []
    for raw in lines:
        line = raw.rstrip("\r\n")
        if not line:
            if data:
                yield event, event_id, "\n".join(data)
            event, data = "message", []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event = value
        elif field == "id":
            event_id = value
        elif field == "data":
            data.append(value)
    if data:  # a final block unterminated by a blank line
        yield event, event_id, "\n".join(data)


def sse_events(
    url: str,
    last_event_id: Optional[int] = None,
    timeout: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Connect to an SSE endpoint and yield ``repro/live@1`` records.

    Sends ``Last-Event-ID`` when *last_event_id* is given (resume after
    a drop).  Yields each decoded record dict; the generator ends when
    the server closes the stream — after the ``end`` sentinel, or at
    shutdown drain.  Closing the generator closes the connection.
    """
    request = urllib.request.Request(url, headers={"Accept": SSE_CONTENT_TYPE})
    if last_event_id is not None:
        request.add_header("Last-Event-ID", str(last_event_id))
    response = urllib.request.urlopen(request, timeout=timeout)
    try:
        lines = (raw.decode("utf-8") for raw in response)
        for _event, _event_id, data in parse_sse(lines):
            try:
                record = json.loads(data)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record
    finally:
        response.close()
