"""The multi-job discovery manager: queued reverse-engineering runs.

One long-running process serves many discovery requests: callers
:meth:`~JobManager.submit` a (database, workload, config) triple and get
a :class:`Job` back immediately; runner threads drain the queue through
:class:`~repro.core.pipeline.DBREPipeline`; callers poll
:meth:`~JobManager.status` or block on :meth:`~JobManager.result`, and
may :meth:`~JobManager.cancel` a job while it is queued (it never runs)
or mid-run (the pipeline's ``cancel`` hook unwinds it between phases
with :class:`~repro.exceptions.RunCancelled`).

Repeat queries are served from a **results cache** keyed by

    (database fingerprint, workload fingerprint, config token)

— content hashes, not object identities, so resubmitting the same
database and programs returns the finished result without re-running
discovery, while touching a single row changes the database fingerprint
and forces a fresh run.  The cache is consulted twice — at submission
and again when a runner dequeues the job, so a burst of duplicate
submissions still collapses to one run.  A cached :class:`Job` is a
real ledger entry (state ``done``, ``cached`` flag set) pointing at the
original result, so the ``repro/jobs@1`` export shows cache hits
explicitly.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import RunCancelled, UnknownJobError
from repro.obs.live import LiveStats
from repro.obs.log import get_logger, log_context
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import PipelineResult
    from repro.obs.archive import RunArchive
    from repro.obs.live import LiveBus
    from repro.programs.corpus import ProgramCorpus
    from repro.programs.equijoin import EquiJoin
    from repro.relational.database import Database

log = get_logger("jobs")

__all__ = [
    "JOB_STATES",
    "Job",
    "JobManager",
    "database_fingerprint",
    "workload_fingerprint",
]

#: every state a job can be in, in lifecycle order
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: config keys the ledger records surface (the run-shaping knobs)
_CONFIG_KEYS = ("engine", "engine_workers", "translate")


def database_fingerprint(database: "Database") -> str:
    """A content hash of schema + extension (the cache key's first leg).

    Hashes the ``repro/schema@1`` document and every relation's rows in
    insertion order, so any schema edit or data change — including a
    single value — produces a different fingerprint.
    """
    from repro.relational.domain import is_null
    from repro.storage.serialize import schema_to_dict

    digest = hashlib.sha256()
    digest.update(
        json.dumps(schema_to_dict(database.schema), sort_keys=True).encode("utf-8")
    )
    for name in database.schema.relation_names:
        digest.update(name.encode("utf-8"))
        for row in database.backend.rows(name):
            values = [None if is_null(value) else value for value in row]
            digest.update(repr(values).encode("utf-8"))
    return digest.hexdigest()


def workload_fingerprint(
    corpus: Optional["ProgramCorpus"] = None,
    equijoins: Optional[Sequence["EquiJoin"]] = None,
) -> str:
    """A content hash of the workload (programs or a precomputed ``Q``)."""
    digest = hashlib.sha256()
    if corpus is not None:
        for program in corpus:  # the corpus iterates name-sorted
            digest.update(program.name.encode("utf-8"))
            digest.update(program.language.encode("utf-8"))
            digest.update(program.source.encode("utf-8"))
    if equijoins:
        for join in sorted(set(equijoins), key=lambda j: j.sort_key()):
            digest.update(repr(join).encode("utf-8"))
    return digest.hexdigest()


def _config_token(config: Dict[str, Any]) -> str:
    """The cache key's third leg: the run-affecting config, canonicalized.

    Every JSON-representable config value participates — engine choice,
    worker counts, expert thresholds — so two runs that could answer
    differently never share a cache slot.  Live objects a caller tucks
    into the config (an ``expert`` instance) are not representable and
    are left out.
    """
    relevant = {}
    for key, value in config.items():
        try:
            json.dumps(value)
        except TypeError:
            continue
        relevant[key] = value
    return json.dumps(relevant, sort_keys=True)


@dataclass
class Job:
    """One submitted discovery run and its whole lifecycle."""

    id: str
    label: str
    state: str = "queued"
    cached: bool = False
    error: str = ""
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    config: Dict[str, Any] = field(default_factory=dict)
    #: the results-cache key (database fp, workload fp, config token)
    key: Tuple[str, str, str] = ("", "", "")
    result: Optional["PipelineResult"] = None
    #: the run's tracer (attached at submission for fresh runs, so the
    #: live bus history is complete from the first span); None for
    #: cache-hit jobs, which never run, and for restored jobs, whose
    #: stream lives in the archive
    trace: Optional[Tracer] = field(default=None, repr=False)
    #: the archive content key, for jobs restored from (or answered out
    #: of) a ``repro/archive@1`` directory; their artifacts are on disk
    archived: Optional[str] = None
    #: the result summary of a restored job (its in-process
    #: :class:`PipelineResult` did not survive the original process)
    summary: Optional[Dict[str, Any]] = field(default=None, repr=False)
    #: the rendered EER text of a restored job, when archived
    eer_text: Optional[str] = field(default=None, repr=False)
    # inputs, held until the run consumes them
    database: Optional["Database"] = field(default=None, repr=False)
    corpus: Optional["ProgramCorpus"] = field(default=None, repr=False)
    equijoins: Optional[List["EquiJoin"]] = field(default=None, repr=False)
    _cancel: threading.Event = field(default_factory=threading.Event, repr=False)
    _finished: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def finished(self) -> bool:
        """Is the job in a terminal state?"""
        return self.state in ("done", "failed", "cancelled")

    @property
    def live(self) -> Optional["LiveBus"]:
        """The job's live event bus, when the job has a tracer."""
        return self.trace.live_bus if self.trace is not None else None

    def as_record(self) -> Dict[str, Any]:
        """The job's ``repro/jobs@1`` ledger record (JSON-ready)."""
        record: Dict[str, Any] = {
            "type": "job",
            "id": self.id,
            "label": self.label,
            "state": self.state,
            "cached": self.cached,
            "database_fingerprint": self.key[0],
            "workload_fingerprint": self.key[1],
            "config": {key: self.config.get(key) for key in _CONFIG_KEYS},
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error:
            record["error"] = self.error
        if self.archived:
            record["archived"] = True
        if self.state == "done" and self.result is not None:
            record["summary"] = {
                "equijoins": len(self.result.equijoins),
                "inds": len(self.result.inds),
                "fds": len(self.result.fds),
                "hidden": len(self.result.hidden),
                "ric": len(self.result.ric),
                "queries": self.result.extension_queries,
                "decisions": self.result.expert_decisions,
            }
        elif self.state == "done" and self.summary is not None:
            # a restored (or restored-cache-hit) job: the summary was
            # computed by the process that ran it and archived with it
            record["summary"] = dict(self.summary)
        return record


class JobManager:
    """Submit / status / result / cancel over queued discovery runs.

    *runners* threads drain the queue; each run gets a fresh
    :class:`~repro.core.pipeline.DBREPipeline` built from the job's
    config (``engine``, ``engine_workers``, ``engine_options``,
    ``translate``), so one manager can serve serial, batched and
    process-parallel jobs side by side.  Thread-safe; close with
    :meth:`shutdown` (or use as a context manager).

    *keep_finished* bounds the ledger on a long-lived service: once more
    than that many jobs sit in a terminal state, the oldest finished
    ones are evicted — their telemetry totals are folded into
    :meth:`evicted` (so ``/metrics`` counters stay monotonic), any
    results-cache entry pointing at them is purged (a resubmission of
    that key simply re-runs), and their ids stop resolving.  ``None``
    (the default) keeps every job forever, the pre-eviction behaviour.

    *archive* makes the manager durable: every fresh run that reaches
    ``done`` or ``failed`` is written through to the
    :class:`~repro.obs.archive.RunArchive` (trace, metrics, live
    capture, provenance when kept, ledger record), and at construction
    the manager **restores** the archive's runs into its ledger — their
    ids resolve again, their ``done`` entries re-seed the results cache
    (a repeat submission is a cache hit answered by a process that no
    longer exists), their live streams replay from disk, and their
    telemetry totals fold into the ``/metrics`` counters.
    """

    def __init__(
        self,
        runners: int = 1,
        keep_finished: Optional[int] = None,
        archive: Optional["RunArchive"] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: deque = deque()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._cache: Dict[Tuple[str, str, str], str] = {}
        self._ids = itertools.count(1)
        self._keep_finished = (
            max(0, keep_finished) if keep_finished is not None else None
        )
        self._evicted_jobs = 0
        self._evicted_cached = 0
        self._evicted_dropped = 0
        self._evicted_stats = LiveStats()
        self._archive = archive
        self._restored_jobs = 0
        self._restored_stats = LiveStats()
        self._stopping = False
        if archive is not None:
            with self._wakeup:
                self._restore(archive)
        self._runners = [
            threading.Thread(target=self._runner_loop, daemon=True, name=f"repro-runner-{i}")
            for i in range(max(1, runners))
        ]
        for thread in self._runners:
            thread.start()

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; cancel queued jobs; join the runners."""
        with self._wakeup:
            if self._stopping:
                return
            self._stopping = True
            while self._queue:
                job = self._queue.popleft()
                self._finish(job, "cancelled", error="manager shut down")
            self._wakeup.notify_all()
        if wait:
            for thread in self._runners:
                thread.join(timeout=5.0)

    # -- the public API ------------------------------------------------
    def submit(
        self,
        database: "Database",
        corpus: Optional["ProgramCorpus"] = None,
        equijoins: Optional[Sequence["EquiJoin"]] = None,
        config: Optional[Dict[str, Any]] = None,
        label: str = "",
    ) -> Job:
        """Queue one discovery run; serve repeats from the results cache.

        Exactly one of *corpus* or *equijoins* must be given (the
        pipeline's own contract).  Returns the :class:`Job` immediately;
        a cache hit comes back already ``done`` with ``cached`` set.
        """
        if (corpus is None) == (equijoins is None):
            raise ValueError("provide exactly one of corpus= or equijoins=")
        config = dict(config or {})
        key = (
            database_fingerprint(database),
            workload_fingerprint(corpus, equijoins),
            _config_token(config),
        )
        with self._wakeup:
            if self._stopping:
                raise RuntimeError("the job manager is shut down")
            job_id = f"job-{next(self._ids)}"
            job = Job(
                id=job_id,
                label=label or job_id,
                submitted_at=time.time(),
                config=config,
                key=key,
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
            source_id = self._cache.get(key)
            source = self._jobs.get(source_id) if source_id else None
            if source is not None and source.state == "done":
                job.cached = True
                job.result = source.result
                # a restored source has no in-process result; its
                # archived summary and EER text stand in for it
                job.summary = source.summary
                job.eer_text = source.eer_text
                self._finish(job, "done")
                return job
            job.database = database
            job.corpus = corpus
            job.equijoins = list(equijoins) if equijoins is not None else None
            # attach the live bus now, not at run start: a watcher that
            # subscribes while the job is still queued misses nothing
            job.trace = Tracer()
            job.trace.live()
            self._queue.append(job)
            self._wakeup.notify()
            return job

    def job(self, job_id: str) -> Job:
        """The job named *job_id* (raises :class:`UnknownJobError`)."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def jobs(self) -> List[Job]:
        """Every job ever submitted, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def status(self, job_id: str) -> Dict[str, Any]:
        """The ledger record of one job (state, timings, summary)."""
        return self.job(job_id).as_record()

    def result(self, job_id: str, timeout: Optional[float] = None) -> "PipelineResult":
        """Block until *job_id* finishes and return its pipeline result.

        Raises :class:`TimeoutError` if the job is still unfinished
        after *timeout* seconds, :class:`RunCancelled` for a cancelled
        job, and :class:`RuntimeError` carrying the original error
        message for a failed one.
        """
        job = self.job(job_id)
        if not job._finished.wait(timeout):
            raise TimeoutError(f"{job_id} still {job.state} after {timeout}s")
        if job.state == "cancelled":
            raise RunCancelled(f"{job_id} was cancelled")
        if job.state == "failed":
            raise RuntimeError(f"{job_id} failed: {job.error}")
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel *job_id*; True if the cancellation took effect.

        A queued job flips straight to ``cancelled`` and never runs; a
        running job has its cancel flag raised and unwinds at the next
        phase boundary.  Cancelling a finished job is a no-op (False).
        """
        with self._wakeup:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            if job.finished:
                return False
            if job.state == "queued":
                try:
                    self._queue.remove(job)
                except ValueError:  # a runner grabbed it concurrently
                    pass
                else:
                    self._finish(job, "cancelled")
                    return True
            job._cancel.set()
            return True

    # -- the runner side -----------------------------------------------
    def _runner_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._stopping:
                    self._wakeup.wait()
                if self._stopping and not self._queue:
                    return
                job = self._queue.popleft()
                if job._cancel.is_set():
                    self._finish(job, "cancelled")
                    continue
                # second cache look: a twin submitted in the same burst
                # may have finished while this job sat in the queue
                source_id = self._cache.get(job.key)
                source = self._jobs.get(source_id) if source_id else None
                if source is not None and source.state == "done":
                    job.cached = True
                    job.result = source.result
                    job.summary = source.summary
                    job.eer_text = source.eer_text
                    self._finish(job, "done")
                    continue
                job.state = "running"
                job.started_at = time.time()
            self._run(job)

    def _run(self, job: Job) -> None:
        from repro.core.pipeline import DBREPipeline

        config = job.config
        with log_context(job=job.id):
            log.info(
                "job started",
                extra={"data": {"label": job.label,
                                "engine": config.get("engine", "serial")}},
            )
            try:
                pipeline = DBREPipeline(
                    job.database,
                    expert=config.get("expert"),
                    tracer=job.trace,
                    engine=config.get("engine", "serial"),
                    engine_workers=int(config.get("engine_workers", 0) or 0),
                    engine_options=config.get("engine_options"),
                    cancel=job._cancel.is_set,
                )
                result = pipeline.run(
                    corpus=job.corpus,
                    equijoins=job.equijoins,
                    translate=bool(config.get("translate", True)),
                )
            except RunCancelled:
                with self._wakeup:
                    self._finish(job, "cancelled")
                return
            except Exception as exc:
                with self._wakeup:
                    self._finish(job, "failed", error=f"{type(exc).__name__}: {exc}")
                self._archive_store(job)
                return
            with self._wakeup:
                job.result = result
                self._finish(job, "done")
                self._cache[job.key] = job.id
            # write-through happens outside the manager lock (file I/O
            # must not stall submissions) but after the end sentinel,
            # so the archived live capture is complete
            self._archive_store(job)

    # -- the durable archive -------------------------------------------
    def _restore(self, archive: "RunArchive") -> None:
        """Rebuild the ledger and results cache from *archive* (lock held).

        Restored jobs resolve by their original ids, their ``done``
        entries re-seed the results cache, and their telemetry totals
        fold into :meth:`restored` so ``/metrics`` keeps counting work
        a previous process did.  The id counter resumes past the
        highest restored id, so new submissions never collide.
        """
        max_id = 0
        for run in archive.runs():
            record = run.record
            job_id = record.get("id", "")
            job = Job(
                id=job_id,
                label=record.get("label") or job_id,
                state=record.get("state", "done"),
                cached=bool(record.get("cached")),
                error=record.get("error", ""),
                submitted_at=record.get("submitted_at") or 0.0,
                started_at=record.get("started_at"),
                finished_at=record.get("finished_at"),
                config={
                    key: value
                    for key, value in (record.get("config") or {}).items()
                    if value is not None
                },
                key=run.cache_key,
                archived=run.key,
                summary=record.get("summary"),
                eer_text=run.eer,
            )
            job._finished.set()
            if job_id not in self._jobs:
                self._order.append(job_id)
            self._jobs[job_id] = job
            if job.state == "done":
                self._cache[job.key] = job_id
            self._restored_stats.merge(run.stats)
            self._restored_jobs += 1
            suffix = job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                max_id = max(max_id, int(suffix))
        if max_id:
            self._ids = itertools.count(max_id + 1)
        if self._restored_jobs:
            log.info(
                "ledger restored from archive",
                extra={"data": {"jobs": self._restored_jobs,
                                "archive": archive.root}},
            )

    def _archive_store(self, job: Job) -> None:
        """Write one finished fresh run through to the archive.

        Failures are logged, never raised: an unwritable archive
        degrades durability, it must not fail the run that finished.
        """
        if self._archive is None or job.trace is None:
            return
        try:
            from repro.obs.export import metrics_from_records, trace_records
            from repro.obs.live import live_records

            trace = trace_records(job.trace)
            metrics = metrics_from_records(trace)
            bus = job.live
            live = live_records(bus) if bus is not None else None
            stats = bus.stats() if bus is not None else None
            provenance = eer = None
            result = job.result
            if result is not None and result.provenance is not None:
                from repro.obs.provenance import provenance_records

                provenance = provenance_records(result.provenance)
            if result is not None and result.eer is not None:
                from repro.eer.render import render_text

                eer = render_text(result.eer)
            key = self._archive.store(
                job.as_record(),
                job.key,
                trace=trace,
                metrics=metrics,
                live=live,
                provenance=provenance,
                stats=stats,
                eer=eer,
            )
            with self._lock:
                job.archived = key
            log.info(
                "job archived",
                extra={"data": {"job": job.id, "key": key}},
            )
        except Exception as exc:
            log.warning(
                "archive write failed",
                extra={"data": {"job": job.id,
                                "error": f"{type(exc).__name__}: {exc}"}},
            )

    def replay_records(self, job: Job) -> Optional[List[Dict[str, Any]]]:
        """The archived live stream of a restored job, or None.

        Returns the capture's body records (header dropped) for a job
        restored from the archive; fresh jobs stream from their live
        bus instead, and cache-hit jobs never ran at all.
        """
        if self._archive is None or not job.archived or job.trace is not None:
            return None
        records = self._archive.read_artifact(job.archived, "live")
        if not records:
            return None
        return [r for r in records[1:] if isinstance(r, dict)]

    def restored(self) -> Dict[str, Any]:
        """What archive restoration carried into this process.

        ``jobs`` is the restored-run count; ``stats`` is the fold of
        their archived telemetry totals, which ``/metrics`` adds back
        in so counters span server restarts.
        """
        with self._lock:
            return {
                "jobs": self._restored_jobs,
                "stats": self._restored_stats.copy(),
            }

    def evicted(self) -> Dict[str, Any]:
        """What ledger eviction has retired so far.

        ``jobs``/``cached``/``dropped`` are counts; ``stats`` is the
        :class:`~repro.obs.live.LiveStats` fold of every evicted job's
        telemetry totals — ``/metrics`` adds them back in so its
        counters never move backwards when the ledger is bounded.
        """
        with self._lock:
            return {
                "jobs": self._evicted_jobs,
                "cached": self._evicted_cached,
                "dropped": self._evicted_dropped,
                "stats": self._evicted_stats.copy(),
            }

    def _evict_finished(self) -> None:
        """Retire the oldest finished jobs past the cap (lock held)."""
        if self._keep_finished is None:
            return
        finished = [
            job_id for job_id in self._order if self._jobs[job_id].finished
        ]
        excess = len(finished) - self._keep_finished
        for job_id in finished[: max(0, excess)]:
            job = self._jobs.pop(job_id)
            self._order.remove(job_id)
            for key in [k for k, v in self._cache.items() if v == job_id]:
                del self._cache[key]
            bus = job.live
            if bus is not None:
                self._evicted_stats.merge(bus.stats())
                self._evicted_dropped += bus.dropped()
            self._evicted_jobs += 1
            if job.cached:
                self._evicted_cached += 1
            log.info(
                "job evicted",
                extra={"data": {"job": job_id, "state": job.state}},
            )

    def _finish(self, job: Job, state: str, error: str = "") -> None:
        """Move a job to a terminal state (caller holds the lock)."""
        job.state = state
        job.error = error
        job.finished_at = time.time()
        # drop the inputs: a finished job must not pin a whole database
        job.database = None
        job.corpus = None
        job.equijoins = None
        bus = job.live
        if bus is not None:
            # the clean end-of-run sentinel every SSE watcher tails for;
            # the bus lock never takes the manager lock, so publishing
            # under it cannot deadlock
            bus.publish("end", job=job.id, state=state, error=error or None)
        log.info(
            "job finished",
            extra={"data": {"job": job.id, "state": state,
                            "cached": job.cached, "error": error or None}},
        )
        job._finished.set()
        self._evict_finished()
