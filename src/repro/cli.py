"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``inspect``  — load a database and print its dictionary view (schema,
  K, N, statistics);
- ``extract``  — compute the equi-join set ``Q`` from a program
  directory and print it with provenance;
- ``run``      — the full reverse-engineering pipeline; writes the
  session report, the EER diagram and/or the elicited dependencies;
- ``demo``     — the paper's §5-§7 example end to end;
- ``normalize`` — certified 3NF/BCNF synthesis of one schema's
  relations from declared keys plus ``--fd``/``--fds-json``
  dependencies; ``--target-nf {3nf,bcnf}`` picks the algorithm and
  ``--certificate FILE`` writes the machine-checkable
  ``repro/normalization@1`` decomposition certificates
  (``docs/NORMALIZATION.md``);
- ``trace``    — work with recorded traces: ``trace summarize FILE``
  renders the span tree, ``trace diff A B`` compares two traces (or two
  metrics files) and ranks regressions by self-time delta with
  cache-hit-rate deltas as explanations;
- ``profile``  — hotspot attribution of one recorded trace: inclusive
  vs. exclusive time per span, per-phase primitive breakdowns, and
  optional flamegraph exports (``--flame`` collapsed stacks for
  flamegraph.pl, ``--speedscope`` JSON for speedscope.app);
- ``explain``  — print the derivation chain of one artifact from a
  ``--provenance`` export (query evidence, counts, expert answers);
- ``report``   — render a trace + provenance pair as one self-contained
  HTML audit report;
- ``serve``    — the multi-job discovery service: a local HTTP JSON API
  (submit / status / result / cancel) over a queue of runs, with a
  results cache keyed by content fingerprints, live ``/events`` SSE
  streams, a ``/metrics`` Prometheus exposition, ``/healthz`` +
  ``/readyz`` probes, graceful SIGINT/SIGTERM shutdown and
  ``--log-json`` structured logging (``docs/SERVICE.md``);
- ``jobs``     — batch mode of the same job manager: ``jobs run
  SPECS.json`` submits every spec in the file, waits, prints the
  ledger, and optionally writes it as a ``repro/jobs@1`` export;
  ``jobs watch ID`` tails a running service's SSE stream as a live
  per-phase progress view (``--json`` for raw ``repro/live@1``
  records).

``run`` and ``demo`` accept ``--trace FILE`` (JSONL span/event trace),
``--metrics FILE`` (flat metrics summary), ``--provenance FILE`` (the
decision-lineage DAG as JSONL), ``--provenance-dot FILE`` (the same
DAG as Graphviz DOT) and ``--certificates FILE`` (the Restruct
decomposition certificates as ``repro/normalization@1`` JSONL); see
``docs/OBSERVABILITY.md`` for the formats.
They also accept
``--engine {serial,batched,process}``: ``batched`` routes the discovery
phases through the :mod:`repro.engine` planner (dedupe + grouped
execution; identical results and traces — see ``docs/ENGINE.md``),
``process`` additionally shards probe chunks across worker processes
(each with a private backend instance; same results, crash-tolerant),
with ``--engine-workers N`` controlling threads or processes.

The database input is a ``.sql`` script (CREATE TABLE + INSERT,
executed by the built-in engine), a ``.json`` database document
produced by :mod:`repro.storage.serialize`, or a SQLite ``.db`` /
``.sqlite`` / ``.sqlite3`` file — opened live, with the paper's
``K``/``N`` sets read from SQLite's data dictionary and every extension
query pushed down to the engine.  ``--backend`` overrides where the
extension is held for any input kind; the choices come from the backend
registry (:mod:`repro.backends.registry`): ``auto``, ``memory``,
``sqlite``, or ``paged`` (out-of-core page files behind a buffer pool
sized by ``--pool-pages``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.expert import AutoExpert, Expert, InteractiveExpert
from repro.core.pipeline import DBREPipeline
from repro.core.report import session_report
from repro.eer.dot import to_dot
from repro.eer.render import render_text
from repro.exceptions import ExtractionError, ReproError
from repro.obs.export import (
    TRACE_FORMAT,
    read_trace_jsonl,
    summarize_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.profile import (
    detect_export_kind,
    diff_views,
    load_export,
    profile_from_records,
    render_diff,
    render_profile,
    view_from_export,
    write_collapsed,
    write_speedscope,
)
from repro.obs.tracer import Tracer
from repro.obs.provenance import (
    explain,
    provenance_records,
    provenance_to_dot,
    read_provenance_jsonl,
    write_provenance_jsonl,
)
from repro.obs.report import render_html_report
from repro.programs.corpus import ProgramCorpus
from repro.programs.extractor import extract_equijoins
from repro.relational.database import Database
from repro.sql.executor import Executor
from repro.storage.serialize import (
    database_from_dict,
    dependencies_to_dict,
    load_json,
    save_json,
)
from repro.util.text import format_table


SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


def _make_backend(name: str, pool_pages: int = 0, page_size: int = 0):
    """Resolve a ``--backend`` value to a fresh backend (None = memory).

    Any registered backend name resolves through the registry;
    *pool_pages* and *page_size* are forwarded to the paged backend
    when nonzero.
    """
    if name in ("auto", "memory"):
        return None
    from repro.backends import create_backend

    options = {}
    if name == "paged":
        if pool_pages:
            options["pool_pages"] = pool_pages
        if page_size:
            options["page_size"] = page_size
    return create_backend(name, **options)


def load_database(
    path: str, backend: str = "auto", pool_pages: int = 0, page_size: int = 0
) -> Database:
    """Load a database from ``.sql``, ``.json`` or SQLite ``.db`` input.

    *backend* picks the extension store: ``auto`` keeps SQLite files on
    the engine (pushdown) and scripts/documents in memory; any
    registered backend name forces that store for any input kind.
    """
    if path.endswith(SQLITE_SUFFIXES):
        from repro.backends import MemoryBackend, open_sqlite

        database = open_sqlite(path)
        if backend in ("auto", "sqlite"):
            return database
        target = _make_backend(backend, pool_pages, page_size) or MemoryBackend()
        return database.copy(backend=target)
    if path.endswith(".json"):
        document = database_from_dict(load_json(path))
        if backend in ("auto", "memory"):
            return document
        return document.copy(backend=_make_backend(backend, pool_pages, page_size))
    with open(path, "r", encoding="utf-8") as handle:
        script = handle.read()
    database = Database(backend=_make_backend(backend, pool_pages, page_size))
    Executor(database).run_script(script)
    return database


def load_corpus(path: str) -> ProgramCorpus:
    """Load the program directory, failing cleanly when it is missing."""
    if not os.path.isdir(path):
        raise ExtractionError(f"programs directory not found: {path}")
    return ProgramCorpus.from_directory(path)


def _write_observability(args: argparse.Namespace, pipeline: DBREPipeline) -> None:
    """Honor ``--trace``/``--metrics``/``--provenance`` after a run."""
    if getattr(args, "trace", None):
        write_trace_jsonl(pipeline.tracer, args.trace)
        print(f"trace written to {args.trace}")
    if getattr(args, "metrics", None):
        write_metrics_json(pipeline.tracer, args.metrics)
        print(f"metrics written to {args.metrics}")
    if getattr(args, "provenance", None) and pipeline.ledger is not None:
        write_provenance_jsonl(pipeline.ledger, args.provenance)
        print(f"provenance written to {args.provenance}")
    if getattr(args, "provenance_dot", None) and pipeline.ledger is not None:
        with open(args.provenance_dot, "w", encoding="utf-8") as handle:
            handle.write(provenance_to_dot(provenance_records(pipeline.ledger)))
        print(f"lineage graph written to {args.provenance_dot}")


def _write_certificates(args: argparse.Namespace, result) -> None:
    """Honor ``--certificates`` after a run (restruct decompositions)."""
    if getattr(args, "certificates", None):
        from repro.normalization import write_certificates_jsonl

        write_certificates_jsonl(result.certificates, args.certificates)
        print(
            f"{len(result.certificates)} decomposition certificate(s) "
            f"written to {args.certificates}"
        )


def _make_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    """A tracemalloc-enabled tracer under ``--profile-memory``, else None
    (the pipeline then creates its own plain tracer)."""
    if getattr(args, "profile_memory", False):
        return Tracer(profile_memory=True)
    return None


def _make_expert(args: argparse.Namespace) -> Expert:
    if getattr(args, "replay_decisions", None):
        from repro.core.expert import ScriptedExpert
        from repro.storage.decisions import script_from_dict

        return ScriptedExpert(script_from_dict(load_json(args.replay_decisions)))
    if getattr(args, "interactive", False):
        return InteractiveExpert()
    return AutoExpert(
        force_threshold=args.force_threshold,
        conceptualize_hidden=args.conceptualize_hidden,
    )


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_inspect(args: argparse.Namespace) -> int:
    database = load_database(args.database, args.backend, args.pool_pages, args.page_size)
    print("# Relations")
    for relation in database.schema:
        print(f"  {relation!r}  ({len(database.table(relation.name))} rows)")
    print("\n# K (declared keys)")
    for ref in database.schema.key_set():
        print(f"  {ref!r}")
    print("\n# N (not-null attributes)")
    for ref in database.schema.not_null_set():
        print(f"  {ref!r}")
    if args.statistics:
        database.catalog.analyze(database)
        rows = [
            [s.relation, s.attribute, s.row_count, s.distinct_count,
             f"{s.null_fraction:.0%}"]
            for s in database.catalog.all_statistics()
        ]
        print("\n# Statistics")
        print(format_table(
            ["relation", "attribute", "rows", "distinct", "null"], rows
        ))
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    database = load_database(args.database, args.backend, args.pool_pages, args.page_size)
    corpus = load_corpus(args.programs)
    report = extract_equijoins(corpus, database.schema)
    print(f"# Q — {len(report.joins)} equi-join(s) from "
          f"{report.statements_seen} statement(s) in {len(corpus)} program(s)")
    for join in report.joins:
        programs = sorted({p for p, _ in report.provenance[join]})
        print(f"  {join!r}    [{', '.join(programs)}]")
    for program, index, reason in report.skipped:
        print(f"  skipped {program}#{index}: {reason}", file=sys.stderr)
    for warning in sorted(set(report.warnings)):
        print(f"  warning: {warning}", file=sys.stderr)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    database = load_database(args.database, args.backend, args.pool_pages, args.page_size)
    corpus = load_corpus(args.programs)
    expert = _make_expert(args)
    pipeline = DBREPipeline(
        database, expert,
        tracer=_make_tracer(args),
        engine=args.engine, engine_workers=args.engine_workers,
    )
    result = pipeline.run(corpus=corpus)

    print(f"{result!r}")
    if result.engine_stats is not None:
        stats = result.engine_stats
        print(f"engine: {result.engine} — {stats.logical_probes} probes, "
              f"{stats.unique_probes} unique, "
              f"{stats.backend_calls} backend call(s)")
    print("\n# Restructured schema")
    for relation in result.restructured.schema:
        print(f"  {relation!r}")
    print("\n# Referential integrity constraints")
    for ind in result.ric:
        print(f"  {ind!r}")
    if result.eer is not None:
        print("\n# Conceptual schema")
        print(render_text(result.eer))

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(session_report(result, pipeline.expert))
            handle.write("\n")
        print(f"\nsession report written to {args.report}")
    if args.dot and result.eer is not None:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(to_dot(result.eer))
        print(f"EER diagram written to {args.dot}")
    if args.dependencies:
        save_json(
            dependencies_to_dict(list(result.fds), list(result.inds)),
            args.dependencies,
        )
        print(f"elicited dependencies written to {args.dependencies}")
    if args.sql:
        from repro.storage.ddl import migration_script

        with open(args.sql, "w", encoding="utf-8") as handle:
            handle.write(
                migration_script(
                    result.restructured, result.ric, include_data=args.sql_data
                )
            )
        print(f"migration script written to {args.sql}")
    if args.save_decisions:
        from repro.storage.decisions import script_to_dict

        save_json(
            script_to_dict(pipeline.expert.to_script()), args.save_decisions
        )
        print(f"expert decisions written to {args.save_decisions}")
    _write_observability(args, pipeline)
    _write_certificates(args, result)
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.expert import ScriptedExpert
    from repro.workloads.paper_example import (
        build_paper_database,
        paper_expert_script,
        paper_program_corpus,
    )

    database = build_paper_database(
        backend=_make_backend(args.backend, args.pool_pages, args.page_size)
    )
    expert = ScriptedExpert(paper_expert_script())
    pipeline = DBREPipeline(
        database, expert,
        tracer=_make_tracer(args),
        engine=args.engine, engine_workers=args.engine_workers,
    )
    result = pipeline.run(corpus=paper_program_corpus())
    print(session_report(result, pipeline.expert,
                         title="Paper example (Petit et al., ICDE 1996)"))
    _write_observability(args, pipeline)
    _write_certificates(args, result)
    return 0


def cmd_normalize(args: argparse.Namespace) -> int:
    from repro.dependencies.fd import FunctionalDependency
    from repro.exceptions import ProcessError
    from repro.normalization import normalize, write_certificates_jsonl
    from repro.storage.serialize import dependencies_from_dict

    database = load_database(
        args.database, args.backend, args.pool_pages, args.page_size
    )
    fds = [FunctionalDependency.parse(text) for text in args.fd or []]
    if args.fds_json:
        loaded, _inds = dependencies_from_dict(load_json(args.fds_json))
        fds.extend(loaded)
    if not fds:
        raise ProcessError(
            "no functional dependencies given; pass --fd 'R: a -> b' "
            "(repeatable) and/or --fds-json FILE"
        )
    for fd in fds:
        if not fd.relation:
            raise ProcessError(
                f"{fd!r} has no relation qualifier; write 'R: a -> b'"
            )
        if fd.relation not in database.schema:
            raise ProcessError(f"{fd!r}: unknown relation {fd.relation!r}")
        relation = database.schema.relation(fd.relation)
        missing = sorted(
            (set(fd.lhs) | set(fd.rhs)) - set(relation.attribute_names)
        )
        if missing:
            raise ProcessError(
                f"{fd!r}: attributes {missing} are not in {fd.relation}"
            )

    certificates = []
    for name in sorted({fd.relation for fd in fds}):
        relation = database.schema.relation(name)
        universe = list(relation.attribute_names)
        primary = (
            tuple(relation.uniques[0].attributes)
            if relation.uniques
            else tuple(universe)
        )
        engine_fds = [
            FunctionalDependency("", tuple(fd.lhs), tuple(fd.rhs))
            for fd in fds
            if fd.relation == name
        ]
        for unique in relation.uniques:
            engine_fds.append(
                FunctionalDependency("", tuple(unique.attributes), tuple(universe))
            )

        def namer(index, key, attrs, _name=name, _primary=primary):
            if set(key) == set(_primary):
                return _name
            return f"{_name}_{'_'.join(key)}"

        result = normalize(
            universe,
            engine_fds,
            target_nf=args.target_nf,
            source=name,
            namer=namer,
        )
        certificate = result.certificate
        certificates.append(certificate)
        forms = {scheme.name: scheme.normal_form for scheme in certificate.relations}
        print(f"# {name} -> {len(result.relations)} relation(s) [{args.target_nf}]")
        for scheme in result.relations:
            print(f"  {scheme!r}  [{forms[scheme.name]}]"
                  + ("  (repair relation)" if scheme.origin == "repair" else ""))
        for reference in result.references:
            print(f"  reference: {reference!r}")
        verdict = "lossless" if certificate.lossless else "LOSSY"
        if certificate.repaired:
            verdict += " (repair relation added)"
        print(f"  chase: {verdict}; "
              f"{len(certificate.preserved)} dependency(ies) preserved, "
              f"{len(certificate.lost)} lost")
        for lost in certificate.lost:
            print(f"  lost: {lost}")

    if args.certificate:
        write_certificates_jsonl(certificates, args.certificate)
        print(f"{len(certificates)} certificate(s) written to {args.certificate}")
    return 0


def _configure_logging(args: argparse.Namespace) -> None:
    """Honor ``--log-json [FILE]``: JSON lines to FILE or stderr."""
    target = getattr(args, "log_json", None)
    if target is None:
        return
    from repro.obs.log import configure_json_logging

    if target == "-":
        configure_json_logging()
    else:
        configure_json_logging(path=target)


def cmd_serve(args: argparse.Namespace) -> int:
    # lazy: the service layer imports this module for its spec loader
    from repro.service.jobs import JobManager
    from repro.service.server import serve

    _configure_logging(args)
    archive = None
    if args.archive:
        from repro.obs.archive import RunArchive

        archive = RunArchive(args.archive)
    manager = JobManager(
        runners=args.runners, keep_finished=args.keep_finished,
        archive=archive,
    )
    try:
        serve(
            manager,
            host=args.host,
            port=args.port,
            verbose=not args.quiet,
            heartbeat=args.heartbeat,
            peers=args.peers or (),
        )
    finally:
        if args.jobs_export:
            from repro.service.export import write_jobs_jsonl

            write_jobs_jsonl(manager, args.jobs_export)
            print(f"job ledger written to {args.jobs_export}")
    return 0


def cmd_jobs_run(args: argparse.Namespace) -> int:
    from repro.service.export import write_jobs_jsonl
    from repro.service.jobs import JobManager
    from repro.service.specs import submit_spec

    document = load_json(args.specs)
    specs = document if isinstance(document, list) else [document]
    with JobManager(runners=args.runners) as manager:
        submitted = []
        for index, spec in enumerate(specs):
            try:
                submitted.append(submit_spec(manager, spec))
            except ValueError as exc:
                print(f"error: spec #{index + 1}: {exc}", file=sys.stderr)
                return 1
        for job in submitted:
            job._finished.wait(args.timeout if args.timeout > 0 else None)

        rows = []
        for job in manager.jobs():
            took = (
                f"{job.finished_at - job.started_at:.2f}s"
                if job.started_at and job.finished_at
                else "-"
            )
            rows.append([
                job.id, job.label, job.state,
                "yes" if job.cached else "no", took,
                job.error or "",
            ])
        print(format_table(
            ["job", "label", "state", "cached", "took", "error"], rows
        ))
        if args.export:
            write_jobs_jsonl(manager, args.export)
            print(f"job ledger written to {args.export}")
        failed = [job for job in manager.jobs() if job.state != "done"]
    if failed:
        print(f"error: {len(failed)} job(s) did not finish done", file=sys.stderr)
        return 1
    return 0


def cmd_jobs_watch(args: argparse.Namespace) -> int:
    """Tail one job's SSE stream as a live per-phase progress view."""
    import json as _json
    import urllib.error

    from repro.service.stream import sse_events

    if args.since is not None and args.since < 0:
        # a usage error, caught before it becomes a bad Last-Event-ID
        # on the wire; exit 2 matches argparse's own usage failures
        print(
            "usage: repro jobs watch --since takes a non-negative "
            "sequence number",
            file=sys.stderr,
        )
        return 2

    url = args.url.rstrip("/") + f"/jobs/{args.job_id}/events"
    tty = sys.stdout.isatty() and not args.json
    line_open = False  # a TTY progress line awaiting \r overwrite

    def emit(text: str) -> None:
        nonlocal line_open
        if line_open:
            print("\r\x1b[K", end="")
            line_open = False
        print(text, flush=True)

    def emit_progress(text: str) -> None:
        nonlocal line_open
        if tty:
            print(f"\r\x1b[K  {text}", end="", flush=True)
            line_open = True
        # non-TTY output stays quiet between phase boundaries: a log
        # follower wants the boundaries, not thousands of ticks

    final_state = ""
    try:
        for record in sse_events(
            url, last_event_id=args.since, timeout=args.timeout or None
        ):
            if args.json:
                print(_json.dumps(record, sort_keys=True), flush=True)
                if record.get("type") == "end":
                    final_state = record.get("state") or ""
                    break
                continue
            kind = record.get("type")
            if kind == "span-open" and record.get("kind") == "phase":
                emit(f"> {record['name']}")
            elif kind == "span-close" and record.get("kind") == "phase":
                emit(f"  {record['name']} done in {record['duration_ms']:.0f}ms")
            elif kind == "progress":
                message = record.get("message", "")
                current, total = record.get("current"), record.get("total")
                counter = (
                    f" [{current}/{total}]"
                    if current is not None and total is not None
                    else ""
                )
                emit_progress(f"{message}{counter}")
            elif kind == "pool":
                emit(f"  pool: {record.get('event')}")
            elif kind == "end":
                final_state = record.get("state") or ""
                emit(f"{args.job_id} finished: {final_state or 'unknown'}")
                break
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8", "replace")
        try:
            message = _json.loads(body).get("error", body)
        except _json.JSONDecodeError:
            message = body or str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    if final_state == "done":
        return 0
    if not final_state:
        # the stream closed with no end sentinel at all: a server crash
        # or dropped connection mid-run must not look like success
        print(
            f"error: stream ended without an end sentinel; "
            f"{args.job_id} may still be running",
            file=sys.stderr,
        )
    return 1


def cmd_fleet_scrape(args: argparse.Namespace) -> int:
    """Merge several instances' ``/metrics`` into one linted exposition."""
    from repro.service.fleet import scrape_fleet
    from repro.service.metrics import lint_exposition

    text = scrape_fleet(args.urls, timeout=args.timeout)
    print(text, end="")
    problems = lint_exposition(text)
    for problem in problems:
        print(f"lint: {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_fleet_status(args: argparse.Namespace) -> int:
    from repro.service.fleet import fleet_status

    print(fleet_status(args.urls, timeout=args.timeout), end="")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    """Cross-run trend tables + drift flags (archive and bench history)."""
    from repro.obs.history import (
        load_bench_history,
        render_archive_trends,
        render_bench_trends,
    )

    shown = False
    if args.archive:
        from repro.obs.archive import RunArchive

        try:
            print(
                render_archive_trends(
                    RunArchive(args.archive), threshold=args.threshold
                ),
                end="",
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        shown = True
    records = load_bench_history(args.bench, mode=args.mode)
    if records or not shown:
        if shown:
            print()
        print(render_bench_trends(records, threshold=args.threshold), end="")
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs.live import LIVE_FORMAT, summarize_live

    try:
        # schema-sniffing loader: handing it the wrong export kind (a
        # metrics JSON, a provenance JSONL) is a one-line error naming
        # what the file actually is — except a repro/live@1 capture,
        # which summarize understands natively (event counts per
        # type/phase instead of the span tree)
        kind, payload = detect_export_kind(args.trace_file)
        if kind == LIVE_FORMAT:
            print(summarize_live(payload))
            return 0
        if kind != TRACE_FORMAT:
            records = load_export(args.trace_file, TRACE_FORMAT)
        else:
            records = payload
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(summarize_trace(records))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    try:
        records = load_export(args.trace_file, TRACE_FORMAT)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_profile(profile_from_records(records)))
    if args.flame:
        write_collapsed(records, args.flame)
        print(f"\ncollapsed stacks written to {args.flame}")
    if args.speedscope:
        write_speedscope(
            records, args.speedscope, name=os.path.basename(args.trace_file)
        )
        print(f"speedscope profile written to {args.speedscope}")
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    views = []
    for path in (args.trace_a, args.trace_b):
        try:
            kind, payload = detect_export_kind(path)
            views.append(view_from_export(kind, payload))
        except ValueError as exc:
            message = str(exc)
            if path not in message and repr(path) not in message:
                message = f"{path!r}: {message}"
            print(f"error: {message}", file=sys.stderr)
            return 1
    print(
        render_diff(
            diff_views(views[0], views[1]),
            a_label=os.path.basename(args.trace_a),
            b_label=os.path.basename(args.trace_b),
        )
    )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    try:
        records = read_provenance_jsonl(args.provenance_file)
        print(explain(records, args.artifact))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if not args.trace and not args.provenance:
        print("error: provide --trace and/or --provenance", file=sys.stderr)
        return 1
    trace = provenance = None
    try:
        if args.trace:
            trace = read_trace_jsonl(args.trace)
        if args.provenance:
            provenance = read_provenance_jsonl(args.provenance)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    document = render_html_report(trace, provenance, title=args.title)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"audit report written to {args.output}")
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def _distribution_version() -> str:
    """The installed distribution's version, else the package constant."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not installed (e.g. PYTHONPATH=src) or py<3.8
        import repro

        return repro.__version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reverse engineering of denormalized relational databases "
                    "(Petit et al., ICDE 1996)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_distribution_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_option(command: argparse.ArgumentParser) -> None:
        from repro.backends import backend_names

        command.add_argument(
            "--backend", choices=("auto",) + backend_names(), default="auto",
            help="extension store: auto (SQLite files stay on the engine, "
                 "scripts/documents in memory) or any registered backend",
        )
        command.add_argument(
            "--pool-pages", type=int, default=0, metavar="N",
            help="paged backend only: buffer-pool capacity in pages "
                 "(0 = backend default)",
        )
        command.add_argument(
            "--page-size", type=int, default=0, metavar="BYTES",
            help="paged backend only: page size of newly created page "
                 "files (0 = backend default)",
        )

    def add_engine_option(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--engine", choices=DBREPipeline.ENGINE_MODES, default="serial",
            help="probe execution: serial (one backend call per probe), "
                 "batched (plan, dedupe and group probes), or process "
                 "(shard probe chunks across worker processes); all modes "
                 "produce identical results",
        )
        command.add_argument(
            "--engine-workers", type=int, default=0, metavar="N",
            help="batched: worker threads on parallel-safe backends; "
                 "process: worker processes (0 = auto)",
        )

    def add_observability_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace",
            help="write the span/event trace as JSONL here "
                 "(repro trace summarize renders it)",
        )
        command.add_argument(
            "--metrics",
            help="write the flat metrics summary as JSON here",
        )
        command.add_argument(
            "--provenance",
            help="write the decision-lineage DAG as JSONL here "
                 "(repro explain renders one artifact's chain)",
        )
        command.add_argument(
            "--provenance-dot",
            help="write the lineage graph as Graphviz DOT here",
        )
        command.add_argument(
            "--profile-memory", action="store_true",
            help="record tracemalloc peaks per span as span attributes "
                 "(mem_peak_kb / mem_current_kb in the trace; slower)",
        )
        command.add_argument(
            "--certificates", metavar="FILE",
            help="write the Restruct decomposition certificates as "
                 "repro/normalization@1 JSONL here "
                 "(re-checkable with verify_certificate())",
        )

    inspect = sub.add_parser("inspect", help="print the dictionary view of a database")
    inspect.add_argument("database",
                         help=".sql script, .json database document, or "
                              "SQLite .db file")
    inspect.add_argument("--statistics", action="store_true",
                         help="also analyze and print per-attribute statistics")
    add_backend_option(inspect)
    inspect.set_defaults(func=cmd_inspect)

    extract = sub.add_parser("extract", help="extract the equi-join set Q")
    extract.add_argument("database")
    extract.add_argument("programs", help="directory of application programs")
    add_backend_option(extract)
    extract.set_defaults(func=cmd_extract)

    run = sub.add_parser("run", help="run the full reverse-engineering pipeline")
    run.add_argument("database")
    run.add_argument("programs")
    add_backend_option(run)
    run.add_argument("--interactive", action="store_true",
                     help="ask the expert questions on stdin")
    run.add_argument("--force-threshold", type=float, default=0.95,
                     help="AutoExpert: NEI overlap above which the smaller "
                          "side is presumed included (default 0.95)")
    run.add_argument("--conceptualize-hidden", action="store_true",
                     help="AutoExpert: conceptualize empty-RHS identifiers")
    run.add_argument("--report", help="write the Markdown session report here")
    run.add_argument("--dot", help="write the EER schema as Graphviz DOT here")
    run.add_argument("--dependencies",
                     help="write the elicited dependencies as JSON here")
    run.add_argument("--sql",
                     help="write the 3NF migration script (DDL + RIC as "
                          "FOREIGN KEYs) here")
    run.add_argument("--sql-data", action="store_true",
                     help="include INSERT statements in the migration script")
    run.add_argument("--save-decisions",
                     help="record the expert's answers as a replayable "
                          "JSON document")
    run.add_argument("--replay-decisions",
                     help="answer expert questions from a previously "
                          "saved decisions document")
    add_engine_option(run)
    add_observability_options(run)
    run.set_defaults(func=cmd_run)

    demo = sub.add_parser("demo", help="run the paper's worked example")
    add_backend_option(demo)
    add_engine_option(demo)
    add_observability_options(demo)
    demo.set_defaults(func=cmd_demo)

    normalize_cmd = sub.add_parser(
        "normalize",
        help="certified 3NF/BCNF synthesis of one schema's relations",
    )
    normalize_cmd.add_argument(
        "database",
        help=".sql script, .json database document, or SQLite .db file",
    )
    add_backend_option(normalize_cmd)
    normalize_cmd.add_argument(
        "--fd", action="append", metavar="FD",
        help="a functional dependency, e.g. 'R: a, b -> c' (repeatable)",
    )
    normalize_cmd.add_argument(
        "--fds-json", metavar="FILE",
        help="read dependencies from a repro/dependencies@1 document "
             "(as written by repro run --dependencies)",
    )
    normalize_cmd.add_argument(
        "--target-nf", choices=("3nf", "bcnf"), default="3nf",
        help="target normal form: 3nf (Bernstein synthesis, default) or "
             "bcnf (analysis decomposition)",
    )
    normalize_cmd.add_argument(
        "--certificate", metavar="FILE",
        help="write the decomposition certificates as "
             "repro/normalization@1 JSONL here",
    )
    normalize_cmd.set_defaults(func=cmd_normalize)

    serve = sub.add_parser(
        "serve",
        help="run the multi-job discovery service (local HTTP JSON API)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8750,
                       help="bind port (default 8750; 0 = ephemeral)")
    serve.add_argument("--runners", type=int, default=1, metavar="N",
                       help="concurrent job-runner threads (default 1)")
    serve.add_argument("--keep-finished", type=int, default=None,
                       metavar="N",
                       help="retain at most N finished jobs in the ledger, "
                            "evicting the oldest (their metrics totals are "
                            "kept; default: keep all)")
    serve.add_argument("--jobs-export", metavar="FILE",
                       help="write the repro/jobs@1 ledger here on shutdown")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request log lines")
    serve.add_argument("--log-json", nargs="?", const="-", metavar="FILE",
                       help="structured JSON-lines logging: to FILE, or "
                            "stderr when no file is given")
    serve.add_argument("--heartbeat", type=float, default=15.0,
                       metavar="SECONDS",
                       help="SSE heartbeat cadence on idle streams "
                            "(default 15s)")
    serve.add_argument("--archive", metavar="DIR",
                       help="durable repro/archive@1 directory: finished "
                            "runs are written through to it, and the "
                            "ledger + results cache are restored from it "
                            "at startup")
    serve.add_argument("--peers", nargs="+", metavar="URL", default=None,
                       help="peer instances whose /metrics GET "
                            "/fleet/metrics federates (per-instance "
                            "labels, one linted exposition)")
    serve.set_defaults(func=cmd_serve)

    fleet = sub.add_parser(
        "fleet", help="operate across a fleet of repro serve instances"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_scrape = fleet_sub.add_parser(
        "scrape",
        help="scrape each instance's /metrics and print one merged, "
             "linted exposition with per-instance labels",
    )
    fleet_scrape.add_argument("urls", nargs="+", metavar="URL",
                              help="instance base URLs (host:port is "
                                   "enough; /metrics is implied)")
    fleet_scrape.add_argument("--timeout", type=float, default=5.0,
                              metavar="SECONDS",
                              help="per-instance scrape timeout "
                                   "(default 5s)")
    fleet_scrape.set_defaults(func=cmd_fleet_scrape)
    fleet_status_cmd = fleet_sub.add_parser(
        "status", help="one-screen fleet overview (liveness, job counts)"
    )
    fleet_status_cmd.add_argument("urls", nargs="+", metavar="URL",
                                  help="instance base URLs")
    fleet_status_cmd.add_argument("--timeout", type=float, default=5.0,
                                  metavar="SECONDS",
                                  help="per-instance probe timeout "
                                       "(default 5s)")
    fleet_status_cmd.set_defaults(func=cmd_fleet_status)

    history_cmd = sub.add_parser(
        "history",
        help="cross-run trend tables with robust (median/MAD) drift "
             "detection over the run archive and the bench history",
    )
    history_cmd.add_argument("--archive", metavar="DIR",
                             help="a repro/archive@1 directory to analyze")
    history_cmd.add_argument("--bench", metavar="FILE",
                             default="benchmarks/BENCH_history.jsonl",
                             help="a repro/bench-history@1 file (default "
                                  "benchmarks/BENCH_history.jsonl)")
    history_cmd.add_argument("--mode", choices=("quick", "full"),
                             default=None,
                             help="restrict bench trends to one mode")
    history_cmd.add_argument("--threshold", type=float, default=3.5,
                             metavar="Z",
                             help="robust z-score drift cut (default 3.5)")
    history_cmd.set_defaults(func=cmd_history)

    jobs = sub.add_parser(
        "jobs", help="batch-run job specs through the job manager"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    jobs_run = jobs_sub.add_parser(
        "run",
        help="submit every spec in a JSON file, wait, print the ledger",
    )
    jobs_run.add_argument(
        "specs",
        help="a JSON file holding one job spec or a list of them "
             "(see docs/SERVICE.md)",
    )
    jobs_run.add_argument("--runners", type=int, default=1, metavar="N",
                          help="concurrent job-runner threads (default 1)")
    jobs_run.add_argument("--timeout", type=float, default=0, metavar="SECONDS",
                          help="per-job wait budget (0 = wait forever)")
    jobs_run.add_argument("--export", metavar="FILE",
                          help="write the repro/jobs@1 ledger here")
    jobs_run.set_defaults(func=cmd_jobs_run)
    jobs_watch = jobs_sub.add_parser(
        "watch",
        help="tail a job's live SSE stream as a per-phase progress view",
    )
    jobs_watch.add_argument("job_id", help="the job to watch (e.g. job-1)")
    jobs_watch.add_argument("--url", default="http://127.0.0.1:8750",
                            help="the repro serve base URL")
    jobs_watch.add_argument("--json", action="store_true",
                            help="print raw repro/live@1 records as JSON "
                                 "lines instead of the progress view")
    jobs_watch.add_argument("--since", type=int, default=None, metavar="SEQ",
                            help="resume after sequence number SEQ "
                                 "(sent as Last-Event-ID)")
    jobs_watch.add_argument("--timeout", type=float, default=0,
                            metavar="SECONDS",
                            help="socket timeout while waiting for events")
    jobs_watch.set_defaults(func=cmd_jobs_watch)

    trace = sub.add_parser("trace", help="work with recorded traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="print the span tree and primitive rollup of a trace"
    )
    summarize.add_argument("trace_file", help="a --trace JSONL file")
    summarize.set_defaults(func=cmd_trace_summarize)
    diff = trace_sub.add_parser(
        "diff",
        help="compare two traces (or two metrics files): regressions "
             "ranked by self-time delta, cache-hit-rate deltas attached",
    )
    diff.add_argument("trace_a", help="the before trace/metrics file")
    diff.add_argument("trace_b", help="the after trace/metrics file")
    diff.set_defaults(func=cmd_trace_diff)

    profile = sub.add_parser(
        "profile",
        help="hotspot attribution of a recorded trace (inclusive vs. "
             "self time, per-phase primitive breakdown, flamegraphs)",
    )
    profile.add_argument("trace_file", help="a --trace JSONL file")
    profile.add_argument(
        "--flame", metavar="FILE",
        help="write collapsed stacks (flamegraph.pl input) here",
    )
    profile.add_argument(
        "--speedscope", metavar="FILE",
        help="write a speedscope-compatible JSON profile here",
    )
    profile.set_defaults(func=cmd_profile)

    explain_cmd = sub.add_parser(
        "explain",
        help="print the derivation chain of one artifact from a "
             "provenance export",
    )
    explain_cmd.add_argument("provenance_file", help="a --provenance JSONL file")
    explain_cmd.add_argument(
        "artifact",
        help="node id, exact label, or label substring (e.g. a RIC repr "
             "such as \"Emp[dep] << Dept[dep]\")",
    )
    explain_cmd.set_defaults(func=cmd_explain)

    report = sub.add_parser(
        "report", help="render one self-contained HTML audit report"
    )
    report.add_argument("--trace", help="a --trace JSONL file")
    report.add_argument("--provenance", help="a --provenance JSONL file")
    report.add_argument(
        "--title", default="Reverse-engineering audit report",
        help="report heading",
    )
    report.add_argument(
        "--output", required=True, metavar="FILE",
        help="write the HTML document here",
    )
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
