"""Armstrong relations: extensions satisfying *exactly* a given FD set.

Mannila and Räihä (the paper's ref. [12]) study inferring FDs from
relations; the inverse tool is the Armstrong relation — an extension
that satisfies every dependency implied by a cover ``F`` and violates
every dependency not implied by it.  The classical construction is used
here: one base tuple, plus one tuple per *closed* attribute set ``X``
(``X⁺ = X``) agreeing with the base exactly on ``X``.

- a dependency ``Y → b`` with ``b ∈ Y⁺`` holds: every closed set
  containing ``Y`` contains ``b``;
- a dependency with ``b ∉ Y⁺`` is violated by the tuple of the closed
  set ``Y⁺`` (it agrees with the base on ``Y`` but not on ``b``).

Enumeration of closed sets is exponential in the number of attributes —
inherent to the problem — so the builder enforces a size cap; the test
generators stay well under it.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Sequence, Set

from repro.dependencies.closure import attribute_closure
from repro.dependencies.fd import FunctionalDependency
from repro.exceptions import ProcessError
from repro.relational.attribute import Attribute
from repro.relational.domain import INTEGER
from repro.relational.schema import RelationSchema
from repro.relational.table import Table

MAX_ATTRIBUTES = 14


def closed_sets(
    universe: Sequence[str], fds: Sequence[FunctionalDependency]
) -> List[FrozenSet[str]]:
    """All closed attribute sets (``X⁺ = X``) over *universe*.

    Computed as the distinct closures of all subsets — every closure is
    closed, and every closed set is its own closure.
    """
    universe = list(dict.fromkeys(universe))
    if len(universe) > MAX_ATTRIBUTES:
        raise ProcessError(
            f"closed-set enumeration over {len(universe)} attributes "
            f"exceeds the cap ({MAX_ATTRIBUTES})"
        )
    out: Set[FrozenSet[str]] = set()
    for size in range(len(universe) + 1):
        for combo in combinations(universe, size):
            out.add(attribute_closure(combo, fds))
    return sorted(out, key=lambda s: (len(s), sorted(s)))


def build_armstrong_table(
    universe: Sequence[str],
    fds: Sequence[FunctionalDependency],
    relation_name: str = "armstrong",
) -> Table:
    """An extension of *universe* satisfying exactly ``F⁺``.

    Values are small integers: the base tuple is all-zero; the tuple of
    closed set ``X`` carries a fresh value on every attribute outside
    ``X``.
    """
    universe = list(dict.fromkeys(universe))
    schema = RelationSchema(
        relation_name,
        [Attribute(a, INTEGER, nullable=False) for a in universe],
    )
    table = Table(schema)
    table.insert([0] * len(universe))
    fresh = 0
    for closed in closed_sets(universe, fds):
        if len(closed) == len(universe):
            continue  # agrees everywhere: duplicate of the base tuple
        row = []
        for attr in universe:
            if attr in closed:
                row.append(0)
            else:
                fresh += 1
                row.append(fresh)
        table.insert(row)
    return table


def satisfies_exactly(
    table: Table,
    universe: Sequence[str],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """Check the Armstrong property of *table* w.r.t. *fds*.

    Every unary-RHS dependency over *universe* must hold iff it is
    implied by *fds*.  Exponential in ``|universe|``; a test helper.
    """
    from repro.relational.algebra import functional_maps

    universe = list(dict.fromkeys(universe))
    n = len(universe)
    for size in range(1, n):
        for lhs in combinations(universe, size):
            closure = attribute_closure(lhs, fds)
            for target in universe:
                if target in lhs:
                    continue
                expected = target in closure
                actual = functional_maps(table, lhs, (target,))
                if expected != actual:
                    return False
    return True
