"""Classical FD inference: closure, implication, minimal cover.

These are the textbook algorithms (Ullman; Maier) the normalization
substrate needs: attribute-set closure under a set of FDs, logical
implication, and minimal (canonical) covers used by the Bernstein 3NF
synthesis baseline.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set

from repro.dependencies.fd import FunctionalDependency
from repro.relational.attribute import AttributeSet


def attribute_closure(
    attrs: Iterable[str], fds: Sequence[FunctionalDependency]
) -> FrozenSet[str]:
    """``attrs+`` — the closure of *attrs* under *fds*.

    Standard fixpoint; relation qualifiers on the FDs are ignored (closure
    is computed within one attribute universe).
    """
    closure: Set[str] = set(attrs)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if set(fd.lhs) <= closure and not set(fd.rhs) <= closure:
                closure |= set(fd.rhs)
                changed = True
    return frozenset(closure)


def implies(
    fds: Sequence[FunctionalDependency], fd: FunctionalDependency
) -> bool:
    """True when *fds* logically imply *fd* (Armstrong-complete test)."""
    return set(fd.rhs) <= attribute_closure(fd.lhs, fds)


def equivalent_covers(
    left: Sequence[FunctionalDependency], right: Sequence[FunctionalDependency]
) -> bool:
    """True when the two FD sets imply each other."""
    return all(implies(right, fd) for fd in left) and all(
        implies(left, fd) for fd in right
    )


def minimal_cover(fds: Sequence[FunctionalDependency]) -> List[FunctionalDependency]:
    """A minimal (canonical) cover of *fds*.

    Three classical phases: split right-hand sides to singletons, remove
    extraneous left-hand attributes, remove redundant dependencies.  The
    result is deterministic for a given input order modulo the final sort.
    """
    # 1. singleton right-hand sides
    work: List[FunctionalDependency] = []
    for fd in fds:
        for part in fd.split_rhs():
            if not part.is_trivial() and part not in work:
                work.append(part)

    # 2. remove extraneous LHS attributes
    reduced: List[FunctionalDependency] = []
    for fd in work:
        lhs = list(fd.lhs)
        for attr in list(lhs):
            if len(lhs) == 1:
                break
            trial = [a for a in lhs if a != attr]
            if set(fd.rhs) <= attribute_closure(trial, work):
                lhs = trial
        reduced.append(FunctionalDependency(fd.relation, lhs, tuple(fd.rhs)))

    # 3. remove redundant FDs
    result: List[FunctionalDependency] = list(dict.fromkeys(reduced))
    changed = True
    while changed:
        changed = False
        for fd in list(result):
            others = [f for f in result if f is not fd]
            if implies(others, fd):
                result.remove(fd)
                changed = True
                break
    return sorted(result, key=lambda f: f.sort_key())


def project_fds(
    fds: Sequence[FunctionalDependency], attrs: Iterable[str]
) -> List[FunctionalDependency]:
    """The FDs implied by *fds* that mention only *attrs*.

    Exponential in ``|attrs|`` in the worst case (as the problem is); used
    by the normalization substrate on small relation schemas only.
    """
    universe = list(dict.fromkeys(attrs))
    out: List[FunctionalDependency] = []
    n = len(universe)
    # size-increasing order, so minimal generators are found first and
    # every larger subset they imply is skipped — the output stays near
    # the cover size instead of growing with 2^n
    masks = sorted(range(1, 1 << n), key=lambda m: (bin(m).count("1"), m))
    for mask in masks:
        lhs = [universe[i] for i in range(n) if mask & (1 << i)]
        closure = attribute_closure(lhs, fds)
        rhs = [a for a in universe if a in closure and a not in lhs]
        if not rhs:
            continue
        if set(rhs) <= attribute_closure(lhs, out):
            continue
        out.append(FunctionalDependency("", lhs, rhs))
    return minimal_cover(out)


def restrict_to_relation(
    fds: Sequence[FunctionalDependency], relation: str, attrs: Iterable[str]
) -> List[FunctionalDependency]:
    """Re-qualify relation-less FDs over *attrs* onto *relation*."""
    attr_set = AttributeSet(attrs)
    out = []
    for fd in fds:
        if fd.lhs.issubset(attr_set) and fd.rhs.issubset(attr_set):
            out.append(fd.with_relation(relation))
    return out
