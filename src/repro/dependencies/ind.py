"""Inclusion dependencies ``R_i[Y] ≪ R_j[Z]``.

The central interrelation-dependency object of the paper.  Attribute
*order* is significant on both sides (position i pairs with position i),
and equality respects pairing rather than raw order: ``R[a,b] ≪ S[x,y]``
equals ``R[b,a] ≪ S[y,x]``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.exceptions import SchemaError
from repro.relational.attribute import AttributeRef


class InclusionDependency:
    """``lhs_relation[lhs_attrs] ≪ rhs_relation[rhs_attrs]``."""

    __slots__ = ("lhs_relation", "lhs_attrs", "rhs_relation", "rhs_attrs")

    def __init__(
        self,
        lhs_relation: str,
        lhs_attrs: Iterable[str],
        rhs_relation: str,
        rhs_attrs: Iterable[str],
    ) -> None:
        if isinstance(lhs_attrs, str):
            lhs_attrs = (lhs_attrs,)
        if isinstance(rhs_attrs, str):
            rhs_attrs = (rhs_attrs,)
        self.lhs_relation = lhs_relation
        self.lhs_attrs: Tuple[str, ...] = tuple(lhs_attrs)
        self.rhs_relation = rhs_relation
        self.rhs_attrs: Tuple[str, ...] = tuple(rhs_attrs)
        if len(self.lhs_attrs) != len(self.rhs_attrs):
            raise SchemaError(
                f"inclusion dependency arity mismatch: "
                f"{self.lhs_attrs} vs {self.rhs_attrs}"
            )
        if not self.lhs_attrs:
            raise SchemaError("inclusion dependency needs at least one attribute")
        if len(set(self.lhs_attrs)) != len(self.lhs_attrs):
            raise SchemaError(f"duplicate attributes on left side: {self.lhs_attrs}")
        if len(set(self.rhs_attrs)) != len(self.rhs_attrs):
            raise SchemaError(f"duplicate attributes on right side: {self.rhs_attrs}")

    @classmethod
    def parse(cls, text: str) -> "InclusionDependency":
        """Parse ``"R[a, b] << S[x, y]"`` (the paper's ``≪`` written ``<<``)."""
        if "<<" not in text:
            raise SchemaError(f"not an inclusion dependency: {text!r}")
        left, right = text.split("<<", 1)

        def side(chunk: str) -> Tuple[str, Tuple[str, ...]]:
            chunk = chunk.strip()
            if "[" not in chunk or not chunk.endswith("]"):
                raise SchemaError(f"malformed inclusion side: {chunk!r}")
            rel, attrs = chunk[:-1].split("[", 1)
            names = tuple(a.strip() for a in attrs.split(",") if a.strip())
            return rel.strip(), names

        lrel, lattrs = side(left)
        rrel, rattrs = side(right)
        return cls(lrel, lattrs, rrel, rattrs)

    # ------------------------------------------------------------------
    def lhs_ref(self) -> AttributeRef:
        return AttributeRef(self.lhs_relation, self.lhs_attrs)

    def rhs_ref(self) -> AttributeRef:
        return AttributeRef(self.rhs_relation, self.rhs_attrs)

    def pairs(self) -> Tuple[Tuple[str, str], ...]:
        """The positional (left attr, right attr) correspondences."""
        return tuple(zip(self.lhs_attrs, self.rhs_attrs))

    def is_unary(self) -> bool:
        return len(self.lhs_attrs) == 1

    def reversed(self) -> "InclusionDependency":
        """The opposite-direction dependency (used by expert choices v/vi)."""
        return InclusionDependency(
            self.rhs_relation, self.rhs_attrs, self.lhs_relation, self.lhs_attrs
        )

    def rename_lhs(self, relation: str, attrs: Iterable[str]) -> "InclusionDependency":
        return InclusionDependency(relation, attrs, self.rhs_relation, self.rhs_attrs)

    def rename_rhs(self, relation: str, attrs: Iterable[str]) -> "InclusionDependency":
        return InclusionDependency(self.lhs_relation, self.lhs_attrs, relation, attrs)

    # ------------------------------------------------------------------
    def _canonical(self) -> Tuple[str, str, Tuple[Tuple[str, str], ...]]:
        """Pairing-respecting canonical form used for equality/hash."""
        return (
            self.lhs_relation,
            self.rhs_relation,
            tuple(sorted(self.pairs())),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, InclusionDependency):
            return other._canonical() == self._canonical()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("IND",) + self._canonical())

    def __repr__(self) -> str:
        return (
            f"{self.lhs_relation}[{', '.join(self.lhs_attrs)}] << "
            f"{self.rhs_relation}[{', '.join(self.rhs_attrs)}]"
        )

    def sort_key(self):
        return self._canonical()
