"""Dependency discovery from extensions — the exhaustive substrate.

Two discovery primitives live here and back the baselines of §S1/§S2:

- :func:`discover_unary_inds` — test every type-compatible attribute pair,
  the way unary-IND discovery tools (de Marchi et al.; SPIDER; Metanome's
  implementations) approach the problem when no query workload is
  available.  This is what the paper's query-guided IND-Discovery is
  measured against.
- :func:`discover_fds` — a level-wise lattice search for minimal FDs
  (TANE-style, partition-based but simplified) within one relation.  This
  is what RHS-Discovery's narrowing is measured against.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.relational.algebra import distinct_values
from repro.relational.database import Database
from repro.relational.domain import comparable, is_null
from repro.relational.table import Table


def discover_unary_inds(
    database: Database,
    max_candidates: Optional[int] = None,
    require_nonempty: bool = True,
) -> List[InclusionDependency]:
    """All satisfied unary INDs between distinct attributes of the schema.

    Candidates are every ordered pair of type-compatible attributes from
    different relations (plus different attributes of the same relation).
    *require_nonempty* skips INDs whose left side projects to the empty
    set — vacuously true but semantically useless.

    Returns the satisfied dependencies; the number of candidate pairs
    examined is exposed via :func:`count_unary_candidates` so benchmarks
    can report the search-space sizes the paper's pruning avoids.
    """
    columns = _typed_columns(database)
    found: List[InclusionDependency] = []
    examined = 0
    for (lrel, lattr, ltype, lvalues) in columns:
        for (rrel, rattr, rtype, rvalues) in columns:
            if lrel == rrel and lattr == rattr:
                continue
            if not comparable(ltype, rtype):
                continue
            examined += 1
            if max_candidates is not None and examined > max_candidates:
                return sorted(found, key=lambda i: i.sort_key())
            if require_nonempty and not lvalues:
                continue
            if lvalues <= rvalues:
                found.append(InclusionDependency(lrel, (lattr,), rrel, (rattr,)))
    return sorted(found, key=lambda i: i.sort_key())


def count_unary_candidates(database: Database) -> int:
    """Size of the exhaustive unary-IND search space for *database*."""
    columns = _typed_columns(database, with_values=False)
    n = 0
    for (lrel, lattr, ltype, _) in columns:
        for (rrel, rattr, rtype, _) in columns:
            if lrel == rrel and lattr == rattr:
                continue
            if comparable(ltype, rtype):
                n += 1
    return n


def _typed_columns(database: Database, with_values: bool = True):
    out = []
    for rel in database.schema:
        table = database.table(rel.name)
        for attr in rel.attributes:
            values: Set[Tuple[object, ...]] = (
                distinct_values(table, (attr.name,)) if with_values else set()
            )
            out.append((rel.name, attr.name, attr.dtype, values))
    return out


# ----------------------------------------------------------------------
# level-wise FD discovery (TANE-lite)
# ----------------------------------------------------------------------

def _partition(table: Table, attrs: Sequence[str]) -> FrozenSet[FrozenSet[int]]:
    """The stripped partition of row indices by their projection on *attrs*.

    Rows with NULL in any grouping attribute are dropped (consistent with
    the FD-satisfaction convention); singleton groups are kept because the
    simplified refinement test below compares group counts directly.
    """
    groups: Dict[Tuple[object, ...], List[int]] = {}
    for idx, row in enumerate(table):
        key = row.project(attrs)
        if any(is_null(v) for v in key):
            continue
        groups.setdefault(key, []).append(idx)
    return frozenset(frozenset(g) for g in groups.values())


def _refines(fine: FrozenSet[FrozenSet[int]], coarse_attr_partition) -> bool:
    """True when every group of *fine* lies within one group of *coarse*."""
    owner: Dict[int, int] = {}
    for gid, group in enumerate(coarse_attr_partition):
        for idx in group:
            owner[idx] = gid
    for group in fine:
        owners = {owner.get(idx, -1) for idx in group}
        if len(owners) != 1 or -1 in owners:
            return False
    return True


def discover_fds(
    table: Table,
    max_lhs_size: int = 3,
    universe: Optional[Sequence[str]] = None,
) -> List[FunctionalDependency]:
    """Minimal non-trivial FDs ``X -> a`` of *table* with ``|X| <= max_lhs_size``.

    Level-wise search over the attribute lattice: a candidate ``X -> a``
    holds iff the partition by ``X`` refines the partition by ``a``; once
    ``X -> a`` is found, supersets of ``X`` are not reported for ``a``
    (minimality).  Exponential in the worst case, as FD discovery is — the
    cap keeps benchmarks honest about the cost the paper's method avoids.
    """
    attrs = list(universe or table.schema.attribute_names)
    single_partitions = {a: _partition(table, (a,)) for a in attrs}
    found: List[FunctionalDependency] = []
    # for minimality: per RHS attr, the set of already-satisfying LHS sets
    winners: Dict[str, List[FrozenSet[str]]] = {a: [] for a in attrs}

    for size in range(1, max_lhs_size + 1):
        for combo in combinations(attrs, size):
            lhs_set = frozenset(combo)
            lhs_partition = _partition(table, combo)
            for target in attrs:
                if target in combo:
                    continue
                if any(w <= lhs_set for w in winners[target]):
                    continue  # a smaller LHS already determines target
                if _refines(lhs_partition, single_partitions[target]):
                    winners[target].append(lhs_set)
                    found.append(
                        FunctionalDependency(table.name, combo, (target,))
                    )
    return sorted(found, key=lambda f: f.sort_key())


def count_fd_candidates(n_attrs: int, max_lhs_size: int = 3) -> int:
    """Number of (LHS, RHS) pairs the exhaustive search examines."""
    from math import comb

    total = 0
    for size in range(1, max_lhs_size + 1):
        total += comb(n_attrs, size) * (n_attrs - size)
    return total
