"""Candidate-key computation from a set of functional dependencies.

Used by the normalization substrate (2NF/3NF tests need prime attributes)
and by the evaluation layer to verify that Restruct's output is in 3NF.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Sequence, Set

from repro.dependencies.closure import attribute_closure
from repro.dependencies.fd import FunctionalDependency


def is_superkey(
    attrs: Iterable[str],
    universe: Iterable[str],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """True when ``attrs+`` covers the whole *universe*."""
    return set(universe) <= attribute_closure(attrs, fds)


def candidate_keys(
    universe: Sequence[str],
    fds: Sequence[FunctionalDependency],
    limit: int = 64,
) -> List[FrozenSet[str]]:
    """All candidate keys of a relation with attributes *universe*.

    Classical pruning: attributes appearing in no RHS must be in every key;
    the search then grows subsets of the remaining attributes by size, so
    only minimal keys are emitted.  *limit* caps the number of keys for
    pathological inputs.
    """
    universe = list(dict.fromkeys(universe))
    rhs_attrs: Set[str] = set()
    lhs_attrs: Set[str] = set()
    for fd in fds:
        rhs_attrs |= set(fd.rhs)
        lhs_attrs |= set(fd.lhs)
    core = [a for a in universe if a not in rhs_attrs]  # in every key
    optional = [a for a in universe if a in rhs_attrs and a in lhs_attrs]

    keys: List[FrozenSet[str]] = []
    if is_superkey(core, universe, fds):
        return [frozenset(core)]
    for size in range(1, len(optional) + 1):
        every_combo_covered = True
        for combo in combinations(optional, size):
            candidate = frozenset(core) | frozenset(combo)
            if any(k <= candidate for k in keys):
                continue
            every_combo_covered = False
            if is_superkey(candidate, universe, fds):
                keys.append(candidate)
                if len(keys) >= limit:
                    return sorted(keys, key=sorted)
        if keys and every_combo_covered:
            # sound cutoff: every (size+1)-combo contains a size-combo,
            # all of which are supersets of a found key already — so no
            # minimal key remains at any larger size.  (Breaking merely
            # because *some* key was found is wrong: minimal keys of
            # different sizes can coexist, e.g. {a} and {b, c, d}.)
            break
    if not keys:
        keys.append(frozenset(universe))
    return sorted(keys, key=sorted)


def prime_attributes(
    universe: Sequence[str], fds: Sequence[FunctionalDependency]
) -> FrozenSet[str]:
    """Attributes belonging to at least one candidate key."""
    out: Set[str] = set()
    for key in candidate_keys(universe, fds):
        out |= key
    return frozenset(out)
