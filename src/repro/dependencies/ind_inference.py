"""Satisfaction and inference of inclusion dependencies.

Satisfaction against the extension uses SQL foreign-key semantics
(NULL-bearing left tuples are skipped).  The inference side implements the
sound and complete axiomatization of INDs (Casanova-Fagin-Papadimitriou):
reflexivity, projection-and-permutation, and transitivity — enough to
deduplicate and close the sets Restruct manipulates.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.dependencies.ind import InclusionDependency
from repro.relational.database import Database


def ind_satisfied(database: Database, ind: InclusionDependency) -> bool:
    """True when ``lhs ⊆ rhs`` holds in the extension (instrumented)."""
    return database.inclusion_holds(
        ind.lhs_relation, ind.lhs_attrs, ind.rhs_relation, ind.rhs_attrs
    )


def inds_satisfied(database: Database, inds: Sequence[InclusionDependency]) -> bool:
    return all(ind_satisfied(database, i) for i in inds)


def violating_inds(
    database: Database, inds: Sequence[InclusionDependency]
) -> List[InclusionDependency]:
    return [i for i in inds if not ind_satisfied(database, i)]


def is_reflexive(ind: InclusionDependency) -> bool:
    """``R[X] ≪ R[X]`` — trivially true."""
    return (
        ind.lhs_relation == ind.rhs_relation
        and ind.lhs_attrs == ind.rhs_attrs
    )


def projections(ind: InclusionDependency) -> List[InclusionDependency]:
    """All single-attribute projections implied by *ind*.

    From ``R[a, b] ≪ S[x, y]`` follow ``R[a] ≪ S[x]`` and ``R[b] ≪ S[y]``.
    Full subset/permutation enumeration is exponential; the unary
    projections are what the method actually consumes.
    """
    return [
        InclusionDependency(ind.lhs_relation, (la,), ind.rhs_relation, (ra,))
        for la, ra in ind.pairs()
        if len(ind.lhs_attrs) > 1
    ]


def compose(
    first: InclusionDependency, second: InclusionDependency
) -> InclusionDependency:
    """Transitivity: from ``R[X] ≪ S[Y]`` and ``S[Y] ≪ T[Z]``, ``R[X] ≪ T[Z]``.

    The middle sides must match as *paired* sequences; ``ValueError``
    otherwise.
    """
    if (
        first.rhs_relation != second.lhs_relation
        or first.rhs_attrs != second.lhs_attrs
    ):
        raise ValueError(f"cannot compose {first!r} with {second!r}")
    return InclusionDependency(
        first.lhs_relation, first.lhs_attrs, second.rhs_relation, second.rhs_attrs
    )


def transitive_closure_inds(
    inds: Iterable[InclusionDependency],
) -> List[InclusionDependency]:
    """Close *inds* under transitivity (reflexive elements dropped)."""
    closed: Set[InclusionDependency] = {i for i in inds if not is_reflexive(i)}
    changed = True
    while changed:
        changed = False
        current = list(closed)
        for a in current:
            for b in current:
                if (
                    a.rhs_relation == b.lhs_relation
                    and a.rhs_attrs == b.lhs_attrs
                ):
                    c = compose(a, b)
                    if not is_reflexive(c) and c not in closed:
                        closed.add(c)
                        changed = True
    return sorted(closed, key=lambda i: i.sort_key())


def ind_implies(
    inds: Sequence[InclusionDependency], target: InclusionDependency
) -> bool:
    """Does *inds* imply *target* under reflexivity + transitivity?

    Projection/permutation is applied on the given dependencies first, so
    a unary target can be derived from composite givens.
    """
    if is_reflexive(target):
        return True
    pool: Set[InclusionDependency] = set(inds)
    for ind in list(pool):
        pool.update(projections(ind))
    return target in set(transitive_closure_inds(pool)) or target in pool
