"""Dependency theory: functional and inclusion dependencies.

Value objects (:class:`FunctionalDependency`, :class:`InclusionDependency`),
classical inference (attribute closure, Armstrong implication, minimal
cover, candidate keys), satisfaction tests against extensions, and the
discovery primitives the baselines build on.
"""

from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind import InclusionDependency
from repro.dependencies.closure import (
    attribute_closure,
    implies,
    equivalent_covers,
    minimal_cover,
)
from repro.dependencies.keys import candidate_keys, is_superkey, prime_attributes
from repro.dependencies.inference import (
    fd_satisfied,
    fds_satisfied,
    violating_fds,
)
from repro.dependencies.ind_inference import (
    ind_satisfied,
    ind_implies,
    transitive_closure_inds,
)

__all__ = [
    "FunctionalDependency",
    "InclusionDependency",
    "attribute_closure",
    "implies",
    "equivalent_covers",
    "minimal_cover",
    "candidate_keys",
    "is_superkey",
    "prime_attributes",
    "fd_satisfied",
    "fds_satisfied",
    "violating_fds",
    "ind_satisfied",
    "ind_implies",
    "transitive_closure_inds",
]
