"""Functional dependencies ``R : Y -> Z``.

The value object used everywhere a functional dependency appears: in the
elicited set ``F``, in Restruct's split step, in the normalization
substrate and in the ground truth of synthetic workloads.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.exceptions import SchemaError
from repro.relational.attribute import AttributeRef, AttributeSet


class FunctionalDependency:
    """``R : lhs -> rhs`` over one relation.

    *relation* may be empty for dependencies stated over a universal set of
    attributes (the normalization substrate works relation-less).
    """

    __slots__ = ("relation", "lhs", "rhs")

    def __init__(
        self,
        relation: str,
        lhs: Iterable[str],
        rhs: Iterable[str],
    ) -> None:
        if isinstance(lhs, str):
            lhs = (lhs,)
        if isinstance(rhs, str):
            rhs = (rhs,)
        self.relation = relation
        self.lhs = AttributeSet(lhs)
        self.rhs = AttributeSet(rhs)
        if not len(self.lhs):
            raise SchemaError("functional dependency needs a non-empty left side")
        if not len(self.rhs):
            raise SchemaError("functional dependency needs a non-empty right side")

    @classmethod
    def parse(cls, text: str) -> "FunctionalDependency":
        """Parse ``"R: a, b -> c, d"`` (relation part optional).

        Mirrors the paper's written form, e.g.
        ``"Department: emp -> skill, proj"``.
        """
        relation = ""
        body = text
        if ":" in text:
            relation, body = text.split(":", 1)
            relation = relation.strip()
        if "->" not in body:
            raise SchemaError(f"not a functional dependency: {text!r}")
        left, right = body.split("->", 1)
        lhs = [a.strip() for a in left.split(",") if a.strip()]
        rhs = [a.strip() for a in right.split(",") if a.strip()]
        return cls(relation, lhs, rhs)

    def lhs_ref(self) -> AttributeRef:
        return AttributeRef(self.relation, self.lhs)

    def rhs_ref(self) -> AttributeRef:
        return AttributeRef(self.relation, self.rhs)

    @property
    def attributes(self) -> AttributeSet:
        return self.lhs.union(self.rhs)

    def is_trivial(self) -> bool:
        """``Y -> Z`` with ``Z ⊆ Y`` holds vacuously."""
        return self.rhs.issubset(self.lhs)

    def split_rhs(self) -> Tuple["FunctionalDependency", ...]:
        """Decompose ``Y -> a b`` into ``Y -> a``, ``Y -> b``."""
        return tuple(
            FunctionalDependency(self.relation, tuple(self.lhs), (a,))
            for a in self.rhs
        )

    def with_relation(self, relation: str) -> "FunctionalDependency":
        return FunctionalDependency(relation, tuple(self.lhs), tuple(self.rhs))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FunctionalDependency):
            return (
                other.relation == self.relation
                and other.lhs == self.lhs
                and other.rhs == self.rhs
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("FD", self.relation, self.lhs, self.rhs))

    def __repr__(self) -> str:
        prefix = f"{self.relation}: " if self.relation else ""
        return (
            f"{prefix}{', '.join(self.lhs)} -> {', '.join(self.rhs)}"
        )

    def sort_key(self):
        return (self.relation, self.lhs.sort_key(), self.rhs.sort_key())
