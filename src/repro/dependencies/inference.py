"""Satisfaction of functional dependencies against a database extension.

RHS-Discovery's inner test ``A -> b holds in r_i`` (step (i) of the
algorithm) is implemented here, together with batch helpers the
evaluation layer uses to audit an elicited dependency set against the
data.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dependencies.fd import FunctionalDependency
from repro.relational.algebra import fd_violation_pairs, functional_maps
from repro.relational.database import Database
from repro.relational.table import Row, Table


def fd_satisfied(table: Table, fd: FunctionalDependency) -> bool:
    """True when *fd* holds in *table* (NULL-LHS tuples skipped)."""
    return functional_maps(table, tuple(fd.lhs), tuple(fd.rhs))


def fd_satisfied_in(database: Database, fd: FunctionalDependency) -> bool:
    """Instrumented variant counting the extension access."""
    return database.fd_holds(fd.relation, tuple(fd.lhs), tuple(fd.rhs))


def fds_satisfied(database: Database, fds: Sequence[FunctionalDependency]) -> bool:
    """True when every FD of *fds* holds in *database*."""
    return all(fd_satisfied_in(database, fd) for fd in fds)


def violating_fds(
    database: Database, fds: Sequence[FunctionalDependency]
) -> List[FunctionalDependency]:
    """The subset of *fds* that the extension falsifies."""
    return [fd for fd in fds if not fd_satisfied_in(database, fd)]


def violation_witnesses(
    table: Table, fd: FunctionalDependency, limit: int = 5
) -> List[Tuple[Row, Row]]:
    """Tuple pairs proving *fd* fails — shown to the expert user."""
    return fd_violation_pairs(table, tuple(fd.lhs), tuple(fd.rhs), limit)


def satisfaction_ratio(table: Table, fd: FunctionalDependency) -> float:
    """Fraction of LHS groups that are single-valued on the RHS.

    1.0 means the FD holds; values just under 1.0 suggest a true
    dependency marred by a few dirty tuples — exactly the situation where
    the paper lets the expert *enforce* the dependency (RHS-Discovery
    step (ii)).  An empty table (or all-NULL LHS) yields 1.0.
    """
    from repro.relational.algebra import group_by

    groups = group_by(table, tuple(fd.lhs))
    if not groups:
        return 1.0
    clean = 0
    for rows in groups.values():
        images = {tuple(row[a] for a in fd.rhs) for row in rows}
        if len(images) <= 1:
            clean += 1
    return clean / len(groups)
