#!/usr/bin/env python
"""Round-trip validation of every observability export (the CI step).

Runs the paper demo once through the real CLI with every export enabled,
then proves the artifacts are usable by a consumer that only has the
files:

1. the trace JSONL re-reads to exactly the records the run produced,
   and the metrics JSON equals the metrics re-derived from those
   records (``repro/trace@1`` / ``repro/metrics@1``);
1b. ``repro profile`` renders the hotspot view of that trace and its
    flamegraph exports are well-formed: every collapsed-stack line is
    ``stack <integer>``, and the speedscope JSON (``repro/profile@1``)
    has balanced, properly nested open/close events over valid frames;
    ``repro trace diff`` of the trace against itself exits cleanly;
2. the provenance JSONL re-reads to exactly the ledger's records, its
   header counts match, and every edge endpoint resolves to a node
   (``repro/provenance@1``);
2b. the decomposition certificates (``repro/normalization@1``) re-read
    to equal objects, every one of them re-verifies from scratch, and a
    deliberately mutated certificate is rejected by the verifier;
3. ``repro explain`` renders a complete derivation chain — ending at a
   source query — for every referential integrity constraint;
4. the DOT export and the HTML audit report are written and
   well-formed;
5. a second demo run on the paged backend (pool smaller than the
   extension) re-derives its metrics the same way and exports nonzero
   buffer-pool counters (hits, misses, evictions, pages read) under
   ``backends.paged.counters``;
6. ``repro jobs run`` executes a spec file through the job manager —
   one serial demo, a duplicate that must be served from the results
   cache, and a process-engine run — and the ``repro/jobs@1`` ledger
   export re-reads with matching header counts, every job ``done`` and
   exactly the duplicate flagged ``cached``;
7. a live service round-trip: a demo job submitted over HTTP is watched
   through the real SSE endpoint, the captured stream carries every
   phase boundary and ends with the ``end`` sentinel, it re-reads from
   a ``repro/live@1`` JSONL capture byte-for-byte, and the ``/metrics``
   exposition both lints clean and reflects the finished job;
8. a durable-archive round-trip: a demo job runs under a manager
   writing through to a ``repro/archive@1`` directory, a fresh manager
   restores from it, the restored ``repro/jobs@1`` ledger is
   byte-identical to the archived one, and a repeat of the same spec
   is answered from the restored results cache (summary included).

Exit status is non-zero on the first violation, so CI fails loudly.
The artifacts are left in ``--outdir`` for upload.

Usage::

    PYTHONPATH=src python scripts/validate_exports.py --outdir obs-exports
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def fail(message: str) -> None:
    raise SystemExit(f"validate_exports: FAILED — {message}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="round-trip every observability export of a demo run"
    )
    parser.add_argument(
        "--outdir",
        default="obs-exports",
        help="directory to leave the validated artifacts in",
    )
    args = parser.parse_args(argv)
    os.makedirs(args.outdir, exist_ok=True)

    from repro.cli import main as repro
    from repro.obs import (
        metrics_from_records,
        read_provenance_jsonl,
        read_trace_jsonl,
        summarize_trace,
    )

    trace_path = os.path.join(args.outdir, "demo.trace.jsonl")
    metrics_path = os.path.join(args.outdir, "demo.metrics.json")
    collapsed_path = os.path.join(args.outdir, "demo.collapsed")
    speedscope_path = os.path.join(args.outdir, "demo.speedscope.json")
    prov_path = os.path.join(args.outdir, "demo.provenance.jsonl")
    dot_path = os.path.join(args.outdir, "demo.lineage.dot")
    report_path = os.path.join(args.outdir, "demo.report.html")
    certs_path = os.path.join(args.outdir, "demo.certificates.jsonl")

    # 0. one demo run, every export enabled ----------------------------
    code = repro(
        [
            "demo",
            "--trace", trace_path,
            "--metrics", metrics_path,
            "--provenance", prov_path,
            "--provenance-dot", dot_path,
            "--certificates", certs_path,
        ]
    )
    if code != 0:
        fail(f"demo run exited {code}")

    # 1. trace + metrics round-trip ------------------------------------
    trace = read_trace_jsonl(trace_path)
    header = trace[0]
    spans = [r for r in trace if r.get("type") == "span"]
    events = [r for r in trace if r.get("type") == "event"]
    if header["spans"] != len(spans) or header["events"] != len(events):
        fail("trace header counts disagree with the record stream")
    if not events:
        fail("the demo run recorded no primitive events")
    with open(metrics_path, encoding="utf-8") as handle:
        metrics = json.load(handle)
    if metrics != metrics_from_records(trace):
        fail("metrics JSON does not re-derive from the trace records")
    summarize_trace(trace)  # must render without raising

    # 1b. profile + flamegraph exports ---------------------------------
    code = repro(
        [
            "profile", trace_path,
            "--flame", collapsed_path,
            "--speedscope", speedscope_path,
        ]
    )
    if code != 0:
        fail(f"profile command exited {code}")
    with open(collapsed_path, encoding="utf-8") as handle:
        stacks = handle.read().splitlines()
    if not stacks:
        fail("collapsed-stack export is empty")
    for line in stacks:
        stack, _, value = line.rpartition(" ")
        if not stack or not value.isdigit():
            fail(f"malformed collapsed-stack line: {line!r}")
    if not any(";" in line for line in stacks):
        fail("collapsed stacks have no nested frames")
    with open(speedscope_path, encoding="utf-8") as handle:
        speedscope = json.load(handle)
    if speedscope.get("exporter") != "repro/profile@1":
        fail("speedscope export is not tagged repro/profile@1")
    frames = speedscope["shared"]["frames"]
    open_frames = []
    for entry in speedscope["profiles"][0]["events"]:
        if not 0 <= entry["frame"] < len(frames):
            fail("speedscope event references a missing frame")
        if entry["type"] == "O":
            open_frames.append(entry["frame"])
        elif not open_frames or open_frames.pop() != entry["frame"]:
            fail("speedscope events are not properly nested")
    if open_frames:
        fail("speedscope open/close events are unbalanced")
    code = repro(["trace", "diff", trace_path, trace_path])
    if code != 0:
        fail(f"self trace diff exited {code}")

    # 2. provenance round-trip -----------------------------------------
    provenance = read_provenance_jsonl(prov_path)
    pheader = provenance[0]
    nodes = {r["id"]: r for r in provenance if r.get("type") == "node"}
    edges = [r for r in provenance if r.get("type") == "edge"]
    if pheader["nodes"] != len(nodes) or pheader["edges"] != len(edges):
        fail("provenance header counts disagree with the record stream")
    dangling = [
        e for e in edges if e["src"] not in nodes or e["dst"] not in nodes
    ]
    if dangling:
        fail(f"{len(dangling)} edge(s) reference missing nodes: {dangling[:3]}")

    # 2b. decomposition certificates: round-trip, verify, reject -------
    import dataclasses

    from repro.normalization import (
        certificate_from_dict,
        certificate_to_dict,
        read_certificates_jsonl,
        verify_certificate,
    )

    certificates = read_certificates_jsonl(certs_path)
    if not certificates:
        fail("the demo run emitted no decomposition certificates")
    for certificate in certificates:
        round_tripped = certificate_from_dict(certificate_to_dict(certificate))
        if round_tripped != certificate:
            fail(f"certificate for {certificate.source} does not round-trip")
        violations = verify_certificate(certificate)
        if violations:
            fail(
                f"certificate for {certificate.source} does not verify: "
                f"{violations}"
            )
    mutated = dataclasses.replace(
        certificates[0], lossless=not certificates[0].lossless
    )
    if not verify_certificate(mutated):
        fail("the verifier accepted a mutated certificate")

    # 3. every RIC explains down to a source query ---------------------
    from repro.obs import explain

    rics = [n for n in nodes.values() if n["kind"] == "ric"]
    if not rics:
        fail("the demo run derived no referential integrity constraint")
    for ric in rics:
        chain = explain(provenance, ric["id"])
        if "source query" not in chain:
            fail(f"chain of {ric['id']} does not reach a source query")
    decisions = [n for n in nodes.values() if n["kind"] == "decision"]
    if not decisions:
        fail("the demo run recorded no expert decision")

    # 4. DOT + HTML audit report ---------------------------------------
    with open(dot_path, encoding="utf-8") as handle:
        dot = handle.read()
    if not dot.startswith("digraph provenance"):
        fail("lineage DOT export is malformed")
    code = repro(
        [
            "report",
            "--trace", trace_path,
            "--provenance", prov_path,
            "--output", report_path,
        ]
    )
    if code != 0:
        fail(f"report command exited {code}")
    with open(report_path, encoding="utf-8") as handle:
        document = handle.read()
    for needle in ("<!DOCTYPE html>", "Expert dialogue", "Derivation chains"):
        if needle not in document:
            fail(f"audit report is missing {needle!r}")

    # 5. paged backend: pool counters flow into the exports ------------
    paged_trace_path = os.path.join(args.outdir, "demo-paged.trace.jsonl")
    paged_metrics_path = os.path.join(args.outdir, "demo-paged.metrics.json")
    code = repro(
        [
            "demo",
            "--backend", "paged",
            "--pool-pages", "8",
            "--page-size", "256",
            "--trace", paged_trace_path,
            "--metrics", paged_metrics_path,
        ]
    )
    if code != 0:
        fail(f"paged demo run exited {code}")
    paged_trace = read_trace_jsonl(paged_trace_path)
    with open(paged_metrics_path, encoding="utf-8") as handle:
        paged_metrics = json.load(handle)
    if paged_metrics != metrics_from_records(paged_trace):
        fail("paged metrics JSON does not re-derive from the trace records")
    counters = (
        paged_metrics.get("backends", {}).get("paged", {}).get("counters", {})
    )
    for key in ("pool_hits", "pool_misses", "pool_evictions", "pages_read"):
        if not counters.get(key):
            fail(
                f"paged run exported no {key}: buffer-pool telemetry "
                f"is not reaching repro/metrics@1 (counters: {counters})"
            )

    # 6. job service: repro/jobs@1 ledger round-trip -------------------
    from repro.service.export import JOBS_FORMAT, read_jobs_jsonl

    specs_path = os.path.join(args.outdir, "demo.jobs-spec.json")
    jobs_path = os.path.join(args.outdir, "demo.jobs.jsonl")
    specs = [
        {"demo": True, "label": "demo-serial"},
        # byte-identical spec: must be answered from the results cache
        {"demo": True, "label": "demo-serial"},
        {
            "demo": True,
            "label": "demo-process",
            "config": {"engine": "process", "engine_workers": 2},
        },
    ]
    with open(specs_path, "w", encoding="utf-8") as handle:
        json.dump(specs, handle, indent=2)
        handle.write("\n")
    code = repro(["jobs", "run", specs_path, "--export", jobs_path])
    if code != 0:
        fail(f"jobs run exited {code}")
    ledger = read_jobs_jsonl(jobs_path)
    jobs_header, job_records = ledger[0], ledger[1:]
    if jobs_header["format"] != JOBS_FORMAT:
        fail(f"jobs export is not tagged {JOBS_FORMAT}")
    if jobs_header["jobs"] != len(specs):
        fail(
            f"jobs header claims {jobs_header['jobs']} jobs, "
            f"{len(specs)} were submitted"
        )
    not_done = [r["id"] for r in job_records if r["state"] != "done"]
    if not_done:
        fail(f"job(s) did not finish done: {not_done}")
    cached = [r["id"] for r in job_records if r["cached"]]
    if jobs_header["cached"] != 1 or len(cached) != 1:
        fail(
            f"expected exactly the duplicate spec to be cached, "
            f"got {cached} (header says {jobs_header['cached']})"
        )

    # 7. live service: SSE capture + repro/live@1 + /metrics lint ------
    import threading
    import urllib.request

    from repro.obs.live import read_live_jsonl, write_live_jsonl
    from repro.service import JobManager, lint_exposition, sse_events
    from repro.service.server import build_server

    live_path = os.path.join(args.outdir, "demo.live.jsonl")
    exposition_path = os.path.join(args.outdir, "demo.metrics.prom")
    with JobManager(runners=1) as manager:
        server = build_server(manager, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address
            base = f"http://{host}:{port}"
            for probe in ("/healthz", "/readyz"):
                if urllib.request.urlopen(base + probe, timeout=10).status != 200:
                    fail(f"{probe} did not answer 200")
            request = urllib.request.Request(
                base + "/jobs",
                data=json.dumps({"demo": True}).encode("utf-8"),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                job = json.loads(response.read())
            stream = list(
                sse_events(f"{base}/jobs/{job['id']}/events", timeout=60)
            )
            if not stream or stream[-1]["type"] != "end":
                fail("the SSE stream did not finish with an end sentinel")
            if stream[-1]["state"] != "done":
                fail(f"the watched demo job ended {stream[-1]['state']!r}")
            phase_opens = [
                r["name"] for r in stream
                if r["type"] == "span-open" and r.get("kind") == "phase"
            ]
            for phase in ("IND-Discovery", "LHS-Discovery", "RHS-Discovery",
                          "Restruct", "Translate"):
                if phase not in phase_opens:
                    fail(f"the SSE capture is missing the {phase} boundary")
            if not any(r["type"] == "progress" for r in stream):
                fail("the SSE capture carries no progress event")
            written = write_live_jsonl(stream, live_path)
            if read_live_jsonl(live_path) != written:
                fail("the live capture does not round-trip as repro/live@1")
            with urllib.request.urlopen(base + "/metrics", timeout=10) as got:
                exposition = got.read().decode("utf-8")
            problems = lint_exposition(exposition)
            if problems:
                fail(f"/metrics fails its own lint: {problems[:3]}")
            if 'repro_jobs_total{state="done"} 1' not in exposition:
                fail("/metrics does not report the finished demo job")
            with open(exposition_path, "w", encoding="utf-8") as handle:
                handle.write(exposition)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    # 8. durable archive: write -> restore -> byte-compare -------------
    import time as time_mod

    from repro.obs.archive import RunArchive
    from repro.service.export import jobs_to_records
    from repro.service.specs import submit_spec

    archive_dir = os.path.join(args.outdir, "demo.archive")
    with JobManager(runners=1, archive=RunArchive(archive_dir)) as manager:
        job = submit_spec(manager, {"demo": True, "label": "demo-archive"})
        manager.result(job.id, timeout=120)
        deadline = time_mod.monotonic() + 30
        while job.archived is None and time_mod.monotonic() < deadline:
            time_mod.sleep(0.05)
        if not job.archived:
            fail("the finished demo job never reached the archive")
        ledger_before = json.dumps(
            jobs_to_records(manager), sort_keys=True, default=str
        )
    with JobManager(runners=1, archive=RunArchive(archive_dir)) as restored:
        if restored.restored()["jobs"] != 1:
            fail("the archive did not restore the demo job's ledger entry")
        ledger_after = json.dumps(
            jobs_to_records(restored), sort_keys=True, default=str
        )
        if ledger_before != ledger_after:
            fail(
                "the restored ledger is not byte-identical to the one "
                "that was archived"
            )
        hit = submit_spec(
            restored, {"demo": True, "label": "demo-archive-again"}
        )
        if not hit.cached or hit.state != "done":
            fail(
                "the restored results cache did not answer the repeat "
                "demo spec as a cache hit"
            )
        if hit.as_record().get("summary") != job.as_record().get("summary"):
            fail(
                "the restored cache hit does not carry the archived "
                "run's summary"
            )

    print(
        f"validate_exports: OK — {len(spans)} spans, {len(events)} events, "
        f"{len(stacks)} collapsed stacks, "
        f"{len(nodes)} lineage nodes, {len(edges)} edges, "
        f"{len(rics)} constraint chain(s) verified, "
        f"{len(certificates)} decomposition certificate(s) verified, "
        f"paged pool counters {counters}, "
        f"{jobs_header['jobs']} jobs ({jobs_header['cached']} cached), "
        f"{len(stream)} live SSE records captured, /metrics lint clean, "
        f"archive restore byte-identical (cache re-seeded); "
        f"artifacts in {args.outdir}/"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
